"""The single candidate-evaluation primitive every search loop shares.

``evaluate_candidate`` is the pure function at the bottom of the whole
optimization stack: schedule one :class:`CandidateDesign` with the
compiled problem and price the result with the slide-14 objective.  The
serial engine path, the cache-miss path and the process-pool workers
all call exactly this function, which is what makes cached, serial and
parallel runs bit-identical.

Imports from :mod:`repro.core` are deferred to call time: the engine
package sits between ``sched`` and ``core`` in the layer diagram
(``core.strategy`` imports the engine), so importing core modules at
module scope would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sched.schedule import SystemSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import DesignMetrics
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign
    from repro.engine.compiled_spec import CompiledSpec
    from repro.model.mapping import Mapping
    from repro.sched.list_scheduler import ListScheduler
    from repro.sched.priorities import PriorityMap


@dataclass
class EvaluatedDesign:
    """A valid candidate design with its schedule and metric values."""

    design: "CandidateDesign"
    schedule: SystemSchedule
    metrics: "DesignMetrics"

    @property
    def objective(self) -> float:
        return self.metrics.objective

    @property
    def mapping(self) -> "Mapping":
        return self.design.mapping

    @property
    def priorities(self) -> "PriorityMap":
        return self.design.priorities


def evaluate_candidate(
    spec: "DesignSpec",
    compiled: "CompiledSpec",
    scheduler: "ListScheduler",
    design: "CandidateDesign",
) -> Optional[EvaluatedDesign]:
    """Schedule and price one candidate; ``None`` when it is invalid.

    Deterministic: equal ``(spec, design)`` always produce the same
    outcome, which both the evaluation cache and the batch evaluator
    rely on.
    """
    from repro.core.metrics import evaluate_design

    result = scheduler.try_schedule(
        spec.current,
        design.mapping,
        priorities=design.priorities,
        message_delays=design.message_delays,
        compiled=compiled,
    )
    if not result.success:
        return None
    metrics = evaluate_design(result.schedule, spec.future, spec.weights)
    return EvaluatedDesign(design, result.schedule, metrics)
