"""The single candidate-evaluation primitive every search loop shares.

``evaluate_candidate`` is the pure function at the bottom of the whole
optimization stack: schedule one :class:`CandidateDesign` with the
compiled problem and price the result with the slide-14 objective.  The
serial engine path, the cache-miss path and the process-pool workers
all call exactly this function, which is what makes cached, serial and
parallel runs bit-identical.

Under the array core the hot path never leaves the flat representation:
the pass finishes as an :class:`~repro.sched.arrays.ArrayRunState`, the
metrics are priced directly on its columns
(:mod:`repro.core.array_metrics`), and the object
:class:`~repro.sched.schedule.SystemSchedule` is decoded **lazily** --
:attr:`EvaluatedDesign.schedule` builds it on first access (accepted
incumbents, serialization, verify, figures), while the thousands of
rejected candidates per search never pay for it.

Imports from :mod:`repro.core` are deferred to call time: the engine
package sits between ``sched`` and ``core`` in the layer diagram
(``core.strategy`` imports the engine), so importing core modules at
module scope would be circular.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Tuple

from repro.sched.arrays import ArrayRunState, ArraySpec
from repro.sched.schedule import SystemSchedule
from repro.sched.trace import ScheduleTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Union
    from repro.core.metrics import DesignMetrics
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign
    from repro.engine.compiled_spec import CompiledSpec
    from repro.model.mapping import Mapping
    from repro.sched.list_scheduler import ListScheduler
    from repro.sched.priorities import PriorityMap


class StageTimings:
    """Nanosecond wall-time buckets of the evaluation pipeline.

    One mutable sink per engine (and per pool worker): scheduling,
    metric pricing and schedule decode accumulate separately, so the
    per-stage Amdahl split of a search run is visible in the engine
    statistics without a profiler.  Time recorded here feeds reporting
    only -- never a scheduling decision.
    """

    __slots__ = ("sched_ns", "metrics_ns", "decode_ns")

    def __init__(
        self, sched_ns: int = 0, metrics_ns: int = 0, decode_ns: int = 0
    ) -> None:
        self.sched_ns = sched_ns
        self.metrics_ns = metrics_ns
        self.decode_ns = decode_ns

    def snapshot(self) -> Tuple[int, int, int]:
        """Current bucket values (for windowed attribution)."""
        return (self.sched_ns, self.metrics_ns, self.decode_ns)

    def since(self, snapshot: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Bucket deltas accumulated after ``snapshot`` was taken."""
        return (
            self.sched_ns - snapshot[0],
            self.metrics_ns - snapshot[1],
            self.decode_ns - snapshot[2],
        )

    def add(self, delta: Tuple[int, int, int]) -> None:
        """Merge another sink's deltas (worker results into the engine)."""
        self.sched_ns += delta[0]
        self.metrics_ns += delta[1]
        self.decode_ns += delta[2]


class EvaluatedDesign:
    """A valid candidate design with its metric values.

    ``trace`` and ``memo`` are the incremental-evaluation attachments
    (present only when the engine runs in delta mode): the scheduling
    decision sequence and the per-resource metric inputs that let a
    *child* design -- one move away -- be evaluated from this design's
    checkpoints instead of from scratch.  ``trace`` is duck-typed by
    engine core: a :class:`ScheduleTrace` under the object core, an
    :class:`~repro.sched.arrays.ArrayRunState` under the array core;
    the delta evaluator dispatches on the type and treats a mismatch
    (e.g. after an engine-core switch) as "no trace".  ``memo`` follows
    the same split (``MetricsMemo`` / ``ArrayMetricsMemo``).

    Under the array core :attr:`schedule` is **lazy**: the constructor
    receives the finished array state instead of a decoded schedule,
    and the object :class:`SystemSchedule` is decoded on first access
    (re-running the pass with trace columns when the state was produced
    without them).  The decode is cached, so incumbents price the
    conversion once; rejected candidates never do.
    """

    __slots__ = (
        "design", "metrics", "trace", "memo",
        "_schedule", "_state", "_arrays", "_timings", "_compiled",
    )

    def __init__(
        self,
        design: "CandidateDesign",
        schedule: Optional[SystemSchedule],
        metrics: "DesignMetrics",
        trace: Optional["Union[ScheduleTrace, ArrayRunState]"] = None,
        memo: Optional["Any"] = None,
        *,
        state: Optional[ArrayRunState] = None,
        arrays: Optional[ArraySpec] = None,
        timings: Optional[StageTimings] = None,
        compiled: Optional["CompiledSpec"] = None,
    ) -> None:
        if (
            schedule is None
            and (state is None or arrays is None)
            and compiled is None
        ):
            raise ValueError(
                "EvaluatedDesign needs a schedule or an array state to "
                "decode one from (or a compiled spec to re-derive one "
                "against)"
            )
        self.design = design
        self.metrics = metrics
        self.trace = trace
        self.memo = memo
        self._schedule = schedule
        self._state = state
        self._arrays = arrays
        self._timings = timings
        self._compiled = compiled

    # ------------------------------------------------------------------
    @property
    def schedule(self) -> SystemSchedule:
        """The object schedule, decoded (or re-derived) on demand.

        Three sources, in order: the eagerly built schedule (object
        core), the finished array state (array core's lazy decode), or
        -- for store-served outcomes, which persist metrics only -- a
        full deterministic re-run of the scheduling pass against the
        attached compiled spec.
        """
        schedule = self._schedule
        if schedule is None:
            state = self._state
            arrays = self._arrays
            start = time.perf_counter_ns()
            if state is not None and arrays is not None:
                if not state.columns:
                    # The hot path runs without trace columns; re-run
                    # the (deterministic) pass with them to decode.
                    state = arrays.schedule_design(
                        self.design, record=False, columns=True
                    )
                schedule = arrays.decode_schedule(state)
            elif self._compiled is not None:
                schedule = self._rederive(self._compiled)
            else:
                raise ValueError(
                    "EvaluatedDesign lost its decode substrate (array "
                    "state shipped without re-attaching the ArraySpec)"
                )
            self._schedule = schedule
            timings = self._timings
            if timings is not None:
                timings.decode_ns += time.perf_counter_ns() - start
        return schedule

    def _rederive(self, compiled: "CompiledSpec") -> SystemSchedule:
        """Re-run the (deterministic) pass to rebuild the schedule."""
        if compiled.use_arrays:
            arrays = compiled.arrays
            state = arrays.schedule_design(
                self.design, record=False, columns=True
            )
            if not state.success:
                raise ValueError(
                    "stored design no longer schedules; the result "
                    "store and the compiled spec disagree"
                )
            return arrays.decode_schedule(state)
        from repro.sched.list_scheduler import ListScheduler

        result = ListScheduler(compiled.architecture).try_schedule(
            compiled.spec.current,
            self.design.mapping,
            priorities=self.design.priorities,
            message_delays=self.design.message_delays,
            compiled=compiled,
        )
        if not result.success:
            raise ValueError(
                "stored design no longer schedules; the result store "
                "and the compiled spec disagree"
            )
        return result.schedule

    @property
    def objective(self) -> float:
        return self.metrics.objective

    @property
    def mapping(self) -> "Mapping":
        return self.design.mapping

    @property
    def priorities(self) -> "PriorityMap":
        return self.design.priorities

    # ------------------------------------------------------------------
    # pickling (process-pool wire format): the compiled ArraySpec, the
    # compiled spec and the timing sink stay process-local;
    # BatchEvaluator re-attaches them when results return to the engine.
    def __getstate__(self) -> dict:
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in ("_arrays", "_timings", "_compiled")
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._arrays = None
        self._timings = None
        self._compiled = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        decoded = "decoded" if self._schedule is not None else "lazy"
        return (
            f"EvaluatedDesign(objective={self.metrics.objective:.4f}, "
            f"schedule={decoded})"
        )


def evaluate_candidate(
    spec: "DesignSpec",
    compiled: "CompiledSpec",
    scheduler: "ListScheduler",
    design: "CandidateDesign",
    record_trace: bool = False,
    timings: Optional[StageTimings] = None,
) -> Optional[EvaluatedDesign]:
    """Schedule and price one candidate; ``None`` when it is invalid.

    Deterministic: equal ``(spec, design)`` always produce the same
    outcome, which both the evaluation cache and the batch evaluator
    rely on.  With ``record_trace`` the outcome additionally carries
    the pass trace and metric memo, making it usable as the parent of
    delta evaluations; the metric *values* are identical either way.
    ``timings`` (when given) accumulates per-stage wall time.
    """
    from repro.core.metrics import evaluate_design_delta

    if compiled.use_arrays:
        from repro.core.array_metrics import evaluate_state_delta

        arrays = compiled.arrays
        start = time.perf_counter_ns()
        state = arrays.schedule_design(design, record=record_trace)
        mid = time.perf_counter_ns()
        if timings is not None:
            timings.sched_ns += mid - start
        if not state.success:
            return None
        metrics, memo = evaluate_state_delta(
            arrays, state, spec.future, spec.weights
        )
        if timings is not None:
            timings.metrics_ns += time.perf_counter_ns() - mid
        if not record_trace:
            return EvaluatedDesign(
                design, None, metrics,
                state=state, arrays=arrays, timings=timings,
            )
        return EvaluatedDesign(
            design, None, metrics, trace=state, memo=memo,
            state=state, arrays=arrays, timings=timings,
        )

    start = time.perf_counter_ns()
    result = scheduler.try_schedule(
        spec.current,
        design.mapping,
        priorities=design.priorities,
        message_delays=design.message_delays,
        compiled=compiled,
        record_trace=record_trace,
    )
    mid = time.perf_counter_ns()
    if timings is not None:
        timings.sched_ns += mid - start
    if not result.success:
        return None
    metrics, memo = evaluate_design_delta(
        result.schedule, spec.future, spec.weights
    )
    if timings is not None:
        timings.metrics_ns += time.perf_counter_ns() - mid
    if not record_trace:
        return EvaluatedDesign(design, result.schedule, metrics)
    return EvaluatedDesign(
        design, result.schedule, metrics, trace=result.trace, memo=memo
    )
