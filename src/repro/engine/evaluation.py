"""The single candidate-evaluation primitive every search loop shares.

``evaluate_candidate`` is the pure function at the bottom of the whole
optimization stack: schedule one :class:`CandidateDesign` with the
compiled problem and price the result with the slide-14 objective.  The
serial engine path, the cache-miss path and the process-pool workers
all call exactly this function, which is what makes cached, serial and
parallel runs bit-identical.

Imports from :mod:`repro.core` are deferred to call time: the engine
package sits between ``sched`` and ``core`` in the layer diagram
(``core.strategy`` imports the engine), so importing core modules at
module scope would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sched.arrays import ArrayRunState
from repro.sched.schedule import SystemSchedule
from repro.sched.trace import ScheduleTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Union
    from repro.core.metrics import DesignMetrics, MetricsMemo
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign
    from repro.engine.compiled_spec import CompiledSpec
    from repro.model.mapping import Mapping
    from repro.sched.list_scheduler import ListScheduler
    from repro.sched.priorities import PriorityMap


@dataclass
class EvaluatedDesign:
    """A valid candidate design with its schedule and metric values.

    ``trace`` and ``memo`` are the incremental-evaluation attachments
    (present only when the engine runs in delta mode): the scheduling
    decision sequence and the per-resource metric inputs that let a
    *child* design -- one move away -- be evaluated from this design's
    checkpoints instead of from scratch.  ``trace`` is duck-typed by
    engine core: a :class:`ScheduleTrace` under the object core, an
    :class:`~repro.sched.arrays.ArrayRunState` under the array core;
    the delta evaluator dispatches on the type and treats a mismatch
    (e.g. after an engine-core switch) as "no trace".
    """

    design: "CandidateDesign"
    schedule: SystemSchedule
    metrics: "DesignMetrics"
    trace: Optional["Union[ScheduleTrace, ArrayRunState]"] = None
    memo: Optional["MetricsMemo"] = None

    @property
    def objective(self) -> float:
        return self.metrics.objective

    @property
    def mapping(self) -> "Mapping":
        return self.design.mapping

    @property
    def priorities(self) -> "PriorityMap":
        return self.design.priorities


def evaluate_candidate(
    spec: "DesignSpec",
    compiled: "CompiledSpec",
    scheduler: "ListScheduler",
    design: "CandidateDesign",
    record_trace: bool = False,
) -> Optional[EvaluatedDesign]:
    """Schedule and price one candidate; ``None`` when it is invalid.

    Deterministic: equal ``(spec, design)`` always produce the same
    outcome, which both the evaluation cache and the batch evaluator
    rely on.  With ``record_trace`` the outcome additionally carries
    the pass trace and metric memo, making it usable as the parent of
    delta evaluations; the metric *values* are identical either way.
    """
    from repro.core.metrics import evaluate_design_delta

    if compiled.use_arrays:
        arrays = compiled.arrays
        state = arrays.schedule_design(design, record=record_trace)
        if not state.success:
            return None
        schedule = arrays.decode_schedule(state)
        metrics, memo = evaluate_design_delta(
            schedule, spec.future, spec.weights
        )
        if not record_trace:
            return EvaluatedDesign(design, schedule, metrics)
        return EvaluatedDesign(
            design, schedule, metrics, trace=state, memo=memo
        )

    result = scheduler.try_schedule(
        spec.current,
        design.mapping,
        priorities=design.priorities,
        message_delays=design.message_delays,
        compiled=compiled,
        record_trace=record_trace,
    )
    if not result.success:
        return None
    metrics, memo = evaluate_design_delta(
        result.schedule, spec.future, spec.weights
    )
    if not record_trace:
        return EvaluatedDesign(design, result.schedule, metrics)
    return EvaluatedDesign(
        design, result.schedule, metrics, trace=result.trace, memo=memo
    )
