"""Result stores: the persistence tier behind the evaluation cache.

At service scale the dominant waste is re-solving scenarios some other
process (or an earlier run) already solved.  This module lifts the
cache's storage out of :class:`~repro.engine.cache.EvaluationCache`
into a :class:`ResultStore` protocol with two backends:

* :class:`MemoryResultStore` -- the original in-memory LRU, verbatim.
  ``get`` refreshes recency, ``put`` evicts the least recently used
  entry beyond ``max_entries``; nothing survives the process.
* :class:`SqliteResultStore` -- a two-tier store: the same resident
  LRU in front of a persistent sqlite database (WAL mode) keyed by
  ``(scenario, signature)``.  Misses in the resident tier probe the
  database and promote hits; writes are buffered and flushed as one
  ``executemany`` batch per :meth:`~SqliteResultStore.commit` (the
  engine commits at the end of every public evaluation call).

Within one run the two backends behave identically -- the resident
tier is authoritative, and LRU evictions / ``clear()`` are mirrored to
the database -- so the cache's counter/LRU contract holds byte-for-byte
over both.  Across runs the sqlite backend turns cold evaluations into
store hits: a warm restart of the same scenario re-prices nothing.

**Single-writer rule.**  Exactly one read-write store may own a
database path at a time (the engine in the parent process); pool
workers and concurrent readers open ``read_only`` instances.  All
writes funnel through the parent's commit boundary, so determinism
across ``--jobs`` is untouched.

**Degradation.**  Corruption, permission and schema-version problems
never take the run down: the store warns (``RuntimeWarning``) and
continues memory-only, i.e. with exactly the semantics of
:class:`MemoryResultStore`.  Loud, not fatal.

Layering: this module sits in ``engine`` and therefore imports the
``serialize`` codecs (a later layer) lazily, inside functions -- the
same sanctioned pattern :mod:`repro.engine.evaluation` uses for core
imports.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
)

from repro.engine.compiled_spec import Signature
from repro.engine.evaluation import EvaluatedDesign

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.compiled_spec import CompiledSpec

#: Layout/encoding version of the sqlite schema.  A database written by
#: a different version degrades loudly to memory-only instead of being
#: misread.
SCHEMA_VERSION = 1

#: Sentinel distinguishing "not stored" from a stored invalid verdict
#: (``None`` is a first-class stored value).
_MISSING = object()

#: Default LRU bound of the resident tier.  Far above the
#: reproduction's iteration budgets (so no behavior change), but it
#: keeps a long-running search from retaining one full schedule per
#: distinct candidate forever.
DEFAULT_MAX_ENTRIES = 65536


@dataclass(frozen=True)
class StoreStats:
    """Accounting of one store's *persistent* tier.

    ``hits``/``misses`` count probes that went past the resident tier
    (a memory-only store never probes, so both stay 0); ``writes``
    counts rows flushed to the database; ``open_ns``/``commit_ns`` are
    the wall time spent opening the database and committing batches --
    reporting only, never a decision.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    open_ns: int = 0
    commit_ns: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of persistent-tier probes served (0.0 when unused)."""
        if self.probes == 0:
            return 0.0
        return self.hits / self.probes


class ResultStore(Protocol):
    """Storage contract behind :class:`~repro.engine.cache.EvaluationCache`.

    The cache owns hit/miss *accounting*; a store owns *storage*:
    recency, eviction, persistence.  ``get`` refreshes recency (the
    cache's ``lookup`` path), ``__contains__`` is the accounting-free
    peek (the cache's batch-planning path), and ``None`` is a
    first-class stored outcome (a memoized invalid verdict).
    """

    max_entries: Optional[int]

    def __len__(self) -> int: ...

    def __contains__(self, signature: object) -> bool: ...

    @property
    def entries(self) -> "OrderedDict[Signature, object]": ...

    def get(self, signature: Signature) -> Tuple[bool, Optional[object]]: ...

    def put(
        self, signature: Signature, outcome: Optional[object]
    ) -> Optional[Signature]: ...

    def clear(self) -> None: ...

    def commit(self) -> None: ...

    def close(self) -> None: ...

    def stats(self) -> StoreStats: ...


class MemoryResultStore:
    """The in-memory LRU store (the original cache storage, verbatim).

    Parameters
    ----------
    max_entries:
        Upper bound on stored outcomes; the least recently used entry
        is evicted beyond it.  Defaults to :data:`DEFAULT_MAX_ENTRIES`;
        ``None`` means unbounded.
    """

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES):
        if max_entries is not None and max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        self.max_entries = max_entries
        #: Insertion-ordered storage; the front is the eviction end.
        self.entries: "OrderedDict[Signature, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, signature: object) -> bool:
        """Pure membership peek: no recency update."""
        return signature in self.entries

    def get(self, signature: Signature) -> Tuple[bool, Optional[object]]:
        """Return ``(found, outcome)``; a find refreshes LRU recency."""
        value = self.entries.get(signature, _MISSING)
        if value is _MISSING:
            return False, None
        self.entries.move_to_end(signature)
        return True, value

    def put(
        self, signature: Signature, outcome: Optional[object]
    ) -> Optional[Signature]:
        """Store one outcome; returns the evicted signature, if any.

        The eviction report is what lets a layered store (sqlite) keep
        its persistent tier in lockstep with the resident LRU.
        """
        self.entries[signature] = outcome
        self.entries.move_to_end(signature)
        if self.max_entries is not None and len(self.entries) > self.max_entries:
            evicted, _ = self.entries.popitem(last=False)
            return evicted
        return None

    def clear(self) -> None:
        """Drop every entry."""
        self.entries.clear()

    def commit(self) -> None:
        """Nothing buffered; memory writes are immediate."""

    def close(self) -> None:
        """Nothing to release."""

    def stats(self) -> StoreStats:
        """All zeros: a memory store has no persistent tier."""
        return StoreStats()


class SqliteResultStore:
    """Persistent two-tier result store over sqlite3.

    Layout (``SCHEMA_VERSION`` rows what follows):

    * ``meta(key TEXT PRIMARY KEY, value TEXT)`` -- holds
      ``schema_version``;
    * ``results(scenario TEXT, signature TEXT, payload BLOB,
      PRIMARY KEY (scenario, signature))`` -- one row per evaluated
      candidate, scenario-scoped so unrelated problems share a file.

    Payload encoding, by prefix byte: ``b"I"`` = memoized invalid
    verdict (``None``); ``b"E"`` + canonical JSON = a valid design's
    :class:`~repro.core.metrics.DesignMetrics` (the design itself is
    rebuilt from the signature, the schedule re-derived lazily on first
    access -- storing full schedules would force the decode the lazy
    array path exists to avoid); ``b"P"`` + pickle = anything else
    (diagnostic/test payloads).

    Parameters
    ----------
    path:
        Database file.  Created (with schema) when missing, unless
        ``read_only``.
    compiled:
        The compiled problem store rows belong to; required to decode
        ``b"E"`` rows back into :class:`EvaluatedDesign` objects and to
        derive the scenario key.  ``None`` restricts the store to
        pickle/invalid payloads.
    max_entries:
        Resident-tier LRU bound (same meaning as the memory store's).
    scenario:
        Explicit scenario key; defaults to
        :func:`repro.serialize.store_key.spec_store_key` of the
        compiled spec (empty string without one).
    read_only:
        Open the database read-only (pool workers).  Writes then stay
        in the resident tier and :meth:`commit` is a no-op.
    export_rows:
        Read-only variant for shard engines in a distributed race:
        new results are additionally buffered in their encoded wire
        form and survive :meth:`commit`, so the parent process (the
        single writer) can :meth:`drain_rows` them over IPC and
        persist them through its own read-write connection.  Requires
        ``read_only``.
    """

    def __init__(
        self,
        path: Union[str, Path],
        compiled: Optional["CompiledSpec"] = None,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        scenario: Optional[str] = None,
        read_only: bool = False,
        export_rows: bool = False,
    ):
        if export_rows and not read_only:
            raise ValueError(
                "export_rows is the read-only shard view's contract; "
                "a read-write store persists its own rows"
            )
        self.memory = MemoryResultStore(max_entries)
        self.max_entries = self.memory.max_entries
        self.path = str(path)
        self.compiled = compiled
        self.read_only = read_only
        self.export_rows = export_rows
        self.scenario = (
            scenario if scenario is not None else self._derive_scenario(compiled)
        )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.open_ns = 0
        self.commit_ns = 0
        #: Encoded rows awaiting the next commit, in insertion order.
        self._pending: "OrderedDict[str, bytes]" = OrderedDict()
        #: Uncommitted (but already executed) deletes exist.
        self._dirty = False
        # Set before _connect(): a failed first open degrades through
        # _degrade(), which swaps this attribute.
        self._conn: Optional[sqlite3.Connection] = None
        self._conn = self._connect()

    # ------------------------------------------------------------------
    # connection / schema
    # ------------------------------------------------------------------
    @staticmethod
    def _derive_scenario(compiled: Optional["CompiledSpec"]) -> str:
        if compiled is None:
            return ""
        from repro.serialize.store_key import spec_store_key

        return spec_store_key(compiled.spec)

    @property
    def persistent(self) -> bool:
        """Whether the database tier is (still) attached."""
        return self._conn is not None

    def _degrade(self, reason: str) -> None:
        """Drop the database tier, loudly; keep serving from memory."""
        warnings.warn(
            f"result store {self.path!r} unusable ({reason}); continuing "
            "memory-only -- results from this run will not persist",
            RuntimeWarning,
            stacklevel=3,
        )
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def _connect(self) -> Optional[sqlite3.Connection]:
        start = time.perf_counter_ns()
        try:
            if self.read_only:
                uri = f"file:{self.path}?mode=ro"
                conn = sqlite3.connect(uri, uri=True)
            else:
                conn = sqlite3.connect(self.path)
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                version = self._schema_version(conn)
                if version is None and not self.read_only:
                    conn.execute(
                        "CREATE TABLE IF NOT EXISTS meta ("
                        "key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                    )
                    conn.execute(
                        "CREATE TABLE IF NOT EXISTS results ("
                        "scenario TEXT NOT NULL, signature TEXT NOT NULL, "
                        "payload BLOB NOT NULL, "
                        "PRIMARY KEY (scenario, signature))"
                    )
                    conn.execute(
                        "INSERT OR REPLACE INTO meta (key, value) "
                        "VALUES ('schema_version', ?)",
                        (str(SCHEMA_VERSION),),
                    )
                    conn.commit()
                    version = SCHEMA_VERSION
                if version != SCHEMA_VERSION:
                    conn.close()
                    self._degrade(
                        f"schema version {version!r}, supported "
                        f"{SCHEMA_VERSION}"
                    )
                    return None
            except sqlite3.Error:
                conn.close()
                raise
            return conn
        except (sqlite3.Error, OSError, ValueError) as exc:
            self._degrade(f"{type(exc).__name__}: {exc}")
            return None
        finally:
            self.open_ns += time.perf_counter_ns() - start

    @staticmethod
    def _schema_version(conn: sqlite3.Connection) -> Optional[int]:
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.Error:
            return None
        if row is None:
            return None
        try:
            return int(row[0])
        except (TypeError, ValueError):
            return -1

    # ------------------------------------------------------------------
    # ResultStore surface
    # ------------------------------------------------------------------
    @property
    def entries(self) -> "OrderedDict[Signature, object]":
        """The resident tier's ordered entries (diagnostic access)."""
        return self.memory.entries

    def __len__(self) -> int:
        """Resident entries only (the cache-visible working set)."""
        return len(self.memory)

    def __contains__(self, signature: object) -> bool:
        """Accounting-free peek across both tiers."""
        if signature in self.memory:
            return True
        key = self._signature_key(signature)
        if key in self._pending:
            return True
        if self._conn is None:
            return False
        try:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE scenario = ? AND signature = ?",
                (self.scenario, key),
            ).fetchone()
        except sqlite3.Error as exc:
            self._degrade(f"{type(exc).__name__}: {exc}")
            return False
        return row is not None

    def get(self, signature: Signature) -> Tuple[bool, Optional[object]]:
        """Two-tier lookup; database finds are decoded and promoted."""
        found, outcome = self.memory.get(signature)
        if found:
            return True, outcome
        if self._conn is None and not self._pending:
            return False, None
        key = self._signature_key(signature)
        blob = self._pending.get(key)
        if blob is None and self._conn is not None:
            try:
                row = self._conn.execute(
                    "SELECT payload FROM results "
                    "WHERE scenario = ? AND signature = ?",
                    (self.scenario, key),
                ).fetchone()
            except sqlite3.Error as exc:
                self._degrade(f"{type(exc).__name__}: {exc}")
                row = None
            if row is not None:
                blob = bytes(row[0])
        if blob is None:
            self.misses += 1
            return False, None
        self.hits += 1
        outcome = self._decode(signature, blob)
        self._mirror_evict(self.memory.put(signature, outcome))
        return True, outcome

    def put(
        self, signature: Signature, outcome: Optional[object]
    ) -> Optional[Signature]:
        """Store in the resident tier and buffer the database row."""
        evicted = self.memory.put(signature, outcome)
        buffer_row = (
            self.export_rows
            if self.read_only
            else (self._conn is not None or self._pending)
        )
        if buffer_row:
            key = self._signature_key(signature)
            self._pending[key] = self._encode(outcome)
            self._pending.move_to_end(key)
        self._mirror_evict(evicted)
        return evicted

    def _mirror_evict(self, evicted: Optional[Signature]) -> None:
        """Keep the database in lockstep with resident LRU evictions.

        An entry the resident LRU dropped must *miss* on its next
        lookup -- exactly as it does on the memory backend -- so the
        cache contract stays byte-identical across backends.  The
        delete executes immediately (visible to this connection's own
        probes) and is made durable by the next :meth:`commit`.
        """
        if evicted is None or self.read_only:
            return
        key = self._signature_key(evicted)
        self._pending.pop(key, None)
        if self._conn is None:
            return
        try:
            self._conn.execute(
                "DELETE FROM results WHERE scenario = ? AND signature = ?",
                (self.scenario, key),
            )
            self._dirty = True
        except sqlite3.Error as exc:
            self._degrade(f"{type(exc).__name__}: {exc}")

    def clear(self) -> None:
        """Drop every entry of this scenario, in both tiers."""
        self.memory.clear()
        self._pending.clear()
        if self._conn is None or self.read_only:
            return
        try:
            self._conn.execute(
                "DELETE FROM results WHERE scenario = ?", (self.scenario,)
            )
            self._dirty = True
        except sqlite3.Error as exc:
            self._degrade(f"{type(exc).__name__}: {exc}")

    def commit(self) -> None:
        """Flush buffered rows in one ``executemany`` batch.

        The engine calls this at the end of every public evaluation
        API -- the store commit boundary -- so readers (workers, other
        runs) only ever observe batch-consistent state.
        """
        if self._conn is None or self.read_only:
            if not self.export_rows:
                self._pending.clear()
            # Export buffers survive commits: they are drained
            # explicitly (drain_rows) at the shard's final report.
            return
        if not self._pending and not self._dirty:
            return
        start = time.perf_counter_ns()
        try:
            if self._pending:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO results "
                    "(scenario, signature, payload) VALUES (?, ?, ?)",
                    [
                        (self.scenario, key, blob)
                        for key, blob in self._pending.items()
                    ],
                )
                self.writes += len(self._pending)
            self._conn.commit()
            self._pending.clear()
            self._dirty = False
        except sqlite3.Error as exc:
            self._pending.clear()
            self._degrade(f"{type(exc).__name__}: {exc}")
        finally:
            self.commit_ns += time.perf_counter_ns() - start

    def drain_rows(self) -> List[Tuple[str, bytes]]:
        """Hand over the buffered export rows (and forget them).

        The shard side of the distributed race's single-writer rule:
        a read-only ``export_rows`` view accumulates its newly priced
        results here, and the parent ships them home with
        :meth:`absorb_rows` through its one read-write connection.
        Rows are ``(signature_key, payload)`` pairs in first-write
        order; draining is destructive so repeated finals do not
        double-ship.
        """
        rows = list(self._pending.items())
        self._pending.clear()
        return rows

    def absorb_rows(self, rows: Iterable[Tuple[str, bytes]]) -> None:
        """Persist rows drained from a shard's read-only view.

        Only meaningful on the read-write store (the parent); encoded
        payloads are buffered as if priced locally and flushed in the
        next :meth:`commit` batch (``INSERT OR REPLACE``, so shards
        racing over overlapping designs stay idempotent).
        """
        if self.read_only:
            raise ValueError("absorb_rows requires the read-write store")
        for key, blob in rows:
            self._pending[key] = blob
            self._pending.move_to_end(key)
        self.commit()

    def close(self) -> None:
        """Flush and detach the database tier (idempotent)."""
        self.commit()
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def stats(self) -> StoreStats:
        return StoreStats(
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            open_ns=self.open_ns,
            commit_ns=self.commit_ns,
        )

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    @staticmethod
    def _signature_key(signature: Signature) -> str:
        from repro.serialize.store_key import signature_key

        try:
            return signature_key(signature)
        except TypeError:
            # Non-JSON key (diagnostic/test payloads): keep it usable
            # within the process; such keys are not meant to persist.
            return repr(signature)

    @staticmethod
    def _encode(outcome: Optional[object]) -> bytes:
        if outcome is None:
            return b"I"
        if isinstance(outcome, EvaluatedDesign):
            from repro.serialize.codec import metrics_to_dict

            payload = json.dumps(
                metrics_to_dict(outcome.metrics),
                sort_keys=True,
                separators=(",", ":"),
            )
            return b"E" + payload.encode("utf-8")
        return b"P" + pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode(self, signature: Signature, blob: bytes) -> Optional[object]:
        kind, body = blob[:1], blob[1:]
        if kind == b"I":
            return None
        if kind == b"P":
            return pickle.loads(body)
        if kind != b"E":
            raise ValueError(
                f"result store {self.path!r} holds a payload of unknown "
                f"kind {kind!r}"
            )
        if self.compiled is None:
            raise ValueError(
                "result store row holds an evaluated design, but this "
                "store was opened without a compiled spec to rebuild it "
                "against"
            )
        from repro.core.transformations import CandidateDesign
        from repro.model.mapping import Mapping
        from repro.serialize.codec import metrics_from_dict

        spec = self.compiled.spec
        design = CandidateDesign(
            Mapping(spec.current, spec.architecture, dict(signature[0])),
            dict(signature[1]),
            dict(signature[2]),
        )
        metrics = metrics_from_dict(json.loads(body.decode("utf-8")))
        return EvaluatedDesign(
            design, None, metrics, compiled=self.compiled
        )


def make_store(
    cache_store: str,
    cache_path: Optional[Union[str, Path]],
    compiled: Optional["CompiledSpec"],
    max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    read_only: bool = False,
) -> "ResultStore":
    """Build the backend named by the ``--cache-store`` switch.

    ``read_only`` builds the shard-engine view of a sqlite store: a
    read-only connection (never competing for the single rw lock) that
    buffers its new rows for the parent to drain and persist.  The
    memory backend has no file to protect and ignores the flag.
    """
    if cache_store == "memory":
        return MemoryResultStore(max_entries)
    if cache_store == "sqlite":
        if cache_path is None:
            raise ValueError(
                "cache_store='sqlite' requires a cache_path (the "
                "database file the results persist to)"
            )
        return SqliteResultStore(
            cache_path,
            compiled=compiled,
            max_entries=max_entries,
            read_only=read_only,
            export_rows=read_only,
        )
    raise ValueError(
        f"unknown cache_store {cache_store!r}; choose 'memory' or 'sqlite'"
    )


__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "SCHEMA_VERSION",
    "MemoryResultStore",
    "ResultStore",
    "SqliteResultStore",
    "StoreStats",
    "make_store",
]
