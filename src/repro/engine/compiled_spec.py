"""Problem compilation: everything derivable from a :class:`DesignSpec` alone.

Every strategy evaluation schedules *one candidate* of the *same
problem*: the application, the frozen base schedule, the horizon and
the default priorities never change inside a search run.  The seed
implementation nevertheless re-derived all of them per candidate inside
``ListScheduler.try_schedule`` -- thousands of times in one SA run.

:class:`CompiledSpec` performs that derivation once, in the spirit of
separating problem *construction* from repeated *solving*:

* the horizon is resolved and every graph period is validated against
  it up front (a per-candidate check before);
* the application is instance-expanded into a
  :class:`repro.sched.jobs.JobTable` (jobs, predecessor counts,
  successor edges, initial ready set);
* the default HCP priorities are computed once;
* the frozen base schedule is kept as a template; per-candidate
  evaluation only pays one ``copy()`` of it;
* candidate signatures -- the memoization key of the evaluation cache
  -- are derived here so the cache and the batch evaluator agree on
  identity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.sched.arrays import ArraySpec, resolve_engine_core
from repro.sched.jobs import JobTable, expand_jobs
from repro.sched.priorities import PriorityMap, hcp_priorities
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign
    from repro.model.application import Application
    from repro.model.architecture import Architecture

#: Hashable identity of one candidate design; see :func:`CompiledSpec.signature`.
Signature = Tuple[
    Tuple[Tuple[str, str], ...],
    Tuple[Tuple[str, float], ...],
    Tuple[Tuple[str, int], ...],
]


class CompiledSpec:
    """Precomputed, reusable form of one :class:`DesignSpec`.

    Instances are immutable in practice: nothing here is mutated after
    construction, so one compiled spec can be shared by an arbitrary
    number of candidate evaluations (including across processes -- the
    batch evaluator pickles the spec once per worker and recompiles).
    """

    def __init__(self, spec: "DesignSpec", engine_core: str = "object"):
        self.spec = spec
        # "object" here, not the strategy layer's "array" default: the
        # compiled spec is also built directly by low-level callers
        # (tests, tools) that expect the pinned reference semantics
        # unless they opt in.
        self.engine_core = resolve_engine_core(engine_core)
        self._arrays: Optional[ArraySpec] = None
        self.horizon = spec.effective_horizon()
        for graph in spec.current.graphs:
            if self.horizon % graph.period != 0:
                raise SchedulingError(
                    f"graph {graph.name!r} period {graph.period} does not "
                    f"divide the horizon {self.horizon}"
                )
        self._validate_architecture()
        self.job_table: JobTable = expand_jobs(spec.current, self.horizon)
        self.default_priorities: PriorityMap = hcp_priorities(
            spec.current, spec.architecture.bus
        )
        self._base_template: Optional[SystemSchedule] = spec.base_schedule

    def _validate_architecture(self) -> None:
        """Guard the spec against architecture/application mismatches.

        Scenario families generate heterogeneous platform variants
        (per-node speeds, variable-length TDMA slots); a WCET table
        referencing a node the architecture does not have -- e.g. an
        application generated for a different variant -- would
        otherwise surface as a confusing mapping failure deep inside
        the search.  The bus/node consistency itself is enforced by
        :class:`~repro.model.architecture.Architecture`; this check
        ties the *application* to the platform once per compilation.
        """
        architecture = self.spec.architecture
        for process in self.spec.current.processes:
            unknown = [n for n in process.wcet if n not in architecture]
            if unknown:
                raise SchedulingError(
                    f"process {process.id!r} allows nodes "
                    f"{sorted(unknown)} that the architecture does not "
                    f"have (nodes: {architecture.node_ids}); was the "
                    f"application generated for a different platform "
                    f"variant?"
                )
        if self.spec.base_schedule is not None:
            base = self.spec.base_schedule
            if base.architecture.node_ids != architecture.node_ids:
                raise SchedulingError(
                    "base schedule was built for architecture nodes "
                    f"{base.architecture.node_ids}, spec has "
                    f"{architecture.node_ids}"
                )

    # ------------------------------------------------------------------
    @property
    def architecture(self) -> "Architecture":
        return self.spec.architecture

    @property
    def application(self) -> "Application":
        return self.spec.current

    @property
    def total_jobs(self) -> int:
        """Process instances one candidate evaluation has to place."""
        return len(self.job_table)

    @property
    def use_arrays(self) -> bool:
        """Whether evaluations of this spec run the array kernel."""
        return self.engine_core == "array"

    @property
    def arrays(self) -> ArraySpec:
        """The structure-of-arrays lowering, built lazily exactly once.

        Available regardless of :attr:`engine_core` (as long as numpy
        is importable) so tests can compare both kernels over one
        compilation.
        """
        if self._arrays is None:
            self._arrays = ArraySpec(self)
        return self._arrays

    @property
    def base_template(self) -> Optional[SystemSchedule]:
        """The frozen base schedule (``None`` for green-field designs).

        Read-only by contract: the delta evaluator copies individual
        node states and the bus out of it when reconstructing a child
        schedule at a checkpoint.
        """
        return self._base_template

    def validate_against(
        self,
        application: "Application",
        base: Optional[SystemSchedule],
        horizon: Optional[int],
    ) -> None:
        """Guard against reusing this compiled spec for another problem.

        The compiled fast paths (list scheduler, initial mapper) ignore
        their ``application``/``base``/``horizon`` arguments in favor of
        the precomputed state, so a mismatch would silently schedule
        the wrong problem; this check turns it into an error.  Shared
        by both call sites so the accepted usages can never diverge.
        """
        if self.application is not application:
            raise SchedulingError(
                "compiled spec was built for application "
                f"{self.application.name!r}, not {application.name!r}"
            )
        if base is not None and base is not self.spec.base_schedule:
            raise SchedulingError(
                "compiled spec was built around a different base schedule"
            )
        if horizon is not None and horizon != self.horizon:
            raise SchedulingError(
                f"requested horizon {horizon} differs from compiled "
                f"horizon {self.horizon}"
            )

    def fresh_schedule(self) -> SystemSchedule:
        """A writable schedule seeded with the frozen reservations.

        This is the only per-candidate setup cost left: one copy of the
        base template (or an empty schedule for green-field designs).
        """
        if self._base_template is not None:
            return self._base_template.copy()
        return SystemSchedule(self.spec.architecture, self.horizon)

    def signature(self, design: "CandidateDesign") -> Signature:
        """Hashable identity of ``design`` for memoization.

        Two candidates with equal mapping, priorities and message
        delays produce byte-identical schedules (the list scheduler is
        deterministic), so this triple is a sound cache key.
        """
        return (
            tuple(sorted(design.mapping.as_dict().items())),
            tuple(sorted(design.priorities.items())),
            tuple(sorted(design.message_delays.items())),
        )
