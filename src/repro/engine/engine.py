"""The evaluation engine: compiled problem + cache + batch execution.

:class:`EvaluationEngine` is the one inner loop every strategy shares.
It owns

* a :class:`~repro.engine.compiled_spec.CompiledSpec` (problem
  construction, done once),
* an optional :class:`~repro.engine.cache.EvaluationCache` (memoized
  solving), and
* a :class:`~repro.engine.batch.BatchEvaluator` (parallel solving of
  candidate batches).

``core.strategy.DesignEvaluator`` is a thin facade over this class, so
existing strategy code keeps its historical API while all performance
work happens here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, NamedTuple, Optional, Sequence

from repro.engine.batch import BatchEvaluator
from repro.engine.cache import DEFAULT_MAX_ENTRIES, CacheStats, EvaluationCache
from repro.engine.compiled_spec import CompiledSpec, Signature
from repro.engine.delta import DeltaStats
from repro.engine.evaluation import EvaluatedDesign
from repro.engine.store import SqliteResultStore, StoreStats, make_store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import DesignMetrics
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign, Transformation
    from repro.sched.schedule import SystemSchedule


class EngineCounters(NamedTuple):
    """A point-in-time snapshot of every engine counter.

    The counter-level sibling of :class:`CacheStats` /
    :class:`DeltaStats`: one read returns all counters together
    (the portfolio runner records them as its race-level accounting),
    and two snapshots subtract (``after - before``) to attribute
    engine work to a window of activity.

    The ``*_ns`` fields are the stage-time buckets of the evaluation
    pipeline (scheduling pass, metric pricing, schedule decode),
    summed across the engine process and every pool worker.  They
    feed reporting only, never a decision.

    The ``store_*`` fields are the persistent result store's
    accounting: probes past the resident tier (hits/misses), rows
    flushed, and the wall time spent opening the database and
    committing write batches.  All zero on the memory backend.
    """

    evaluations: int
    cache_hits: int
    cache_misses: int
    delta_hits: int
    delta_fallbacks: int
    sched_ns: int = 0
    metrics_ns: int = 0
    decode_ns: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    store_open_ns: int = 0
    store_commit_ns: int = 0

    def __sub__(self, other: "EngineCounters") -> "EngineCounters":
        return EngineCounters(*(a - b for a, b in zip(self, other)))

    def __add__(self, other: "EngineCounters") -> "EngineCounters":  # type: ignore[override]
        """Field-wise merge -- fleet totals across shard engines."""
        return EngineCounters(*(a + b for a, b in zip(self, other)))


class EvaluationEngine:
    """Fast, cached, parallelizable evaluation of candidate designs.

    Parameters
    ----------
    spec:
        The design problem; compiled once at construction.
    use_cache:
        Memoize evaluation outcomes (including invalid verdicts).
    jobs:
        Worker processes for batch evaluation; ``1`` stays serial.
    max_cache_entries:
        LRU bound of the cache (default
        :data:`repro.engine.cache.DEFAULT_MAX_ENTRIES`; ``None`` =
        unbounded).
    parallel_threshold:
        Forwarded to :class:`BatchEvaluator`; minimum problem size (in
        expanded jobs) for the process pool to engage.
    use_delta:
        Enable the incremental (move-aware) evaluation kernel: cold
        evaluations record scheduling traces, and the ``evaluate_move``
        / ``evaluate_moves`` APIs reschedule children from their
        parent's checkpoints.  Results are bit-identical either way;
        this is the CLI's ``--no-delta`` escape hatch.
    engine_core:
        ``"array"`` runs the structure-of-arrays scheduler kernel
        (:mod:`repro.sched.arrays`); ``"object"`` runs the pinned
        object-graph reference.  Results are byte-identical; this is
        the CLI's ``--engine-core`` switch.  Defaults to ``"object"``
        here (the strategy layer opts into ``"array"``).
    cache_store:
        Cache storage backend: ``"memory"`` (the historical in-process
        LRU) or ``"sqlite"`` (persistent across processes and runs;
        see :mod:`repro.engine.store`).  Results are byte-identical
        either way; this is the CLI's ``--cache-store`` switch.
    cache_path:
        Database file of the sqlite backend (required with
        ``cache_store="sqlite"``, ignored otherwise).
    store_read_only:
        Open the sqlite backend as a read-only shard view (distributed
        racing): warm rows are served from the database, new rows stay
        resident and are buffered for :meth:`drain_store_rows`, and
        the single read-write connection remains with the coordinating
        parent.  Ignored by the memory backend.
    """

    def __init__(
        self,
        spec: "DesignSpec",
        use_cache: bool = True,
        jobs: int = 1,
        max_cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        parallel_threshold: Optional[int] = None,
        use_delta: bool = True,
        engine_core: str = "object",
        cache_store: str = "memory",
        cache_path: Optional[str] = None,
        store_read_only: bool = False,
    ):
        self.spec = spec
        self.compiled = CompiledSpec(spec, engine_core=engine_core)
        self.cache: Optional[EvaluationCache] = None
        store_path: Optional[str] = None
        store_scenario: Optional[str] = None
        if use_cache:
            backend = make_store(
                cache_store,
                cache_path,
                self.compiled,
                max_cache_entries,
                read_only=store_read_only,
            )
            self.cache = EvaluationCache(max_cache_entries, store=backend)
            if isinstance(backend, SqliteResultStore) and backend.persistent:
                # Workers read through the same database (read-only);
                # the single read-write connection stays here.
                store_path = backend.path
                store_scenario = backend.scenario
        self.batch = BatchEvaluator(
            self.compiled,
            jobs=jobs,
            parallel_threshold=parallel_threshold,
            use_delta=use_delta,
            store_path=store_path,
            store_scenario=store_scenario,
        )
        self.use_delta = use_delta
        self.evaluations = 0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, design: "CandidateDesign") -> Optional[EvaluatedDesign]:
        """Schedule and price one candidate; ``None`` when invalid.

        Raises
        ------
        RuntimeError
            If the engine has been closed (even for would-be cache
            hits: a closed engine refuses all evaluation uniformly).
        """
        self._ensure_open()
        self.evaluations += 1
        if self.cache is None:
            return self.batch.evaluate_one(design)
        signature = self.compiled.signature(design)
        found, outcome = self.cache.lookup(signature)
        if found:
            return outcome
        outcome = self.batch.evaluate_one(design)
        self.cache.store(signature, outcome)
        self.cache.commit()
        return outcome

    def evaluate_many(
        self, designs: Sequence["CandidateDesign"]
    ) -> List[Optional[EvaluatedDesign]]:
        """Score a batch of candidates, preserving input order.

        Cached outcomes are served without scheduling; the remaining
        misses (deduplicated within the batch) go through the batch
        evaluator -- in parallel when the problem and batch are large
        enough.
        """
        self._ensure_open()
        designs = list(designs)
        self.evaluations += len(designs)
        if self.cache is None:
            return self.batch.evaluate_batch(designs)
        return self._cached_batch(
            [self.compiled.signature(d) for d in designs],
            solve_fresh=lambda indices: self.batch.evaluate_batch(
                [designs[i] for i in indices]
            ),
            solve_one=lambda i: self.batch.evaluate_one(designs[i]),
        )

    def _cached_batch(
        self,
        signatures: List[Signature],
        solve_fresh: Callable[[List[int]], List[Optional[EvaluatedDesign]]],
        solve_one: Callable[[int], Optional[EvaluatedDesign]],
    ) -> List[Optional[EvaluatedDesign]]:
        """Cache plan/commit shared by :meth:`evaluate_many` and
        :meth:`evaluate_moves`.

        Plan with a pure peek which signatures need solving
        (deduplicated within the batch), solve them through
        ``solve_fresh(indices)``, then commit in batch order so cache
        accounting *and* LRU recency are exactly those of a sequence of
        single evaluations: first occurrence of a fresh signature =
        miss + store, every later use = hit + move-to-end.  An entry
        evicted between its store and a later use (cache bound smaller
        than the batch's working set) is re-solved serially via
        ``solve_one(i)``, exactly as single calls would.  The batch
        ends at the store commit boundary: buffered backend writes are
        flushed as one batch.
        """
        fresh_indices: List[int] = []
        fresh_signatures: set = set()
        for i, signature in enumerate(signatures):
            if signature not in fresh_signatures and signature not in self.cache:
                fresh_signatures.add(signature)
                fresh_indices.append(i)
        outcome_by_signature: dict = {}
        if fresh_indices:
            outcomes = solve_fresh(fresh_indices)
            outcome_by_signature = {
                signatures[i]: outcome
                for i, outcome in zip(fresh_indices, outcomes)
            }

        results: List[Optional[EvaluatedDesign]] = [None] * len(signatures)
        for i, signature in enumerate(signatures):
            found, outcome = self.cache.lookup(signature)
            if found:
                results[i] = outcome
                continue
            if signature in outcome_by_signature:
                outcome = outcome_by_signature[signature]
            else:
                outcome = solve_one(i)
            self.cache.store(signature, outcome)
            results[i] = outcome
        self.cache.commit()
        return results

    def evaluate_move(
        self, parent: EvaluatedDesign, move: "Transformation"
    ) -> Optional[EvaluatedDesign]:
        """Schedule and price the child of ``(parent, move)``.

        Exactly :meth:`evaluate` of ``move.apply(parent.design)`` --
        same outcome, same cache accounting -- but served through the
        incremental kernel when the engine runs in delta mode: the
        child is rescheduled from the parent's earliest dirty event
        instead of from scratch.  A parent without a trace (delta off,
        or from a non-traced source) falls back to a cold evaluation.

        Raises
        ------
        RuntimeError
            If the engine has been closed.
        """
        self._ensure_open()
        self.evaluations += 1
        child = move.apply(parent.design)
        if self.cache is None:
            return self.batch.evaluate_move_one(parent, move, child)
        signature = self.compiled.signature(child)
        found, outcome = self.cache.lookup(signature)
        if found:
            return outcome
        outcome = self.batch.evaluate_move_one(parent, move, child)
        self.cache.store(signature, outcome)
        self.cache.commit()
        return outcome

    def evaluate_moves(
        self,
        parent: EvaluatedDesign,
        moves: Sequence["Transformation"],
    ) -> List[Optional[EvaluatedDesign]]:
        """Score one parent's whole move neighbourhood, in input order.

        The move-aware sibling of :meth:`evaluate_many`: cached
        outcomes are served without scheduling, and the remaining
        misses (deduplicated within the batch) are rescheduled from the
        parent's checkpoints -- in parallel when the problem and batch
        are large enough, shipping ``(parent signature, move)`` per
        candidate on the wire.  Cache accounting is exactly that of a
        sequence of single :meth:`evaluate_move` calls.
        """
        self._ensure_open()
        moves = list(moves)
        self.evaluations += len(moves)
        children = [move.apply(parent.design) for move in moves]
        if self.cache is None:
            return self.batch.evaluate_moves(parent, moves, children)
        return self._cached_batch(
            [self.compiled.signature(child) for child in children],
            solve_fresh=lambda indices: self.batch.evaluate_moves(
                parent,
                [moves[i] for i in indices],
                [children[i] for i in indices],
            ),
            solve_one=lambda i: self.batch.evaluate_move_one(
                parent, moves[i], children[i]
            ),
        )

    def price(self, schedule: "SystemSchedule") -> "DesignMetrics":
        """Metric evaluation of an already-built schedule.

        Used by strategies that obtain a schedule outside the candidate
        loop (AH reports the Initial Mapping's own schedule), so every
        objective value in the system comes from one code path.
        """
        from repro.core.metrics import evaluate_design

        return evaluate_design(schedule, self.spec.future, self.spec.weights)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    def cache_stats(self) -> CacheStats:
        """Hit/miss accounting (all zeros when caching is disabled)."""
        if self.cache is None:
            return CacheStats(0, 0, 0)
        return self.cache.stats()

    def store_stats(self) -> StoreStats:
        """Persistent-store accounting (all zeros on the memory backend).

        Worker read-through hits (pool workers probing the store for
        payloads the parent dispatched) are folded into ``hits``;
        misses are attributed by the parent's own lookups only, so one
        cold evaluation never counts twice.
        """
        if self.cache is None:
            base = StoreStats()
        else:
            base = self.cache.store_stats()
        if self.batch.store_hits:
            base = StoreStats(
                hits=base.hits + self.batch.store_hits,
                misses=base.misses,
                writes=base.writes,
                open_ns=base.open_ns,
                commit_ns=base.commit_ns,
            )
        return base

    @property
    def store_hits(self) -> int:
        return self.store_stats().hits

    @property
    def store_misses(self) -> int:
        return self.store_stats().misses

    @property
    def store_writes(self) -> int:
        return self.store_stats().writes

    @property
    def store_open_ns(self) -> int:
        return self.store_stats().open_ns

    @property
    def store_commit_ns(self) -> int:
        return self.store_stats().commit_ns

    @property
    def delta_hits(self) -> int:
        return self.batch.delta_hits

    @property
    def delta_fallbacks(self) -> int:
        return self.batch.delta_fallbacks

    def delta_stats(self) -> DeltaStats:
        """Delta hit/fallback accounting (zeros when delta is off)."""
        return DeltaStats(self.batch.delta_hits, self.batch.delta_fallbacks)

    @property
    def sched_ns(self) -> int:
        """Wall nanoseconds spent in scheduling passes."""
        return self.batch.timings.sched_ns

    @property
    def metrics_ns(self) -> int:
        """Wall nanoseconds spent pricing metrics."""
        return self.batch.timings.metrics_ns

    @property
    def decode_ns(self) -> int:
        """Wall nanoseconds spent decoding object schedules."""
        return self.batch.timings.decode_ns

    def drain_store_rows(self) -> List[tuple]:
        """Hand over encoded result rows a read-only shard view buffered.

        Empty on the memory backend and on read-write stores (which
        persist their own rows at every commit boundary); see
        :meth:`SqliteResultStore.drain_rows`.
        """
        backend = self.cache.backend if self.cache is not None else None
        if isinstance(backend, SqliteResultStore) and backend.export_rows:
            return backend.drain_rows()
        return []

    def absorb_store_rows(self, rows: Sequence[tuple]) -> None:
        """Persist rows drained from shard engines (parent side only).

        A no-op on the memory backend; see
        :meth:`SqliteResultStore.absorb_rows`.
        """
        if not rows:
            return
        backend = self.cache.backend if self.cache is not None else None
        if isinstance(backend, SqliteResultStore):
            backend.absorb_rows(rows)

    def counters(self) -> EngineCounters:
        """Snapshot of all counters (readable even after close)."""
        store = self.store_stats()
        return EngineCounters(
            evaluations=self.evaluations,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            delta_hits=self.delta_hits,
            delta_fallbacks=self.delta_fallbacks,
            sched_ns=self.sched_ns,
            metrics_ns=self.metrics_ns,
            decode_ns=self.decode_ns,
            store_hits=store.hits,
            store_misses=store.misses,
            store_writes=store.writes,
            store_open_ns=store.open_ns,
            store_commit_ns=store.commit_ns,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self.batch.closed

    def _ensure_open(self) -> None:
        if self.batch.closed:
            raise RuntimeError(
                "EvaluationEngine is closed; build a fresh engine instead "
                "of evaluating through a closed one"
            )

    def close(self) -> None:
        """Release the worker pool and retire the engine (idempotent).

        A closed engine refuses further ``evaluate``/``evaluate_many``
        calls (``RuntimeError``) instead of silently recreating worker
        processes; accounting accessors stay readable so strategies can
        record statistics after the search finished or failed.  The
        cache backend is flushed and released with the pool, so every
        memoized outcome of a completed run is durable.
        """
        self.batch.close()
        if self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
