"""The evaluation engine: compiled problem + cache + batch execution.

:class:`EvaluationEngine` is the one inner loop every strategy shares.
It owns

* a :class:`~repro.engine.compiled_spec.CompiledSpec` (problem
  construction, done once),
* an optional :class:`~repro.engine.cache.EvaluationCache` (memoized
  solving), and
* a :class:`~repro.engine.batch.BatchEvaluator` (parallel solving of
  candidate batches).

``core.strategy.DesignEvaluator`` is a thin facade over this class, so
existing strategy code keeps its historical API while all performance
work happens here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.engine.batch import BatchEvaluator
from repro.engine.cache import DEFAULT_MAX_ENTRIES, CacheStats, EvaluationCache
from repro.engine.compiled_spec import CompiledSpec
from repro.engine.evaluation import EvaluatedDesign

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import DesignMetrics
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign
    from repro.sched.schedule import SystemSchedule


class EvaluationEngine:
    """Fast, cached, parallelizable evaluation of candidate designs.

    Parameters
    ----------
    spec:
        The design problem; compiled once at construction.
    use_cache:
        Memoize evaluation outcomes (including invalid verdicts).
    jobs:
        Worker processes for batch evaluation; ``1`` stays serial.
    max_cache_entries:
        LRU bound of the cache (default
        :data:`repro.engine.cache.DEFAULT_MAX_ENTRIES`; ``None`` =
        unbounded).
    parallel_threshold:
        Forwarded to :class:`BatchEvaluator`; minimum problem size (in
        expanded jobs) for the process pool to engage.
    """

    def __init__(
        self,
        spec: "DesignSpec",
        use_cache: bool = True,
        jobs: int = 1,
        max_cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        parallel_threshold: Optional[int] = None,
    ):
        self.spec = spec
        self.compiled = CompiledSpec(spec)
        self.cache: Optional[EvaluationCache] = (
            EvaluationCache(max_cache_entries) if use_cache else None
        )
        self.batch = BatchEvaluator(
            self.compiled, jobs=jobs, parallel_threshold=parallel_threshold
        )
        self.evaluations = 0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, design: "CandidateDesign") -> Optional[EvaluatedDesign]:
        """Schedule and price one candidate; ``None`` when invalid."""
        self.evaluations += 1
        if self.cache is None:
            return self.batch.evaluate_one(design)
        signature = self.compiled.signature(design)
        found, outcome = self.cache.lookup(signature)
        if found:
            return outcome
        outcome = self.batch.evaluate_one(design)
        self.cache.store(signature, outcome)
        return outcome

    def evaluate_many(
        self, designs: Sequence["CandidateDesign"]
    ) -> List[Optional[EvaluatedDesign]]:
        """Score a batch of candidates, preserving input order.

        Cached outcomes are served without scheduling; the remaining
        misses (deduplicated within the batch) go through the batch
        evaluator -- in parallel when the problem and batch are large
        enough.
        """
        designs = list(designs)
        self.evaluations += len(designs)
        if self.cache is None:
            return self.batch.evaluate_batch(designs)

        results: List[Optional[EvaluatedDesign]] = [None] * len(designs)
        signatures = [self.compiled.signature(d) for d in designs]
        fresh_indices: List[int] = []
        fresh_by_signature: dict = {}
        for i, signature in enumerate(signatures):
            if signature in fresh_by_signature:
                # Duplicate within the batch: served without scheduling
                # once the first occurrence is evaluated, so it counts
                # as a hit (keeps evaluations == hits + misses).
                self.cache.count_hit()
                fresh_by_signature[signature].append(i)
                continue
            found, outcome = self.cache.lookup(signature)
            if found:
                results[i] = outcome
            else:
                fresh_indices.append(i)
                fresh_by_signature[signature] = [i]

        if fresh_indices:
            outcomes = self.batch.evaluate_batch(
                [designs[i] for i in fresh_indices]
            )
            for i, outcome in zip(fresh_indices, outcomes):
                self.cache.store(signatures[i], outcome)
                for slot in fresh_by_signature[signatures[i]]:
                    results[slot] = outcome
        return results

    def price(self, schedule: "SystemSchedule") -> "DesignMetrics":
        """Metric evaluation of an already-built schedule.

        Used by strategies that obtain a schedule outside the candidate
        loop (AH reports the Initial Mapping's own schedule), so every
        objective value in the system comes from one code path.
        """
        from repro.core.metrics import evaluate_design

        return evaluate_design(schedule, self.spec.future, self.spec.weights)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    def cache_stats(self) -> CacheStats:
        """Hit/miss accounting (all zeros when caching is disabled)."""
        if self.cache is None:
            return CacheStats(0, 0, 0)
        return self.cache.stats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool; the engine stays usable serially."""
        self.batch.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
