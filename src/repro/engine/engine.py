"""The evaluation engine: compiled problem + cache + batch execution.

:class:`EvaluationEngine` is the one inner loop every strategy shares.
It owns

* a :class:`~repro.engine.compiled_spec.CompiledSpec` (problem
  construction, done once),
* an optional :class:`~repro.engine.cache.EvaluationCache` (memoized
  solving), and
* a :class:`~repro.engine.batch.BatchEvaluator` (parallel solving of
  candidate batches).

``core.strategy.DesignEvaluator`` is a thin facade over this class, so
existing strategy code keeps its historical API while all performance
work happens here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.engine.batch import BatchEvaluator
from repro.engine.cache import DEFAULT_MAX_ENTRIES, CacheStats, EvaluationCache
from repro.engine.compiled_spec import CompiledSpec
from repro.engine.evaluation import EvaluatedDesign

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import DesignMetrics
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign
    from repro.sched.schedule import SystemSchedule


class EvaluationEngine:
    """Fast, cached, parallelizable evaluation of candidate designs.

    Parameters
    ----------
    spec:
        The design problem; compiled once at construction.
    use_cache:
        Memoize evaluation outcomes (including invalid verdicts).
    jobs:
        Worker processes for batch evaluation; ``1`` stays serial.
    max_cache_entries:
        LRU bound of the cache (default
        :data:`repro.engine.cache.DEFAULT_MAX_ENTRIES`; ``None`` =
        unbounded).
    parallel_threshold:
        Forwarded to :class:`BatchEvaluator`; minimum problem size (in
        expanded jobs) for the process pool to engage.
    """

    def __init__(
        self,
        spec: "DesignSpec",
        use_cache: bool = True,
        jobs: int = 1,
        max_cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        parallel_threshold: Optional[int] = None,
    ):
        self.spec = spec
        self.compiled = CompiledSpec(spec)
        self.cache: Optional[EvaluationCache] = (
            EvaluationCache(max_cache_entries) if use_cache else None
        )
        self.batch = BatchEvaluator(
            self.compiled, jobs=jobs, parallel_threshold=parallel_threshold
        )
        self.evaluations = 0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, design: "CandidateDesign") -> Optional[EvaluatedDesign]:
        """Schedule and price one candidate; ``None`` when invalid.

        Raises
        ------
        RuntimeError
            If the engine has been closed (even for would-be cache
            hits: a closed engine refuses all evaluation uniformly).
        """
        self._ensure_open()
        self.evaluations += 1
        if self.cache is None:
            return self.batch.evaluate_one(design)
        signature = self.compiled.signature(design)
        found, outcome = self.cache.lookup(signature)
        if found:
            return outcome
        outcome = self.batch.evaluate_one(design)
        self.cache.store(signature, outcome)
        return outcome

    def evaluate_many(
        self, designs: Sequence["CandidateDesign"]
    ) -> List[Optional[EvaluatedDesign]]:
        """Score a batch of candidates, preserving input order.

        Cached outcomes are served without scheduling; the remaining
        misses (deduplicated within the batch) go through the batch
        evaluator -- in parallel when the problem and batch are large
        enough.
        """
        self._ensure_open()
        designs = list(designs)
        self.evaluations += len(designs)
        if self.cache is None:
            return self.batch.evaluate_batch(designs)

        signatures = [self.compiled.signature(d) for d in designs]
        # Plan: which signatures need solving?  A pure peek -- the
        # accounting and recency updates happen below, in batch order.
        fresh_indices: List[int] = []
        fresh_signatures: set = set()
        for i, signature in enumerate(signatures):
            if signature not in fresh_signatures and signature not in self.cache:
                fresh_signatures.add(signature)
                fresh_indices.append(i)
        outcome_by_signature: dict = {}
        if fresh_indices:
            outcomes = self.batch.evaluate_batch(
                [designs[i] for i in fresh_indices]
            )
            outcome_by_signature = {
                signatures[i]: outcome
                for i, outcome in zip(fresh_indices, outcomes)
            }

        # Commit in batch order so cache accounting *and* LRU recency
        # are exactly those of a sequence of single evaluate() calls:
        # first occurrence of a fresh signature = miss + store, every
        # later use = hit + move-to-end.
        results: List[Optional[EvaluatedDesign]] = [None] * len(designs)
        for i, signature in enumerate(signatures):
            found, outcome = self.cache.lookup(signature)
            if found:
                results[i] = outcome
                continue
            if signature in outcome_by_signature:
                outcome = outcome_by_signature[signature]
            else:
                # The entry was evicted between its store and this use
                # (cache bound smaller than the batch's working set);
                # re-solve serially, exactly as single calls would.
                outcome = self.batch.evaluate_one(designs[i])
            self.cache.store(signature, outcome)
            results[i] = outcome
        return results

    def price(self, schedule: "SystemSchedule") -> "DesignMetrics":
        """Metric evaluation of an already-built schedule.

        Used by strategies that obtain a schedule outside the candidate
        loop (AH reports the Initial Mapping's own schedule), so every
        objective value in the system comes from one code path.
        """
        from repro.core.metrics import evaluate_design

        return evaluate_design(schedule, self.spec.future, self.spec.weights)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    def cache_stats(self) -> CacheStats:
        """Hit/miss accounting (all zeros when caching is disabled)."""
        if self.cache is None:
            return CacheStats(0, 0, 0)
        return self.cache.stats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self.batch.closed

    def _ensure_open(self) -> None:
        if self.batch.closed:
            raise RuntimeError(
                "EvaluationEngine is closed; build a fresh engine instead "
                "of evaluating through a closed one"
            )

    def close(self) -> None:
        """Release the worker pool and retire the engine (idempotent).

        A closed engine refuses further ``evaluate``/``evaluate_many``
        calls (``RuntimeError``) instead of silently recreating worker
        processes; accounting accessors stay readable so strategies can
        record statistics after the search finished or failed.
        """
        self.batch.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
