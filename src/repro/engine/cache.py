"""Memoization of candidate evaluations.

The search strategies revisit design points constantly: SA proposes a
move, rejects it, and proposes it again a hundred iterations later; the
steepest-descent neighbourhood of consecutive iterations overlaps
heavily (only the processes near the applied move change).  Since the
list scheduler is a deterministic function of the candidate triple
``(mapping, priorities, message_delays)``, every repeated evaluation is
pure waste.

:class:`EvaluationCache` memoizes evaluation outcomes -- including the
*invalid* verdict (``None``), which is exactly as expensive to
recompute -- keyed by :meth:`CompiledSpec.signature`.  Hit/miss
counters feed the per-run statistics surfaced in
:class:`repro.core.strategy.DesignResult` and the experiment reports.

Since the result-store refactor the cache is a thin *accounting* layer
over a :class:`~repro.engine.store.ResultStore` backend -- the
in-memory LRU by default, or the persistent sqlite store, which serves
results solved by earlier runs and other processes.  The backend owns
storage, recency and eviction; the cache owns the counters, so the
counter contract is identical over every backend.

Accounting and LRU recency are atomic by construction: every hit goes
through :meth:`lookup`, which counts it and refreshes recency in one
step (``in`` is the accounting-free peek for callers that only plan
work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.engine.compiled_spec import Signature
from repro.engine.store import (
    DEFAULT_MAX_ENTRIES,
    MemoryResultStore,
    ResultStore,
    StoreStats,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections import OrderedDict


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of one cache over its lifetime."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class EvaluationCache:
    """Memo of signature -> evaluation outcome over a result store.

    Parameters
    ----------
    max_entries:
        Upper bound on resident outcomes; the least recently used
        entry is evicted beyond it.  Defaults to
        :data:`DEFAULT_MAX_ENTRIES`; ``None`` means unbounded.  Only
        used when ``store`` is not given.
    store:
        The storage backend.  Defaults to a fresh
        :class:`~repro.engine.store.MemoryResultStore` bounded by
        ``max_entries`` -- the historical in-memory cache, verbatim.
    """

    def __init__(
        self,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        store: Optional[ResultStore] = None,
    ):
        if store is None:
            store = MemoryResultStore(max_entries)
        self.backend: ResultStore = store
        self.max_entries = store.max_entries
        self.hits = 0
        self.misses = 0

    @property
    def _store(self) -> "OrderedDict[Signature, object]":
        """The resident tier's ordered entries (tests, diagnostics)."""
        return self.backend.entries

    def __len__(self) -> int:
        return len(self.backend)

    def __contains__(self, signature: Signature) -> bool:
        """Pure membership peek: no counters, no recency update.

        Lets the engine plan a batch (which signatures need solving)
        without perturbing the accounting that :meth:`lookup` owns.
        """
        return signature in self.backend

    def lookup(self, signature: Signature) -> Tuple[bool, Optional[object]]:
        """Return ``(found, outcome)``; counts the hit or miss.

        ``outcome`` is the memoized evaluation result -- possibly
        ``None`` for a cached invalid verdict -- and only meaningful
        when ``found`` is True.  Callers must branch on ``found``, not
        on the outcome's truthiness: treating a cached invalid as "not
        found" silently re-evaluates it every time.
        """
        found, outcome = self.backend.get(signature)
        if not found:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, outcome

    def store(self, signature: Signature, outcome: Optional[object]) -> None:
        """Memoize one outcome (``None`` records an invalid candidate)."""
        self.backend.put(signature, outcome)

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating."""
        self.backend.clear()

    def commit(self) -> None:
        """Flush backend write buffers (the store commit boundary)."""
        self.backend.commit()

    def close(self) -> None:
        """Flush and release the backend (idempotent)."""
        self.backend.close()

    def stats(self) -> CacheStats:
        """A snapshot of the accounting counters."""
        return CacheStats(self.hits, self.misses, len(self.backend))

    def store_stats(self) -> StoreStats:
        """The backend's persistent-tier accounting."""
        return self.backend.stats()
