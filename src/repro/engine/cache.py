"""Memoization of candidate evaluations.

The search strategies revisit design points constantly: SA proposes a
move, rejects it, and proposes it again a hundred iterations later; the
steepest-descent neighbourhood of consecutive iterations overlaps
heavily (only the processes near the applied move change).  Since the
list scheduler is a deterministic function of the candidate triple
``(mapping, priorities, message_delays)``, every repeated evaluation is
pure waste.

:class:`EvaluationCache` memoizes evaluation outcomes -- including the
*invalid* verdict (``None``), which is exactly as expensive to
recompute -- keyed by :meth:`CompiledSpec.signature`.  Hit/miss
counters feed the per-run statistics surfaced in
:class:`repro.core.strategy.DesignResult` and the experiment reports.

Accounting and LRU recency are atomic by construction: every hit goes
through :meth:`lookup`, which counts it and moves the entry to the
recent end in one step (``in`` is the accounting-free peek for callers
that only plan work).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.engine.compiled_spec import Signature

#: Sentinel distinguishing "not cached" from a cached invalid verdict.
_MISSING = object()

#: Default LRU bound.  Far above the reproduction's iteration budgets
#: (so no behavior change), but it keeps a long-running search from
#: retaining one full schedule per distinct candidate forever.
DEFAULT_MAX_ENTRIES = 65536


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of one cache over its lifetime."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class EvaluationCache:
    """LRU-bounded memo of signature -> evaluation outcome.

    Parameters
    ----------
    max_entries:
        Upper bound on stored outcomes; the least recently used entry
        is evicted beyond it.  Defaults to :data:`DEFAULT_MAX_ENTRIES`;
        ``None`` means unbounded.
    """

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES):
        if max_entries is not None and max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self._store: "OrderedDict[Signature, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, signature: Signature) -> bool:
        """Pure membership peek: no counters, no recency update.

        Lets the engine plan a batch (which signatures need solving)
        without perturbing the accounting that :meth:`lookup` owns.
        """
        return signature in self._store

    def lookup(self, signature: Signature) -> Tuple[bool, Optional[object]]:
        """Return ``(found, outcome)``; counts the hit or miss.

        ``outcome`` is the memoized evaluation result -- possibly
        ``None`` for a cached invalid verdict -- and only meaningful
        when ``found`` is True.
        """
        value = self._store.get(signature, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return False, None
        self.hits += 1
        self._store.move_to_end(signature)
        return True, value

    def store(self, signature: Signature, outcome: Optional[object]) -> None:
        """Memoize one outcome (``None`` records an invalid candidate)."""
        self._store[signature] = outcome
        self._store.move_to_end(signature)
        if self.max_entries is not None and len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating."""
        self._store.clear()

    def stats(self) -> CacheStats:
        """A snapshot of the accounting counters."""
        return CacheStats(self.hits, self.misses, len(self._store))
