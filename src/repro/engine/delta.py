"""Move-aware incremental (delta) evaluation of candidate designs.

Every candidate a search strategy proposes differs from its *parent* by
one transformation -- a remap, a priority swap, or a message delay.  A
cold evaluation nevertheless rebuilds the entire system schedule from
the compiled spec, redoing work that is byte-identical to the parent's
for every decision before the move first matters.

:class:`DeltaEvaluator` exploits that structure in three steps:

1. **Divergence analysis.**  The move's
   :class:`~repro.core.transformations.MoveFootprint` is turned into
   the earliest event index ``d`` of the parent's
   :class:`~repro.sched.trace.ScheduleTrace` at which the child's
   scheduling pass can differ: placement-dirty processes matter from
   the first pop of one of their instances; re-keyed (priority-dirty)
   jobs matter from the first recorded pop their new heap key would
   win -- or from their own pop when the new key is weaker.  Events
   before ``d`` are provably identical in parent and child.

2. **Checkpoint reconstruction.**  The child's schedule state at ``d``
   is rebuilt without scheduling: per-node timelines whose last parent
   touch lies before ``d`` are structurally shared (bulk-copied) from
   the parent's final schedule; dirty nodes are bulk-loaded from the
   prefix's replayed reservations; the bus is shared or replayed the
   same way.  The ready heap, earliest-start map and predecessor
   counts are reconstructed from the trace prefix.

3. **Resume.**  :meth:`ListScheduler.run_pass` -- the same loop a cold
   pass runs -- finishes the schedule from ``d``, and the metrics are
   recomputed with :func:`~repro.core.metrics.evaluate_design_delta`,
   reusing the parent's per-resource slack inputs for every resource
   the resume never touched.

The result is **bit-identical** to a cold evaluation: same schedule
occupancy, same metrics, same failure reasons for invalid children,
and a trace/memo equal to what a cold traced run would have produced
(so children chain as parents).  When any precondition fails -- the
parent has no trace, the move type is unknown, or the divergence is at
event 0 -- the evaluator *falls back to a full cold evaluation*; it
never guesses.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.engine.evaluation import (
    EvaluatedDesign,
    StageTimings,
    evaluate_candidate,
)
from repro.sched.arrays import ArrayRunState
from repro.sched.list_scheduler import ListScheduler, ScheduleResult
from repro.sched.trace import ScheduleTrace, heap_key
from repro.tdma.schedule import BusSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transformations import (
        CandidateDesign,
        MoveFootprint,
        Transformation,
    )
    from repro.engine.compiled_spec import CompiledSpec
    from repro.sched.jobs import JobKey


@dataclass(frozen=True)
class DeltaStats:
    """Delta-path accounting of one engine over its lifetime.

    ``hits`` counts move evaluations served by the incremental path;
    ``fallbacks`` counts moves that were requested through the delta
    API but fell back to a full evaluation (no usable trace, unknown
    move type, or divergence at event 0).  Mirrors
    :class:`repro.engine.cache.CacheStats` so the experiment reports
    render both the same way.
    """

    hits: int
    fallbacks: int

    @property
    def attempts(self) -> int:
        return self.hits + self.fallbacks

    @property
    def hit_rate(self) -> float:
        """Fraction of delta attempts served incrementally (0.0 unused)."""
        if self.attempts == 0:
            return 0.0
        return self.hits / self.attempts


class DeltaEvaluator:
    """Evaluates ``(parent, move)`` pairs by rescheduling from a checkpoint.

    Parameters
    ----------
    compiled:
        The compiled design problem shared with cold evaluation.
    scheduler:
        The list scheduler to resume passes with; defaults to a fresh
        one over the compiled architecture.
    """

    def __init__(
        self,
        compiled: "CompiledSpec",
        scheduler: Optional[ListScheduler] = None,
        timings: Optional[StageTimings] = None,
    ):
        self.compiled = compiled
        self.scheduler = (
            scheduler
            if scheduler is not None
            else ListScheduler(compiled.architecture)
        )
        self.timings = timings
        table = compiled.job_table
        jobs_of: Dict[str, List["JobKey"]] = {}
        for key in table.jobs:
            jobs_of.setdefault(key[0], []).append(key)
        self._jobs_of = jobs_of

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate_move(
        self,
        parent: EvaluatedDesign,
        move: "Transformation",
        child: Optional["CandidateDesign"] = None,
    ) -> Tuple[Optional[EvaluatedDesign], bool]:
        """Evaluate the child of ``(parent, move)``.

        Returns ``(outcome, used_delta)``: the outcome is exactly what
        a cold evaluation of ``move.apply(parent.design)`` returns
        (``None`` for invalid children), and ``used_delta`` reports
        whether the incremental path ran or the evaluator fell back to
        a full evaluation.
        """
        from repro.core.metrics import evaluate_design_delta

        if child is None:
            child = move.apply(parent.design)
        if self.compiled.use_arrays:
            return self._evaluate_move_arrays(parent, move, child)
        timings = self.timings
        start = time.perf_counter_ns()
        attempt = self.try_resume(parent, move, child)
        mid = time.perf_counter_ns()
        if timings is not None:
            timings.sched_ns += mid - start
        if attempt is None:
            outcome = evaluate_candidate(
                self.compiled.spec,
                self.compiled,
                self.scheduler,
                child,
                record_trace=True,
                timings=timings,
            )
            return outcome, False
        result, clean_nodes, bus_clean = attempt
        if not result.success:
            return None, True
        metrics, memo = evaluate_design_delta(
            result.schedule,
            self.compiled.spec.future,
            self.compiled.spec.weights,
            parent_memo=parent.memo,
            clean_nodes=clean_nodes,
            bus_clean=bus_clean,
            parent_bus=parent.schedule.bus,
        )
        if timings is not None:
            timings.metrics_ns += time.perf_counter_ns() - mid
        outcome = EvaluatedDesign(
            child, result.schedule, metrics, trace=result.trace, memo=memo
        )
        return outcome, True

    def _evaluate_move_arrays(
        self,
        parent: EvaluatedDesign,
        move: "Transformation",
        child: "CandidateDesign",
    ) -> Tuple[Optional[EvaluatedDesign], bool]:
        """The array-core twin of :meth:`evaluate_move`'s resume branch.

        Same contract, different substrate: divergence, checkpoint
        reconstruction *and the metrics* run over the parent's
        :class:`ArrayRunState` columns (:meth:`ArraySpec.divergence` /
        :meth:`ArraySpec.resume_state` /
        :func:`repro.core.array_metrics.evaluate_state_delta`); no
        object schedule is decoded -- the outcome decodes lazily if a
        consumer ever asks.
        """
        from repro.core.array_metrics import (
            ArrayMetricsMemo,
            evaluate_state_delta,
        )

        timings = self.timings
        start = time.perf_counter_ns()
        attempt = self.try_resume_arrays(parent, move, child)
        mid = time.perf_counter_ns()
        if timings is not None:
            timings.sched_ns += mid - start
        if attempt is None:
            outcome = evaluate_candidate(
                self.compiled.spec,
                self.compiled,
                self.scheduler,
                child,
                record_trace=True,
                timings=timings,
            )
            return outcome, False
        state, clean_mask, bus_clean = attempt
        if not state.success:
            return None, True
        arrays = self.compiled.arrays
        parent_memo = parent.memo
        if not isinstance(parent_memo, ArrayMetricsMemo):
            # Engine-core switch or legacy parent: price cold.
            parent_memo = None
        metrics, memo = evaluate_state_delta(
            arrays,
            state,
            self.compiled.spec.future,
            self.compiled.spec.weights,
            parent_memo=parent_memo,
            clean_mask=clean_mask,
            bus_clean=bus_clean,
        )
        if timings is not None:
            timings.metrics_ns += time.perf_counter_ns() - mid
        outcome = EvaluatedDesign(
            child, None, metrics, trace=state, memo=memo,
            state=state, arrays=arrays, timings=timings,
        )
        return outcome, True

    def try_resume_arrays(
        self,
        parent: EvaluatedDesign,
        move: "Transformation",
        child: "CandidateDesign",
    ) -> Optional[Tuple[ArrayRunState, List[bool], bool]]:
        """Array-core checkpoint resume; see :meth:`try_resume`.

        Returns ``None`` when the incremental path cannot run (parent
        without a recorded array state -- including object-core traces
        after an engine-core switch -- unknown move type, or divergence
        at event 0); otherwise the finished child state plus the
        per-node clean mask (dense node order) and bus-clean flag.
        """
        state = parent.trace
        if not isinstance(state, ArrayRunState) or not state.record:
            return None
        footprint = getattr(move, "footprint", None)
        if footprint is None:
            return None
        fp = footprint(parent.design)
        child.mapping.validate_complete()
        arrays = self.compiled.arrays
        cand = arrays.lower_candidate(child)
        d = arrays.divergence(
            state, fp, parent.design.priorities, child.priorities, cand.urg
        )
        if d <= 0:
            return None
        resumed = arrays.resume_state(state, cand, d)
        arrays.run_kernel(resumed)
        if not resumed.success:
            return resumed, [], False
        clean_mask, bus_clean = arrays.clean_mask(resumed, state)
        return resumed, clean_mask, bus_clean

    def try_resume(
        self,
        parent: EvaluatedDesign,
        move: "Transformation",
        child: "CandidateDesign",
    ) -> Optional[Tuple[ScheduleResult, Set[str], bool]]:
        """Reschedule the child from the parent's earliest dirty point.

        Returns ``None`` when the incremental path cannot run (parent
        without trace, unknown move type, divergence at event 0 --
        i.e., a full reschedule anyway).  Otherwise returns the
        resumed pass's :class:`ScheduleResult` -- whose success flag,
        failure reason and job counts equal a cold run's -- plus the
        set of *clean* nodes and the bus-clean flag: resources whose
        final timeline is byte-identical to the parent's, reusable by
        the metric layer.
        """
        trace = parent.trace
        if not isinstance(trace, ScheduleTrace):
            return None
        footprint = getattr(move, "footprint", None)
        if footprint is None:
            return None
        fp = footprint(parent.design)
        d = self._divergence(parent, child, fp)
        if d <= 0:
            return None

        compiled = self.compiled
        table = compiled.job_table
        events = trace.events
        architecture = compiled.architecture
        base = compiled.base_template
        parent_schedule = parent.schedule

        # --- checkpoint reconstruction -------------------------------
        # Two ways to rebuild the schedule state at event ``d``, picked
        # by divergence depth.  Early divergence: replay the short
        # prefix forward from the base template -- cheaper than bulk
        # node rebuilds when almost everything is dirty.  Late
        # divergence: copy the parent wholesale (C-speed dict/list
        # copies), prune the jobs scheduled at or after ``d``, and
        # bulk-reload only the node timelines the parent touched there;
        # every other node keeps the parent's final (== prefix) state.
        earliest = table.fresh_earliest()
        preds_left = table.fresh_preds()
        node_last: Dict[str, int] = {}
        bus_last = -1
        total = len(events)
        shared_bus = False
        if 2 * d <= total:
            schedule = compiled.fresh_schedule()
            bus_place = schedule.bus.place
            for index in range(d):
                event = events[index]
                pid, instance = event.key
                schedule.place_process(
                    pid,
                    instance,
                    event.node_id,
                    event.start,
                    event.end - event.start,
                )
                node_last[event.node_id] = index
                for message in event.messages:
                    succ_key = message.succ_key
                    if message.arrival > earliest[succ_key]:
                        earliest[succ_key] = message.arrival
                    preds_left[succ_key] -= 1
                    if message.round_index is not None:
                        bus_last = index
                        bus_place(
                            message.message_id,
                            message.instance,
                            message.src_node,
                            message.round_index,
                            message.size,
                            False,
                        )
        else:
            schedule = parent_schedule.copy()
            schedule.prune_jobs(
                events[index].key for index in range(d, total)
            )
            dirty_nodes = [
                node_id
                for node_id in architecture.node_ids
                if trace.node_last.get(node_id, -1) >= d
            ]
            shared_bus = trace.bus_last < d
            if not shared_bus:
                if base is not None:
                    schedule.bus = base.bus.copy()
                else:
                    schedule.bus = BusSchedule(
                        architecture.bus, compiled.horizon
                    )
            for node_id, index in trace.node_last.items():
                if index < d:
                    node_last[node_id] = index
            if shared_bus:
                bus_last = trace.bus_last
            pending: Dict[str, List] = {
                node_id: [] for node_id in dirty_nodes
            }
            bus_place = schedule.bus.place
            for index in range(d):
                event = events[index]
                node_pending = pending.get(event.node_id)
                if node_pending is not None:
                    node_pending.append(parent_schedule.entry_of(*event.key))
                    node_last[event.node_id] = index
                for message in event.messages:
                    succ_key = message.succ_key
                    if message.arrival > earliest[succ_key]:
                        earliest[succ_key] = message.arrival
                    preds_left[succ_key] -= 1
                    if message.round_index is not None:
                        bus_last = index
                        if not shared_bus:
                            bus_place(
                                message.message_id,
                                message.instance,
                                message.src_node,
                                message.round_index,
                                message.size,
                                False,
                            )
            for node_id in dirty_nodes:
                entries = (
                    base.node_entries(node_id) if base is not None else []
                )
                entries.extend(pending[node_id])
                schedule.load_node(node_id, entries)
                if not pending[node_id]:
                    node_last.pop(node_id, None)

        # --- trace prefix and ready heap -----------------------------
        prefix = events[:d]
        ready_at = {k: r for k, r in trace.ready_at.items() if r <= d}
        pop_index = {k: i for k, i in trace.pop_index.items() if i < d}
        jobs = table.jobs
        priorities = child.priorities
        if fp.reprioritized:
            # Re-key prefix events of re-keyed jobs: a cold child run
            # records their *new* keys, and future divergence scans
            # compare against the recorded values.
            for pid in fp.reprioritized:
                for key in self._jobs_of.get(pid, ()):
                    index = pop_index.get(key)
                    if index is None:
                        continue
                    new_key = heap_key(jobs[key], priorities)
                    if new_key != prefix[index].heap_key:
                        prefix[index] = prefix[index]._replace(
                            heap_key=new_key
                        )
        ready = [
            heap_key(jobs[key], priorities)
            for key in ready_at
            if key not in pop_index
        ]
        heapq.heapify(ready)
        resumed_trace = ScheduleTrace(
            trace.horizon,
            events=prefix,
            ready_at=ready_at,
            pop_index=pop_index,
            node_last=node_last,
            bus_last=bus_last,
        )

        # --- resume the shared pass loop -----------------------------
        result = self.scheduler.run_pass(
            compiled.application,
            child.mapping,
            priorities,
            child.message_delays,
            schedule,
            table,
            earliest,
            preds_left,
            ready,
            scheduled=d,
            frozen=False,
            trace=resumed_trace,
        )
        if not result.success:
            return result, set(), False

        # A resource is clean -- its metric inputs are reusable from
        # the parent -- when its final occupancy equals the parent's.
        # Shared-and-untouched resources are clean by construction;
        # resumed ones usually re-derive the parent's layout exactly
        # (the move perturbs a small region), which the cheap busy-set
        # / byte-occupancy comparisons detect.
        child_trace = result.trace
        clean_nodes = set()
        for node_id in architecture.node_ids:
            if (
                trace.node_last.get(node_id, -1) < d
                and child_trace.node_last.get(node_id, -1) < d
            ) or schedule.busy_equals(parent_schedule, node_id):
                clean_nodes.add(node_id)
        bus_clean = (
            shared_bus and child_trace.bus_last < d
        ) or schedule.bus.occupancy_equals(parent_schedule.bus)
        return result, clean_nodes, bus_clean

    # ------------------------------------------------------------------
    # divergence analysis
    # ------------------------------------------------------------------
    def _divergence(
        self,
        parent: EvaluatedDesign,
        child: "CandidateDesign",
        fp: "MoveFootprint",
    ) -> int:
        """First parent event index whose decision the move can change.

        Every event strictly before the returned index is provably
        identical between the parent's pass and a cold pass of the
        child, so the child can resume there.
        """
        trace = parent.trace
        events = trace.events
        pop_index = trace.pop_index
        d = len(events)

        # repro: allow[DET003] min-accumulation: d only ever decreases, so the scan order over the footprint set cannot change the result
        for pid in fp.processes:
            for key in self._jobs_of.get(pid, ()):
                index = pop_index[key]
                if index < d:
                    d = index
        if not fp.reprioritized:
            return d

        jobs = self.compiled.job_table.jobs
        old_priorities = parent.design.priorities
        new_priorities = child.priorities
        # repro: allow[DET003] min-accumulation: each pid's first-beating index is order-independent; d only shrinks and truncated scans can only skip indexes >= d
        for pid in fp.reprioritized:
            # repro: allow[DET006] both sides are the same stored dict values (copied by moves, never recomputed), so exact equality is sound
            if old_priorities.get(pid, 0.0) == new_priorities.get(pid, 0.0):
                continue
            for key in self._jobs_of.get(pid, ()):
                job = jobs[key]
                old_key = heap_key(job, old_priorities)
                new_key = heap_key(job, new_priorities)
                if new_key == old_key:
                    continue
                popped_at = pop_index[key]
                if new_key > old_key:
                    # The job got less urgent: at its own pop it may
                    # now lose to the runner-up, which the trace does
                    # not identify -- conservatively diverge there.
                    if popped_at < d:
                        d = popped_at
                    continue
                # The job got more urgent: it pops earlier only at the
                # first recorded pop its new key beats while it sits in
                # the ready heap; if it beats none, the pop order (and
                # hence everything) is unchanged.
                for index in range(trace.ready_at[key], min(popped_at, d)):
                    if new_key < events[index].heap_key:
                        d = index
                        break
        return d
