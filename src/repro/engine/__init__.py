"""Shared evaluation engine: compiled specs, caching, batch evaluation.

This package separates problem *construction* from repeated *solving*:

* :mod:`~repro.engine.compiled_spec` -- :class:`CompiledSpec`,
  everything derivable from a :class:`repro.core.strategy.DesignSpec`
  alone (job expansion, horizon validation, default priorities, the
  frozen base-schedule template, candidate signatures);
* :mod:`~repro.engine.evaluation` -- the pure per-candidate evaluation
  primitive and :class:`EvaluatedDesign`;
* :mod:`~repro.engine.cache` -- :class:`EvaluationCache`, memoized
  outcomes with hit/miss accounting (a thin layer over a result
  store);
* :mod:`~repro.engine.store` -- :class:`ResultStore` backends: the
  in-memory LRU and the persistent sqlite store that serves results
  across processes and runs;
* :mod:`~repro.engine.batch` -- :class:`BatchEvaluator`, process-pool
  scoring of candidate batches with deterministic ordering;
* :mod:`~repro.engine.delta` -- :class:`DeltaEvaluator`, the move-aware
  incremental kernel: reschedule a one-move child from its parent's
  trace checkpoints, bit-identical to a cold evaluation;
* :mod:`~repro.engine.engine` -- :class:`EvaluationEngine`, the facade
  composing the above; every strategy's inner loop.

See DESIGN.md at the repository root for the layer diagram and the
engine contracts.
"""

from repro.engine.batch import BatchEvaluator
from repro.engine.cache import CacheStats, EvaluationCache
from repro.engine.compiled_spec import CompiledSpec
from repro.engine.delta import DeltaEvaluator, DeltaStats
from repro.engine.engine import EngineCounters, EvaluationEngine
from repro.engine.evaluation import EvaluatedDesign, evaluate_candidate
from repro.engine.store import (
    MemoryResultStore,
    ResultStore,
    SqliteResultStore,
    StoreStats,
    make_store,
)

__all__ = [
    "BatchEvaluator",
    "CacheStats",
    "CompiledSpec",
    "DeltaEvaluator",
    "DeltaStats",
    "EngineCounters",
    "EvaluatedDesign",
    "EvaluationCache",
    "EvaluationEngine",
    "MemoryResultStore",
    "ResultStore",
    "SqliteResultStore",
    "StoreStats",
    "evaluate_candidate",
    "make_store",
]
