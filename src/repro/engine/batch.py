"""Concurrent scoring of candidate batches.

The steepest-descent loop of MH (and SA's polish phase) generates a
whole neighbourhood of candidate designs per iteration and evaluates
every one of them before picking the winner -- an embarrassingly
parallel inner loop.  :class:`BatchEvaluator` scores such batches with
a ``concurrent.futures`` process pool for large scenarios and falls
back to serial evaluation for small ones, where the fork/pickle
overhead would dominate.

Determinism: results are returned in input order (``executor.map``
preserves it) and each worker runs the same pure
:func:`repro.engine.evaluation.evaluate_candidate`, so a parallel run
produces exactly the results of a serial run -- seeded experiments stay
reproducible under ``--jobs N``.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.engine.compiled_spec import CompiledSpec
from repro.engine.evaluation import EvaluatedDesign, evaluate_candidate
from repro.sched.list_scheduler import ListScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign

#: Compiled specs below this many expanded jobs are evaluated serially:
#: the problem is too small for process spin-up and pickling to pay off.
DEFAULT_PARALLEL_THRESHOLD = 96

#: Minimum batch size worth fanning out.
MIN_PARALLEL_BATCH = 2

#: Per-worker state: ``(spec, compiled, scheduler)``, built once by the
#: pool initializer so each worker compiles the problem exactly once.
_WORKER_STATE: Optional[Tuple] = None

#: Wire form of one candidate: ``(assignment, priorities, delays)``.
Payload = Tuple[dict, dict, dict]


def _init_worker(spec: "DesignSpec") -> None:
    """Process-pool initializer: compile the spec once per worker."""
    global _WORKER_STATE
    _WORKER_STATE = (
        spec,
        CompiledSpec(spec),
        ListScheduler(spec.architecture),
    )


def _evaluate_payload(payload: Payload) -> Optional[EvaluatedDesign]:
    """Worker-side evaluation of one wire-form candidate."""
    from repro.core.transformations import CandidateDesign
    from repro.model.mapping import Mapping

    assert _WORKER_STATE is not None, "worker initializer did not run"
    spec, compiled, scheduler = _WORKER_STATE
    assignment, priorities, delays = payload
    design = CandidateDesign(
        Mapping(spec.current, spec.architecture, assignment),
        dict(priorities),
        dict(delays),
    )
    return evaluate_candidate(spec, compiled, scheduler, design)


def _to_payload(design: "CandidateDesign") -> Payload:
    """Strip a candidate down to plain dicts for cheap pickling."""
    return (
        design.mapping.as_dict(),
        dict(design.priorities),
        dict(design.message_delays),
    )


class BatchEvaluator:
    """Scores lists of candidates, concurrently when it pays off.

    Parameters
    ----------
    compiled:
        The compiled problem every candidate belongs to.
    jobs:
        Worker-process count; ``1`` (the default) never forks.
    parallel_threshold:
        Minimum :attr:`CompiledSpec.total_jobs` for the process pool to
        engage; smaller problems always evaluate serially.  Tests force
        the pool with ``parallel_threshold=0``.
    """

    def __init__(
        self,
        compiled: CompiledSpec,
        jobs: int = 1,
        parallel_threshold: Optional[int] = None,
    ):
        self.compiled = compiled
        self.jobs = max(1, int(jobs))
        self.parallel_threshold = (
            DEFAULT_PARALLEL_THRESHOLD
            if parallel_threshold is None
            else parallel_threshold
        )
        self._scheduler = ListScheduler(compiled.architecture)
        self._executor: Optional[Executor] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "BatchEvaluator is closed; evaluation after close() would "
                "have to respawn worker processes behind the caller's back "
                "-- build a fresh engine instead"
            )

    def evaluate_one(self, design: "CandidateDesign") -> Optional[EvaluatedDesign]:
        """Serial evaluation of a single candidate (the engine hot path).

        Raises
        ------
        RuntimeError
            If the evaluator has been closed.
        """
        self._ensure_open()
        return evaluate_candidate(
            self.compiled.spec, self.compiled, self._scheduler, design
        )

    def evaluate_batch(
        self, designs: Sequence["CandidateDesign"]
    ) -> List[Optional[EvaluatedDesign]]:
        """Score ``designs``, preserving input order exactly.

        Raises
        ------
        RuntimeError
            If the evaluator has been closed.
        """
        self._ensure_open()
        designs = list(designs)
        if not self._use_pool(len(designs)):
            return [self.evaluate_one(design) for design in designs]
        executor = self._ensure_executor()
        payloads = [_to_payload(design) for design in designs]
        chunksize = max(1, len(payloads) // (self.jobs * 4))
        outcomes = list(
            executor.map(_evaluate_payload, payloads, chunksize=chunksize)
        )
        # Workers rebuild the candidate from its wire form, so their
        # results reference private Application/Architecture/Mapping
        # copies.  Reattach the caller's original design: only the
        # schedule and metrics are worth keeping from the worker, and
        # downstream consumers (cache, DesignResult) keep referencing
        # the one true model object graph.
        for design, outcome in zip(designs, outcomes):
            if outcome is not None:
                outcome.design = design
        return outcomes

    def close(self) -> None:
        """Shut the worker pool down for good (idempotent).

        Closing is sticky: later ``evaluate_*`` calls raise instead of
        silently recreating a pool (or degrading to serial), so a
        closed evaluator never owns untracked processes and misuse is
        loud rather than slow.
        """
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "BatchEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _use_pool(self, batch_size: int) -> bool:
        return (
            not self._closed
            and self.jobs > 1
            and batch_size >= MIN_PARALLEL_BATCH
            and self.compiled.total_jobs >= self.parallel_threshold
        )

    def _ensure_executor(self) -> Executor:
        self._ensure_open()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.compiled.spec,),
            )
        return self._executor
