"""Concurrent scoring of candidate batches.

The steepest-descent loop of MH (and SA's polish phase) generates a
whole neighbourhood of candidate designs per iteration and evaluates
every one of them before picking the winner -- an embarrassingly
parallel inner loop.  :class:`BatchEvaluator` scores such batches with
a ``concurrent.futures`` process pool for large scenarios and falls
back to serial evaluation for small ones, where the fork/pickle
overhead would dominate.

Since the incremental-evaluation refactor the evaluator also speaks a
*move* wire format: a neighbourhood is one parent design plus a list of
transformations, so a chunk ships the parent payload once and
``(parent signature, move)`` per candidate instead of a full candidate
payload each.  Workers keep the last few parents resident (keyed by
signature, with their scheduling traces), delta-evaluate each move from
the resident parent, and cold-evaluate the parent exactly once when it
is not resident yet.

Determinism: results are returned in input order and each worker runs
the same pure evaluation primitives, so a parallel run produces exactly
the results of a serial run -- seeded experiments stay reproducible
under ``--jobs N``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.engine.compiled_spec import CompiledSpec, Signature
from repro.engine.delta import DeltaEvaluator
from repro.engine.evaluation import (
    EvaluatedDesign,
    StageTimings,
    evaluate_candidate,
)
from repro.sched.list_scheduler import ListScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign, Transformation

#: Compiled specs below this many expanded jobs are evaluated serially:
#: the problem is too small for process spin-up and pickling to pay off.
DEFAULT_PARALLEL_THRESHOLD = 96

#: Minimum batch size worth fanning out.
MIN_PARALLEL_BATCH = 2

#: How many chunks each worker should receive for load balancing.
CHUNKS_PER_WORKER = 4

#: Parents each worker keeps resident for delta evaluation.
WORKER_PARENT_CAPACITY = 8

#: Per-worker state: ``(spec, compiled, scheduler, delta, parents,
#: timings, store)``, built once by the pool initializer so each
#: worker compiles the problem exactly once.  ``parents`` is the LRU
#: of resident parents; ``timings`` the worker's stage-time sink,
#: whose deltas ride back on every chunk result; ``store`` the
#: read-only view of the engine's persistent result store (``None``
#: without one).
_WORKER_STATE: Optional[Tuple] = None

#: Sentinel distinguishing "parent not resident" from a resident
#: parent whose evaluation verdict is invalid (``None``).
_ABSENT = object()

#: Wire form of one candidate: ``(assignment, priorities, delays)``.
Payload = Tuple[dict, dict, dict]

#: Wire form of one move chunk: the shared parent (signature + payload,
#: shipped once per chunk) and the per-candidate moves.
MoveChunk = Tuple[Signature, Payload, Tuple["Transformation", ...]]


def dispatch_chunksize(
    n_items: int, jobs: int, chunks_per_worker: int = CHUNKS_PER_WORKER
) -> int:
    """Chunk size that keeps every worker busy on any batch size.

    Aims for ``chunks_per_worker`` chunks per worker (load balancing
    against uneven item costs) while capping each chunk at a fair
    ``ceil(n / jobs)`` share, so no single dispatch can hand one worker
    (nearly) the whole batch when ``n_items`` is barely above the
    parallel threshold.
    """
    if n_items <= 0 or jobs <= 1:
        return 1
    fair_share = -(-n_items // jobs)
    balanced = n_items // (jobs * chunks_per_worker)
    return max(1, min(fair_share, balanced))


def _init_worker(
    spec: "DesignSpec",
    use_delta: bool,
    engine_core: str,
    store_path: Optional[str] = None,
    store_scenario: Optional[str] = None,
) -> None:
    """Process-pool initializer: compile the spec once per worker.

    With a ``store_path`` the worker additionally opens a *read-only*
    view of the engine's persistent result store and serves candidate
    payloads from it before solving cold -- the single read-write
    connection stays in the parent (single-writer rule), so worker
    read-through cannot perturb what gets committed or in what order.
    """
    global _WORKER_STATE
    compiled = CompiledSpec(spec, engine_core=engine_core)
    scheduler = ListScheduler(spec.architecture)
    timings = StageTimings()
    delta = (
        DeltaEvaluator(compiled, scheduler, timings) if use_delta else None
    )
    store = None
    if store_path is not None and os.path.exists(store_path):
        from repro.engine.store import SqliteResultStore

        candidate = SqliteResultStore(
            store_path,
            compiled=compiled,
            scenario=store_scenario,
            read_only=True,
        )
        store = candidate if candidate.persistent else None
    _WORKER_STATE = (
        spec, compiled, scheduler, delta, OrderedDict(), timings, store
    )


def _evaluate_payload(
    payload: Payload,
) -> Tuple[Optional[EvaluatedDesign], Tuple[int, int, int], bool]:
    """Worker-side evaluation of one wire-form candidate.

    Returns the outcome, the stage-time deltas this evaluation
    accumulated in the worker (merged into the engine's sink by the
    dispatching :class:`BatchEvaluator`), and whether the persistent
    result store served it (no solving happened).  Store probes count
    hits only -- misses are attributed by the parent's own lookups, so
    a cold evaluation is never counted twice.
    """
    from repro.core.transformations import CandidateDesign
    from repro.model.mapping import Mapping

    assert _WORKER_STATE is not None, "worker initializer did not run"
    spec, compiled, scheduler, delta, _, timings, store = _WORKER_STATE
    assignment, priorities, delays = payload
    design = CandidateDesign(
        Mapping(spec.current, spec.architecture, assignment),
        dict(priorities),
        dict(delays),
    )
    if store is not None:
        found, outcome = store.get(compiled.signature(design))
        if found:
            return outcome, (0, 0, 0), True
    before = timings.snapshot()
    outcome = evaluate_candidate(
        spec,
        compiled,
        scheduler,
        design,
        record_trace=delta is not None,
        timings=timings,
    )
    return outcome, timings.since(before), False


def _resident_parent(
    signature: Signature, payload: Payload
) -> Optional[EvaluatedDesign]:
    """Fetch (or cold-build once) the chunk's parent in this worker.

    Residency is tested against the :data:`_ABSENT` sentinel, not the
    parent's truthiness: an *invalid* parent is resident as ``None``
    (strategies never send such parents; defensive), and conflating it
    with "not resident yet" would silently re-evaluate the invalid
    design on every chunk that names it.
    """
    from repro.core.transformations import CandidateDesign
    from repro.model.mapping import Mapping

    spec, compiled, scheduler, delta, parents, timings, _ = _WORKER_STATE
    parent = parents.get(signature, _ABSENT)
    if parent is not _ABSENT:
        parents.move_to_end(signature)
        return parent
    assignment, priorities, delays = payload
    design = CandidateDesign(
        Mapping(spec.current, spec.architecture, assignment),
        dict(priorities),
        dict(delays),
    )
    parent = evaluate_candidate(
        spec, compiled, scheduler, design, record_trace=True, timings=timings
    )
    parents[signature] = parent
    if len(parents) > WORKER_PARENT_CAPACITY:
        parents.popitem(last=False)
    return parent


def _evaluate_move_chunk(
    chunk: MoveChunk,
) -> Tuple[
    List[Optional[EvaluatedDesign]], int, int, Tuple[int, int, int]
]:
    """Worker-side evaluation of one move chunk.

    Returns the outcomes in move order plus the worker's delta
    hit/fallback counts and stage-time deltas for this chunk.
    """
    assert _WORKER_STATE is not None, "worker initializer did not run"
    spec, compiled, scheduler, delta, _, timings, _store = _WORKER_STATE
    signature, payload, moves = chunk
    before = timings.snapshot()
    parent = _resident_parent(signature, payload)
    outcomes: List[Optional[EvaluatedDesign]] = []
    hits = 0
    fallbacks = 0
    for move in moves:
        if parent is None or delta is None:
            # The parent itself is invalid (strategies never send such
            # parents; defensive) -- evaluate the child cold.
            child = move.apply(_payload_design(payload))
            outcomes.append(
                evaluate_candidate(
                    spec,
                    compiled,
                    scheduler,
                    child,
                    record_trace=True,
                    timings=timings,
                )
            )
            fallbacks += 1
            continue
        outcome, used = delta.evaluate_move(parent, move)
        outcomes.append(outcome)
        if used:
            hits += 1
        else:
            fallbacks += 1
    return outcomes, hits, fallbacks, timings.since(before)


def _payload_design(payload: Payload) -> "CandidateDesign":
    """Rebuild a candidate design from its wire form."""
    from repro.core.transformations import CandidateDesign
    from repro.model.mapping import Mapping

    spec = _WORKER_STATE[0]
    assignment, priorities, delays = payload
    return CandidateDesign(
        Mapping(spec.current, spec.architecture, assignment),
        dict(priorities),
        dict(delays),
    )


def _to_payload(design: "CandidateDesign") -> Payload:
    """Strip a candidate down to plain dicts for cheap pickling."""
    return (
        design.mapping.as_dict(),
        dict(design.priorities),
        dict(design.message_delays),
    )


class BatchEvaluator:
    """Scores lists of candidates, concurrently when it pays off.

    Parameters
    ----------
    compiled:
        The compiled problem every candidate belongs to.
    jobs:
        Worker-process count; ``1`` (the default) never forks.
    parallel_threshold:
        Minimum :attr:`CompiledSpec.total_jobs` for the process pool to
        engage; smaller problems always evaluate serially.  Tests force
        the pool with ``parallel_threshold=0``.
    use_delta:
        Enable the incremental (move-aware) evaluation path and trace
        recording on cold evaluations.  Off, every evaluation is a full
        rescheduling and the move APIs degrade to candidate batches.
    store_path:
        Database file of the engine's persistent result store; workers
        open it read-only and serve dispatched payloads from it before
        solving cold.  ``None`` (no store, or a memory backend)
        disables worker read-through.
    store_scenario:
        Scenario key the store rows are filed under (forwarded to the
        workers' read-only store views).
    """

    def __init__(
        self,
        compiled: CompiledSpec,
        jobs: int = 1,
        parallel_threshold: Optional[int] = None,
        use_delta: bool = True,
        store_path: Optional[str] = None,
        store_scenario: Optional[str] = None,
    ):
        self.compiled = compiled
        self.jobs = max(1, int(jobs))
        self.parallel_threshold = (
            DEFAULT_PARALLEL_THRESHOLD
            if parallel_threshold is None
            else parallel_threshold
        )
        self._scheduler = ListScheduler(compiled.architecture)
        self.timings = StageTimings()
        self.delta: Optional[DeltaEvaluator] = (
            DeltaEvaluator(compiled, self._scheduler, self.timings)
            if use_delta
            else None
        )
        self.delta_hits = 0
        self.delta_fallbacks = 0
        #: Candidates pool workers served from the persistent store.
        self.store_hits = 0
        self.store_path = store_path
        self.store_scenario = store_scenario
        self._executor: Optional[Executor] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "BatchEvaluator is closed; evaluation after close() would "
                "have to respawn worker processes behind the caller's back "
                "-- build a fresh engine instead"
            )

    def evaluate_one(self, design: "CandidateDesign") -> Optional[EvaluatedDesign]:
        """Serial full evaluation of a single candidate.

        In delta mode the outcome carries its scheduling trace and
        metric memo so it can parent later incremental evaluations.

        Raises
        ------
        RuntimeError
            If the evaluator has been closed.
        """
        self._ensure_open()
        return evaluate_candidate(
            self.compiled.spec,
            self.compiled,
            self._scheduler,
            design,
            record_trace=self.delta is not None,
            timings=self.timings,
        )

    def evaluate_move_one(
        self,
        parent: Optional[EvaluatedDesign],
        move: "Transformation",
        child: "CandidateDesign",
    ) -> Optional[EvaluatedDesign]:
        """Serial evaluation of one move (the delta engine hot path).

        Falls back to :meth:`evaluate_one` -- counting a delta fallback
        -- when the incremental path cannot run.
        """
        self._ensure_open()
        if self.delta is None:
            return self.evaluate_one(child)
        if parent is None or parent.trace is None:
            self.delta_fallbacks += 1
            return self.evaluate_one(child)
        outcome, used = self.delta.evaluate_move(parent, move, child)
        if used:
            self.delta_hits += 1
        else:
            self.delta_fallbacks += 1
        return outcome

    def evaluate_batch(
        self, designs: Sequence["CandidateDesign"]
    ) -> List[Optional[EvaluatedDesign]]:
        """Score ``designs``, preserving input order exactly.

        Raises
        ------
        RuntimeError
            If the evaluator has been closed.
        """
        self._ensure_open()
        designs = list(designs)
        if not self._use_pool(len(designs)):
            return [self.evaluate_one(design) for design in designs]
        executor = self._ensure_executor()
        payloads = [_to_payload(design) for design in designs]
        chunksize = dispatch_chunksize(len(payloads), self.jobs)
        outcomes: List[Optional[EvaluatedDesign]] = []
        try:
            for outcome, stage_delta, from_store in executor.map(
                _evaluate_payload, payloads, chunksize=chunksize
            ):
                outcomes.append(outcome)
                self.timings.add(stage_delta)
                if from_store:
                    self.store_hits += 1
        except BaseException:
            self._abort_pool()
            raise
        self._reattach(designs, outcomes)
        return outcomes

    def evaluate_moves(
        self,
        parent: Optional[EvaluatedDesign],
        moves: Sequence["Transformation"],
        children: Sequence["CandidateDesign"],
    ) -> List[Optional[EvaluatedDesign]]:
        """Score one parent's moves, preserving input order exactly.

        ``children`` must be ``[move.apply(parent.design)]`` in move
        order (the engine already materializes them for cache keying).
        The pool path ships the parent once per chunk and only
        ``(signature, move)`` per candidate; each worker keeps recent
        parents resident and replays moves incrementally against them.

        Raises
        ------
        RuntimeError
            If the evaluator has been closed.
        """
        self._ensure_open()
        moves = list(moves)
        children = list(children)
        if self.delta is None or parent is None or parent.trace is None:
            if self.delta is not None:
                self.delta_fallbacks += len(moves)
            return self.evaluate_batch(children)
        if not self._use_pool(len(moves)):
            return [
                self.evaluate_move_one(parent, move, child)
                for move, child in zip(moves, children)
            ]
        executor = self._ensure_executor()
        signature = self.compiled.signature(parent.design)
        payload = _to_payload(parent.design)
        chunksize = dispatch_chunksize(len(moves), self.jobs)
        chunks: List[MoveChunk] = [
            (signature, payload, tuple(moves[i : i + chunksize]))
            for i in range(0, len(moves), chunksize)
        ]
        outcomes: List[Optional[EvaluatedDesign]] = []
        try:
            for chunk_outcomes, hits, fallbacks, stage_delta in executor.map(
                _evaluate_move_chunk, chunks
            ):
                outcomes.extend(chunk_outcomes)
                self.delta_hits += hits
                self.delta_fallbacks += fallbacks
                self.timings.add(stage_delta)
        except BaseException:
            self._abort_pool()
            raise
        self._reattach(children, outcomes)
        return outcomes

    def close(self) -> None:
        """Shut the worker pool down for good (idempotent).

        Closing is sticky: later ``evaluate_*`` calls raise instead of
        silently recreating a pool (or degrading to serial), so a
        closed evaluator never owns untracked processes and misuse is
        loud rather than slow.
        """
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _abort_pool(self) -> None:
        """Emergency pool teardown after an in-flight failure.

        Used when consuming chunk results raises -- a worker died
        mid-chunk (``BrokenProcessPool``), a move's evaluation raised,
        or the driving process got a ``KeyboardInterrupt``.  The pool
        is *terminated*, never joined: a worker stuck or dead mid-chunk
        must not block the raising thread, pending futures are
        cancelled, and surviving processes are killed outright.  Chunk
        results not yet consumed are dropped with their
        :class:`StageTimings` deltas -- deltas merge only on clean
        receipt, so a dead worker's partial chunk can never be counted
        (or double-counted) in the engine's sink.  Closing stays
        sticky: the evaluator refuses further work exactly like after
        :meth:`close`.
        """
        self._closed = True
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        processes = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()

    def __enter__(self) -> "BatchEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _reattach(
        self,
        designs: Sequence["CandidateDesign"],
        outcomes: Sequence[Optional[EvaluatedDesign]],
    ) -> None:
        """Point worker results back at the caller's design objects.

        Workers rebuild candidates from their wire form, so their
        results reference private Application/Architecture/Mapping
        copies.  Only the schedule, metrics and delta attachments are
        worth keeping from the worker; downstream consumers (cache,
        DesignResult) keep referencing the one true model object graph.
        Lazy outcomes additionally regain their process-local decode
        substrate (the compiled :class:`ArraySpec`) and the engine's
        timing sink, both of which pickling dropped.
        """
        arrays = self.compiled.arrays if self.compiled.use_arrays else None
        for design, outcome in zip(designs, outcomes):
            if outcome is None:
                continue
            outcome.design = design
            if outcome._schedule is None and outcome._state is not None:
                if outcome._arrays is None:
                    outcome._arrays = arrays
            elif outcome._schedule is None and outcome._compiled is None:
                # Store-served outcome: metrics only; the schedule is
                # re-derived against the compiled spec on first access.
                outcome._compiled = self.compiled
            if outcome._timings is None:
                outcome._timings = self.timings

    def _use_pool(self, batch_size: int) -> bool:
        return (
            not self._closed
            and self.jobs > 1
            and batch_size >= MIN_PARALLEL_BATCH
            and self.compiled.total_jobs >= self.parallel_threshold
        )

    def _ensure_executor(self) -> Executor:
        self._ensure_open()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(
                    self.compiled.spec,
                    self.delta is not None,
                    self.compiled.engine_core,
                    self.store_path,
                    self.store_scenario,
                ),
            )
        return self._executor
