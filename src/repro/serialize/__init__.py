"""JSON serialization of every model object.

Round-trips applications, architectures, mappings, future
characterizations and complete system schedules through plain
JSON-compatible dictionaries, so scenarios and design results can be
saved, diffed and reloaded.

The format is versioned with a ``"kind"`` discriminator per object; see
:func:`to_dict` / :func:`from_dict` for the generic entry points and
:func:`save_json` / :func:`load_json` for files.
"""

from repro.serialize.scenario_codec import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_params_from_dict,
    scenario_params_to_dict,
    scenario_to_dict,
)
from repro.serialize.codec import (
    application_from_dict,
    application_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    from_dict,
    future_from_dict,
    future_to_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    metrics_from_dict,
    metrics_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    to_dict,
)
from repro.serialize.store_key import signature_key, spec_store_key

__all__ = [
    "application_to_dict",
    "application_from_dict",
    "architecture_to_dict",
    "architecture_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
    "future_to_dict",
    "future_from_dict",
    "metrics_to_dict",
    "metrics_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "signature_key",
    "spec_store_key",
    "to_dict",
    "from_dict",
    "save_json",
    "load_json",
    "scenario_to_dict",
    "scenario_from_dict",
    "scenario_params_to_dict",
    "scenario_params_from_dict",
    "save_scenario",
    "load_scenario",
]
