"""Serialization of complete scenarios.

A :class:`~repro.gen.scenario.Scenario` bundles everything one
experiment run needs; persisting it lets experiment campaigns cache
generated workloads and lets bug reports carry an exact reproducer.
The payload embeds every component (architecture, applications, frozen
base schedule, future characterization) plus the generating
``(params, seed)`` pair for provenance.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Union

from repro.gen.scenario import Scenario, ScenarioParams
from repro.gen.taskgraph import GraphParams
from repro.serialize.codec import (
    application_from_dict,
    application_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    future_from_dict,
    future_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    _expect_kind,
)
from repro.utils.errors import InvalidModelError


def scenario_params_to_dict(params: ScenarioParams) -> Dict[str, Any]:
    """Serialize scenario parameters (including nested graph params)."""
    payload = asdict(params)
    payload["kind"] = "scenario-params"
    return payload


def scenario_params_from_dict(payload: Dict[str, Any]) -> ScenarioParams:
    """Rebuild scenario parameters; re-runs all consistency checks."""
    _expect_kind(payload, "scenario-params")
    data = dict(payload)
    data.pop("kind")
    graph_params = data.pop("graph_params")
    # JSON turns tuples into lists; restore the tuple-typed fields.
    for key in (
        "period_divisors",
        "graph_size_range",
        "node_speeds",
        "slot_lengths",
        "slot_capacities",
    ):
        if key in data:
            data[key] = tuple(data[key])
    for key in ("wcet_range", "msg_size_range", "het_range"):
        graph_params[key] = tuple(graph_params[key])
    return ScenarioParams(graph_params=GraphParams(**graph_params), **data)


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Serialize a complete scenario with provenance."""
    return {
        "kind": "scenario",
        "seed": scenario.seed,
        "params": scenario_params_to_dict(scenario.params),
        "architecture": architecture_to_dict(scenario.architecture),
        "existing": application_to_dict(scenario.existing),
        "base_schedule": schedule_to_dict(scenario.base_schedule),
        "current": application_to_dict(scenario.current),
        "future": future_to_dict(scenario.future),
    }


def scenario_from_dict(payload: Dict[str, Any]) -> Scenario:
    """Rebuild a scenario; every component is re-validated on load."""
    _expect_kind(payload, "scenario")
    return Scenario(
        params=scenario_params_from_dict(payload["params"]),
        seed=payload["seed"],
        architecture=architecture_from_dict(payload["architecture"]),
        existing=application_from_dict(payload["existing"]),
        base_schedule=schedule_from_dict(payload["base_schedule"]),
        current=application_from_dict(payload["current"]),
        future=future_from_dict(payload["future"]),
    )


def save_scenario(scenario: Scenario, path: Union[str, Path]) -> None:
    """Write a scenario to a JSON file."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2, sort_keys=True)
    )


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario from a JSON file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "scenario":
        raise InvalidModelError(
            f"{path} does not contain a serialized scenario"
        )
    return scenario_from_dict(payload)
