"""Dict/JSON codecs for the model, future and schedule objects.

Every ``*_to_dict`` produces a JSON-compatible dictionary carrying a
``"kind"`` discriminator; the matching ``*_from_dict`` validates the
discriminator and rebuilds the object through the public constructors,
so structural invariants are re-checked on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Union

from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.core.metrics import DesignMetrics
from repro.model.application import Application
from repro.model.architecture import Architecture, Node
from repro.model.mapping import Mapping
from repro.model.process_graph import Message, Process, ProcessGraph
from repro.sched.schedule import SystemSchedule
from repro.tdma.bus import Slot, TdmaBus
from repro.utils.errors import InvalidModelError


def _expect_kind(payload: Dict[str, Any], kind: str) -> None:
    got = payload.get("kind")
    if got != kind:
        raise InvalidModelError(
            f"expected serialized {kind!r}, got {got!r}"
        )


# ----------------------------------------------------------------------
# applications
# ----------------------------------------------------------------------
def application_to_dict(app: Application) -> Dict[str, Any]:
    """Serialize an application with all graphs, processes and messages."""
    return {
        "kind": "application",
        "name": app.name,
        "graphs": [
            {
                "name": graph.name,
                "period": graph.period,
                "deadline": graph.deadline,
                "processes": [
                    {
                        "id": proc.id,
                        "name": proc.name,
                        "wcet": dict(proc.wcet),
                    }
                    for proc in graph.processes
                ],
                "messages": [
                    {
                        "id": msg.id,
                        "src": msg.src,
                        "dst": msg.dst,
                        "size": msg.size,
                    }
                    for msg in graph.messages
                ],
            }
            for graph in app.graphs
        ],
    }


def application_from_dict(payload: Dict[str, Any]) -> Application:
    """Rebuild an application; re-validates every structural rule."""
    _expect_kind(payload, "application")
    app = Application(payload["name"])
    for gd in payload["graphs"]:
        graph = ProcessGraph(gd["name"], gd["period"], gd["deadline"])
        for pd in gd["processes"]:
            graph.add_process(
                Process(pd["id"], dict(pd["wcet"]), pd.get("name", ""))
            )
        for md in gd["messages"]:
            graph.add_message(
                Message(md["id"], md["src"], md["dst"], md["size"])
            )
        graph.validate()
        app.add_graph(graph)
    return app


# ----------------------------------------------------------------------
# architectures
# ----------------------------------------------------------------------
def architecture_to_dict(arch: Architecture) -> Dict[str, Any]:
    """Serialize nodes and the TDMA round layout."""
    return {
        "kind": "architecture",
        "nodes": [
            {
                "id": node.id,
                "name": node.name,
                "node_kind": node.kind,
                "speed": node.speed,
            }
            for node in arch.nodes
        ],
        "bus": [
            {
                "node_id": slot.node_id,
                "length": slot.length,
                "capacity": slot.capacity,
            }
            for slot in arch.bus.slots
        ],
    }


def architecture_from_dict(payload: Dict[str, Any]) -> Architecture:
    """Rebuild an architecture (bus slot order preserved)."""
    _expect_kind(payload, "architecture")
    nodes = [
        Node(
            nd["id"],
            nd.get("name", ""),
            nd.get("node_kind", "cpu"),
            nd.get("speed", 1.0),
        )
        for nd in payload["nodes"]
    ]
    bus = TdmaBus(
        [
            Slot(sd["node_id"], sd["length"], sd["capacity"])
            for sd in payload["bus"]
        ]
    )
    return Architecture(nodes, bus)


# ----------------------------------------------------------------------
# mappings
# ----------------------------------------------------------------------
def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize the process->node assignment (by ids only)."""
    return {
        "kind": "mapping",
        "application": mapping.application.name,
        "assignment": mapping.as_dict(),
    }


def mapping_from_dict(
    payload: Dict[str, Any],
    application: Application,
    architecture: Architecture,
) -> Mapping:
    """Rebuild a mapping against the given application/architecture.

    The application and architecture are passed in (not embedded) so a
    mapping file stays a lightweight overlay of a scenario.
    """
    _expect_kind(payload, "mapping")
    if payload["application"] != application.name:
        raise InvalidModelError(
            f"mapping was saved for application "
            f"{payload['application']!r}, not {application.name!r}"
        )
    return Mapping(application, architecture, payload["assignment"])


# ----------------------------------------------------------------------
# future characterization
# ----------------------------------------------------------------------
def _distribution_to_dict(dist: DiscreteDistribution) -> Dict[str, Any]:
    return {
        "values": list(dist.values),
        "probabilities": list(dist.probabilities),
    }


def _distribution_from_dict(payload: Dict[str, Any]) -> DiscreteDistribution:
    return DiscreteDistribution(
        tuple(payload["values"]), tuple(payload["probabilities"])
    )


def future_to_dict(future: FutureCharacterization) -> Dict[str, Any]:
    """Serialize a future-family characterization."""
    return {
        "kind": "future",
        "t_min": future.t_min,
        "t_need": future.t_need,
        "b_need": future.b_need,
        "wcet_distribution": _distribution_to_dict(future.wcet_distribution),
        "message_size_distribution": _distribution_to_dict(
            future.message_size_distribution
        ),
    }


def future_from_dict(payload: Dict[str, Any]) -> FutureCharacterization:
    """Rebuild a future-family characterization."""
    _expect_kind(payload, "future")
    return FutureCharacterization(
        t_min=payload["t_min"],
        t_need=payload["t_need"],
        b_need=payload["b_need"],
        wcet_distribution=_distribution_from_dict(
            payload["wcet_distribution"]
        ),
        message_size_distribution=_distribution_from_dict(
            payload["message_size_distribution"]
        ),
    )


# ----------------------------------------------------------------------
# design metrics
# ----------------------------------------------------------------------
def metrics_to_dict(metrics: DesignMetrics) -> Dict[str, Any]:
    """Serialize the four metric values plus the combined objective.

    The payload is the persistent result store's value format: seven
    plain numbers, round-tripping exactly (JSON floats serialize via
    ``repr``, which is lossless for IEEE doubles), so a design priced
    from a store row is byte-identical to one priced fresh.
    """
    return {
        "kind": "metrics",
        "c1p": metrics.c1p,
        "c1m": metrics.c1m,
        "c2p": metrics.c2p,
        "c2m": metrics.c2m,
        "penalty_2p": metrics.penalty_2p,
        "penalty_2m": metrics.penalty_2m,
        "objective": metrics.objective,
    }


def metrics_from_dict(payload: Dict[str, Any]) -> DesignMetrics:
    """Rebuild design metrics from their serialized form."""
    _expect_kind(payload, "metrics")
    return DesignMetrics(
        c1p=float(payload["c1p"]),
        c1m=float(payload["c1m"]),
        c2p=int(payload["c2p"]),
        c2m=int(payload["c2m"]),
        penalty_2p=float(payload["penalty_2p"]),
        penalty_2m=float(payload["penalty_2m"]),
        objective=float(payload["objective"]),
    )


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: SystemSchedule) -> Dict[str, Any]:
    """Serialize process entries and bus occupancies (ids + times)."""
    return {
        "kind": "schedule",
        "horizon": schedule.horizon,
        "architecture": architecture_to_dict(schedule.architecture),
        "processes": [
            {
                "process_id": e.process_id,
                "instance": e.instance,
                "node_id": e.node_id,
                "start": e.start,
                "end": e.end,
                "frozen": e.frozen,
            }
            for e in schedule.all_entries()
        ],
        "messages": [
            {
                "message_id": o.message_id,
                "instance": o.instance,
                "node_id": o.node_id,
                "round_index": o.round_index,
                "size": o.size,
                "frozen": o.frozen,
            }
            for o in schedule.bus.all_entries()
        ],
    }


def schedule_from_dict(payload: Dict[str, Any]) -> SystemSchedule:
    """Rebuild a schedule; placement re-checks overlap and capacity."""
    _expect_kind(payload, "schedule")
    architecture = architecture_from_dict(payload["architecture"])
    schedule = SystemSchedule(architecture, payload["horizon"])
    for ed in payload["processes"]:
        schedule.place_process(
            ed["process_id"],
            ed["instance"],
            ed["node_id"],
            ed["start"],
            ed["end"] - ed["start"],
            ed.get("frozen", False),
        )
    for md in payload["messages"]:
        schedule.bus.place(
            md["message_id"],
            md["instance"],
            md["node_id"],
            md["round_index"],
            md["size"],
            md.get("frozen", False),
        )
    schedule.validate()
    return schedule


# ----------------------------------------------------------------------
# generic entry points
# ----------------------------------------------------------------------
_TO_DICT: Dict[type, Callable[[Any], Dict[str, Any]]] = {
    Application: application_to_dict,
    Architecture: architecture_to_dict,
    Mapping: mapping_to_dict,
    FutureCharacterization: future_to_dict,
    SystemSchedule: schedule_to_dict,
    DesignMetrics: metrics_to_dict,
}

_FROM_DICT: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "application": application_from_dict,
    "architecture": architecture_from_dict,
    "future": future_from_dict,
    "schedule": schedule_from_dict,
    "metrics": metrics_from_dict,
}


def to_dict(obj: Any) -> Dict[str, Any]:
    """Serialize any supported object (dispatch on type)."""
    for cls, codec in _TO_DICT.items():
        if isinstance(obj, cls):
            return codec(obj)
    raise TypeError(f"cannot serialize objects of type {type(obj).__name__}")


def from_dict(payload: Dict[str, Any]) -> Any:
    """Deserialize any self-contained payload (dispatch on ``kind``).

    Mappings are not self-contained (they reference an application and
    architecture); use :func:`mapping_from_dict` for those.
    """
    kind = payload.get("kind")
    if kind not in _FROM_DICT:
        raise InvalidModelError(f"cannot deserialize kind {kind!r}")
    return _FROM_DICT[kind](payload)


def save_json(obj: Any, path: Union[str, Path]) -> None:
    """Serialize ``obj`` to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(obj), indent=2, sort_keys=True))


def load_json(path: Union[str, Path]) -> Any:
    """Load any self-contained object from a JSON file."""
    return from_dict(json.loads(Path(path).read_text()))
