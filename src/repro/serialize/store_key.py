"""Canonical text keys of the persistent result store.

The sqlite result store (:mod:`repro.engine.store`) persists evaluation
outcomes across processes and runs, keyed by *what was evaluated*:

* :func:`signature_key` -- the candidate axis.  A
  :data:`repro.engine.compiled_spec.Signature` is already canonical
  (sorted item tuples), so its compact JSON rendering is a stable,
  collision-free text key.  Floats render via ``repr`` and therefore
  round-trip exactly; the key is only ever compared, never parsed.
* :func:`spec_store_key` -- the problem axis.  Two
  :class:`~repro.core.strategy.DesignSpec` instances describe the same
  problem exactly when their serialized forms agree, so the key is a
  SHA-256 over the canonical JSON of the spec's serialized parts
  (application, architecture, future, base schedule, weights, horizon).
  Store rows from different scenarios can then share one database file
  without ever colliding.

Both keys are pure functions of their inputs -- no timestamps, no
environment -- which is what makes a warm store safe to share across
worker processes and restarts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING

from repro.serialize.codec import (
    application_to_dict,
    architecture_to_dict,
    future_to_dict,
    schedule_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import DesignSpec
    from repro.engine.compiled_spec import Signature


def signature_key(signature: "Signature") -> str:
    """Canonical text form of one candidate signature."""
    return json.dumps(signature, separators=(",", ":"))


def spec_store_key(spec: "DesignSpec") -> str:
    """Scenario key of one design problem (SHA-256 hex digest)."""
    payload = {
        "application": application_to_dict(spec.current),
        "architecture": architecture_to_dict(spec.architecture),
        "future": future_to_dict(spec.future),
        "base_schedule": (
            None
            if spec.base_schedule is None
            else schedule_to_dict(spec.base_schedule)
        ),
        "weights": dataclasses.asdict(spec.weights),
        "horizon": spec.effective_horizon(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
