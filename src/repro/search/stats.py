"""Per-search accounting: what one search loop (or pipeline) did.

:class:`SearchStats` sits alongside the engine's ``CacheStats`` and
``DeltaStats`` in the observability story: the engine counts what the
*evaluation* layer did (hits, misses, delta resumes), this counts what
the *search* layer did with it -- steps taken, proposals priced, moves
accepted, and how many evaluations it took to reach the final
incumbent.  Multi-phase strategies (SA's probe / walk / polish) merge
their phase stats with :meth:`SearchStats.merged`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass
class SearchStats:
    """Accounting of one search run.

    Attributes
    ----------
    steps:
        Completed proposal steps (accept/reject decisions).
    proposals:
        Candidate designs generated and priced (>= ``steps``; a
        neighbourhood step proposes many).
    accepted:
        Steps whose proposal was accepted (the walk moved).
    improvements:
        Accepted steps that improved the incumbent.
    evaluations:
        Engine evaluations attributed to this search.
    evaluations_to_incumbent:
        Evaluations consumed when the final incumbent was first found
        (the "time-to-best" in evaluation currency).
    seconds:
        Wall-clock time of the search loop itself.
    stop_reason:
        Why the loop stopped: ``local-optimum``,
        ``exhausted-neighbourhood``, ``budget:steps``,
        ``budget:evaluations``, ``budget:seconds``, ``budget:patience``
        or ``shared-budget``.
    """

    steps: int = 0
    proposals: int = 0
    accepted: int = 0
    improvements: int = 0
    evaluations: int = 0
    evaluations_to_incumbent: int = 0
    seconds: float = 0.0
    stop_reason: str = ""

    def as_dict(self) -> dict:
        """Plain-dict form (checkpoint serialization, bench records)."""
        return {
            "steps": self.steps,
            "proposals": self.proposals,
            "accepted": self.accepted,
            "improvements": self.improvements,
            "evaluations": self.evaluations,
            "evaluations_to_incumbent": self.evaluations_to_incumbent,
            "seconds": self.seconds,
            "stop_reason": self.stop_reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchStats":
        return cls(**data)

    @classmethod
    def merged(
        cls, phases: Sequence["SearchStats"], winner: Optional[int] = None
    ) -> "SearchStats":
        """Aggregate phase stats into one pipeline-level record.

        ``winner`` is the index of the phase that produced the final
        incumbent; ``evaluations_to_incumbent`` then counts every
        evaluation of the earlier phases plus the winner phase's own
        time-to-best.  ``None`` leaves it at the phase sum (no single
        winner, e.g. the incumbent came from outside the loops).
        """
        total = cls()
        phase_list: List[SearchStats] = list(phases)
        for stats in phase_list:
            total.steps += stats.steps
            total.proposals += stats.proposals
            total.accepted += stats.accepted
            total.improvements += stats.improvements
            total.evaluations += stats.evaluations
            total.seconds += stats.seconds
        if phase_list:
            total.stop_reason = phase_list[-1].stop_reason
        if winner is not None and 0 <= winner < len(phase_list):
            before = sum(s.evaluations for s in phase_list[:winner])
            total.evaluations_to_incumbent = (
                before + phase_list[winner].evaluations_to_incumbent
            )
        else:
            total.evaluations_to_incumbent = sum(
                s.evaluations_to_incumbent for s in phase_list
            )
        return total
