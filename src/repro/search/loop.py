"""The unified search loop: propose -> price -> accept, under a budget.

Every optimization in the repository -- the Mapping Heuristic's
steepest descent, Simulated Annealing's Metropolis walk and calibration
probe, SA's polish phase, and any portfolio member -- is one
:class:`SearchLoop`: a :class:`~repro.search.proposers.Proposer`
generates moves, the evaluation engine prices them (cached, batched,
delta-incremental), an :class:`~repro.search.acceptors.Acceptor`
decides where the walk goes, and a :class:`~repro.search.budget.Budget`
says when to stop.  The loop tracks the best design seen (the
*incumbent*) and returns it with full :class:`SearchStats` accounting
and a resumable :class:`SearchCheckpoint`.

The loop body is written as a *generator* (:meth:`SearchLoop.program`)
that yields :class:`EvalRequest` batches and receives their results:
the same program can be driven standalone against one evaluator
(:func:`drive`, used by ``strategy.design``) or interleaved with other
programs over one shared engine by the
:class:`~repro.search.portfolio.PortfolioRunner` -- deterministic
lockstep racing without threads, so seeded results are byte-identical
for any ``--jobs`` value and any racing order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Generator,
    List,
    Optional,
    Sequence,
)

import numpy as np

from repro.engine.evaluation import EvaluatedDesign
from repro.search.acceptors import Acceptor
from repro.search.budget import (
    Budget,
    BudgetProgress,
    SharedBudgetExhausted,
    StealRequested,
)
from repro.search.checkpoint import (
    MemberCheckpoint,
    MemberPaused,
    SearchCheckpoint,
    design_from_dict,
    design_to_dict,
)
from repro.search.proposers import Proposer
from repro.search.stats import SearchStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import DesignEvaluator, DesignSpec
    from repro.core.transformations import CandidateDesign, Transformation


@dataclass(frozen=True)
class EvalRequest:
    """One batch of evaluation work a search program asks for.

    Exactly one of the two forms is populated:

    * ``designs`` -- cold candidate evaluations, and
    * ``parent`` + ``moves`` -- a move neighbourhood of one parent
      (served through the delta kernel when enabled).

    The response is the list of outcomes in input order (``None`` per
    invalid candidate).

    ``bookkeeping`` marks requests that rebuild infrastructure state
    rather than advance the search -- the checkpoint-resume
    re-evaluations of the stored current/incumbent designs.  Racing
    drivers serve them without charging any shared budget (they are
    deterministic replays of work already paid for), which is what
    keeps a cut+resumed member's budget trajectory byte-identical to
    the uninterrupted run's.
    """

    designs: Optional[Sequence["CandidateDesign"]] = None
    parent: Optional[EvaluatedDesign] = None
    moves: Optional[Sequence["Transformation"]] = None
    bookkeeping: bool = False

    @property
    def size(self) -> int:
        """How many engine evaluations serving this request costs."""
        if self.moves is not None:
            return len(self.moves)
        return len(self.designs or ())


def execute_request(
    evaluator: "DesignEvaluator", request: EvalRequest
) -> List[Optional[EvaluatedDesign]]:
    """Serve one :class:`EvalRequest` through an evaluator.

    Single-item requests use the singular engine APIs and batches the
    plural ones, so a program driven here produces exactly the engine
    accounting of the hand-rolled loops it replaced.
    """
    if request.moves is not None:
        if len(request.moves) == 1:
            return [evaluator.evaluate_move(request.parent, request.moves[0])]
        return evaluator.evaluate_moves(request.parent, request.moves)
    designs = list(request.designs or ())
    if len(designs) == 1:
        return [evaluator.evaluate(designs[0])]
    return evaluator.evaluate_many(designs)


SearchProgram = Generator[EvalRequest, List[Optional[EvaluatedDesign]], "SearchOutcome"]


def drive(
    program: Generator[EvalRequest, List[Optional[EvaluatedDesign]], Any],
    evaluator: "DesignEvaluator",
) -> Any:
    """Run a search program to completion against one evaluator.

    Works for any generator that yields :class:`EvalRequest` and
    returns its result via ``StopIteration`` -- a bare
    :meth:`SearchLoop.program` or a whole strategy pipeline.
    """
    try:
        request = next(program)
        while True:
            request = program.send(execute_request(evaluator, request))
    except StopIteration as stop:
        return stop.value


@dataclass
class SearchEvent:
    """What one step did (observer callback payload)."""

    step: int
    previous: EvaluatedDesign
    moves: Sequence["Transformation"]
    results: Sequence[Optional[EvaluatedDesign]]
    accepted: Optional[EvaluatedDesign]


@dataclass
class SearchOutcome:
    """What a finished (or budget-cut) search loop produced."""

    incumbent: EvaluatedDesign
    current: EvaluatedDesign
    stats: SearchStats
    checkpoint: SearchCheckpoint


@dataclass
class SearchLoop:
    """One propose/price/accept search, parameterized by its policies.

    Attributes
    ----------
    proposer:
        Move generation per step.
    acceptor:
        Acceptance policy (owns per-run mutable state such as the
        Metropolis temperature; a fresh loop instance per run).
    budget:
        Stopping conditions; ``None`` runs until the proposer or
        acceptor terminates the search naturally.
    name:
        Label used in stats and portfolio reports.
    """

    proposer: Proposer
    acceptor: Acceptor
    budget: Optional[Budget] = None
    name: str = "search"

    # ------------------------------------------------------------------
    def run(
        self,
        spec: "DesignSpec",
        evaluator: "DesignEvaluator",
        start: Optional[EvaluatedDesign] = None,
        rng: Optional[np.random.Generator] = None,
        checkpoint: Optional[SearchCheckpoint] = None,
        observer: Optional[Callable[[SearchEvent], None]] = None,
    ) -> SearchOutcome:
        """Drive :meth:`program` against ``evaluator`` (standalone mode)."""
        return drive(
            self.program(
                spec,
                start=start,
                rng=rng,
                checkpoint=checkpoint,
                observer=observer,
            ),
            evaluator,
        )

    def resume(
        self,
        spec: "DesignSpec",
        evaluator: "DesignEvaluator",
        checkpoint: SearchCheckpoint,
        rng: Optional[np.random.Generator] = None,
    ) -> SearchOutcome:
        """Continue a checkpointed search exactly where it stopped."""
        return self.run(spec, evaluator, checkpoint=checkpoint, rng=rng)

    # ------------------------------------------------------------------
    def program(
        self,
        spec: "DesignSpec",
        start: Optional[EvaluatedDesign] = None,
        rng: Optional[np.random.Generator] = None,
        checkpoint: Optional[SearchCheckpoint] = None,
        observer: Optional[Callable[[SearchEvent], None]] = None,
    ) -> SearchProgram:
        """The loop body as a generator of :class:`EvalRequest` batches.

        Exactly one of ``start`` (fresh search) and ``checkpoint``
        (resumed search) must be provided.  A
        :class:`SharedBudgetExhausted` thrown into an evaluation yield
        (the portfolio runner's shared-budget cut) ends the loop
        cleanly with the incumbent found so far.
        """
        budget = self.budget if self.budget is not None else Budget()
        stats = SearchStats()
        base_seconds = 0.0
        stall = 0

        if checkpoint is not None:
            if start is not None:
                raise ValueError("pass either start or checkpoint, not both")
            rng = _restore_rng(rng, checkpoint.rng_state)
            self.acceptor.load_state_dict(dict(checkpoint.acceptor_state))
            stats = SearchStats.from_dict(checkpoint.stats.as_dict())
            stats.stop_reason = ""
            base_seconds = checkpoint.seconds
            stall = checkpoint.stall
            current_design = design_from_dict(checkpoint.current, spec)
            incumbent_design = design_from_dict(checkpoint.incumbent, spec)
            results = yield EvalRequest(
                designs=[current_design], bookkeeping=True
            )
            current = results[0]
            if current is None:
                raise ValueError(
                    "checkpointed current design no longer evaluates as "
                    "valid; the checkpoint does not match this spec"
                )
            if checkpoint.incumbent == checkpoint.current:
                incumbent = current
            else:
                results = yield EvalRequest(
                    designs=[incumbent_design], bookkeeping=True
                )
                incumbent = results[0]
                if incumbent is None:
                    raise ValueError(
                        "checkpointed incumbent design no longer evaluates "
                        "as valid; the checkpoint does not match this spec"
                    )
        else:
            if start is None:
                raise ValueError("pass a start design or a checkpoint")
            current = start
            incumbent = start

        started = time.perf_counter()

        def elapsed() -> float:
            return base_seconds + (time.perf_counter() - started)

        stop_reason: str
        pre_propose_rng: Optional[dict] = None
        while True:
            progress = BudgetProgress(
                steps=stats.steps,
                evaluations=stats.evaluations,
                seconds=elapsed(),
                stall=stall,
            )
            stop = budget.stop_reason(progress)
            if stop is not None:
                stop_reason = stop
                break

            # A steal lands at the evaluation yield below, *after* the
            # proposer consumed RNG draws for a batch that is then
            # discarded.  The steal checkpoint must carry the
            # pre-propose state so the resumed loop re-proposes the
            # identical batch (byte-identity with the unstolen run).
            pre_propose_rng = _rng_state(rng)
            moves = self.proposer.propose(spec, current, rng)
            if not moves:
                stop_reason = "exhausted-neighbourhood"
                break
            try:
                results = yield EvalRequest(parent=current, moves=moves)
            except SharedBudgetExhausted:
                stop_reason = "shared-budget"
                break
            except StealRequested:
                stop_reason = "steal"
                break
            stats.proposals += len(moves)
            stats.evaluations += len(moves)

            accepted = self.acceptor.decide(current, moves, results, rng)
            stats.steps += 1
            if observer is not None:
                observer(
                    SearchEvent(stats.steps, current, moves, results, accepted)
                )
            if accepted is None:
                if self.acceptor.terminal_on_reject:
                    stop_reason = "local-optimum"
                    break
                stall += 1
                continue
            stats.accepted += 1
            current = accepted
            if accepted.objective < incumbent.objective:
                incumbent = accepted
                stats.improvements += 1
                stats.evaluations_to_incumbent = stats.evaluations
                stall = 0
            else:
                stall += 1

        stats.seconds = elapsed()
        stats.stop_reason = stop_reason
        final_checkpoint = SearchCheckpoint(
            current=design_to_dict(current.design),
            incumbent=design_to_dict(incumbent.design),
            incumbent_objective=incumbent.objective,
            steps=stats.steps,
            evaluations=stats.evaluations,
            stall=stall,
            seconds=stats.seconds,
            rng_state=(
                pre_propose_rng if stop_reason == "steal" else _rng_state(rng)
            ),
            acceptor_state=self.acceptor.state_dict(),
            stats=SearchStats.from_dict(stats.as_dict()),
        )
        if stop_reason == "steal":
            # Do not return: the member is migrating, not finishing.
            # The enclosing pipeline annotates phase/carry on the way
            # out; serialization happens once at ship time.
            raise MemberPaused(MemberCheckpoint(loop=final_checkpoint))
        return SearchOutcome(incumbent, current, stats, final_checkpoint)


def _rng_state(rng: Optional[np.random.Generator]) -> Optional[dict]:
    if rng is None:
        return None
    return rng.bit_generator.state


def _restore_rng(
    rng: Optional[np.random.Generator], state: Optional[dict]
) -> Optional[np.random.Generator]:
    """An RNG continuing exactly the checkpointed stream."""
    if state is None:
        return rng
    if rng is None:
        # The seed is irrelevant -- the bit-generator state is
        # replaced on the next line -- but an unseeded default_rng()
        # would draw OS entropy for nothing (and trip DET002).
        rng = np.random.default_rng(0)
    rng.bit_generator.state = state
    return rng
