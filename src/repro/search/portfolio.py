"""Deterministic racing of a strategy portfolio over one shared engine.

Algorithm portfolios hedge: instead of committing the whole evaluation
budget to one search, several configured strategies race for it, and
the best incumbent any of them finds wins.  The
:class:`PortfolioRunner` here races *search programs* (the generator
form every kernel-backed strategy exposes via ``search_program``) in
deterministic lockstep over one shared :class:`DesignEvaluator`:

* **one engine** -- all members share the compiled problem, the
  evaluation cache (a design priced for member A is a cache hit for
  member B), the delta kernel and the ``--jobs`` batch pool;
* **lockstep rounds** -- each round serves at most one evaluation
  request per still-running member, in configured member order.  The
  interleaving is a pure function of the configuration, never of
  thread timing, so seeded portfolio results are byte-identical for
  any ``--jobs`` value and any racing order;
* **shared budget** -- an optional portfolio-level
  :class:`~repro.search.budget.Budget` (evaluations / wall-clock) is
  charged as requests are served; a member whose next neighbourhood no
  longer fits is cut via :class:`SharedBudgetExhausted` and finishes
  with its incumbent-so-far.  Members that terminate naturally free
  the remaining budget for the others -- that is the race;
* **deterministic tie-breaking** -- the winner is the valid member
  result with the strictly smallest objective; exact objective ties
  are broken by the canonical design identity (so the winning design
  does not depend on the racing order), and only identical designs
  fall back to the earliest configured member.  Completion order
  never matters.

Per-member engine attribution: each member's ``DesignResult`` reports
the evaluations served on its behalf and its own ``SearchStats``;
cache/delta counters are portfolio-level (the whole point of sharing is
that members hit each other's entries) and live on the
:class:`PortfolioResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.search.budget import Budget, BudgetProgress, SharedBudgetExhausted
from repro.search.loop import EvalRequest, execute_request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import DesignEvaluator, DesignResult, DesignSpec


@dataclass
class PortfolioMemberOutcome:
    """One racing member's result and its portfolio accounting."""

    name: str
    index: int
    result: "DesignResult"
    evaluations_served: int = 0
    rounds: int = 0

    @property
    def objective(self) -> float:
        return self.result.objective


@dataclass
class PortfolioResult:
    """Outcome of one portfolio race.

    ``best`` is the winning member's :class:`DesignResult` (``None``
    when no member found a valid design); engine statistics are
    portfolio-level totals over the shared engine.
    """

    members: List[PortfolioMemberOutcome]
    winner_index: Optional[int] = None
    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    delta_hits: int = 0
    delta_fallbacks: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    runtime_seconds: float = 0.0
    budget_cut: bool = False

    @property
    def winner(self) -> Optional[PortfolioMemberOutcome]:
        if self.winner_index is None:
            return None
        return self.members[self.winner_index]

    @property
    def best(self) -> Optional["DesignResult"]:
        member = self.winner
        return member.result if member is not None else None

    @property
    def valid(self) -> bool:
        return self.winner_index is not None

    @property
    def objective(self) -> float:
        return self.best.objective if self.best is not None else float("inf")


class PortfolioRunner:
    """Races strategy instances over one shared evaluation engine.

    Parameters
    ----------
    members:
        Configured strategy instances exposing
        ``search_program(spec, compiled)`` and ``name`` (every
        kernel-backed strategy does).  Order is the racing order and
        the tie-breaking order.
    budget:
        Portfolio-level budget shared by all members (evaluations and
        wall-clock axes; per-member step caps belong to the members'
        own budgets).  ``None`` lets every member run to its own
        completion.
    use_cache, jobs, max_cache_entries, use_delta, engine_core,
    cache_store, cache_path:
        Shared-engine knobs, exactly as on
        :class:`~repro.core.strategy.DesignEvaluator`.  With
        ``cache_store="sqlite"`` the whole race shares one persistent
        result store: any member's priced design is served warm to the
        others, and to future races against the same path.
    """

    def __init__(
        self,
        members: Sequence,
        budget: Optional[Budget] = None,
        use_cache: bool = True,
        jobs: int = 1,
        max_cache_entries: Optional[int] = -1,
        use_delta: bool = True,
        engine_core: str = "array",
        cache_store: str = "memory",
        cache_path: Optional[str] = None,
    ):
        if not members:
            raise ValueError("a portfolio needs at least one member")
        self.members = list(members)
        self.budget = budget
        self.use_cache = use_cache
        self.jobs = jobs
        self.max_cache_entries = max_cache_entries
        self.use_delta = use_delta
        self.engine_core = engine_core
        self.cache_store = cache_store
        self.cache_path = cache_path

    # ------------------------------------------------------------------
    def run(self, spec: "DesignSpec") -> PortfolioResult:
        """Race every member on ``spec``; deterministic winner."""
        from repro.core.strategy import DesignEvaluator
        from repro.engine.cache import DEFAULT_MAX_ENTRIES

        max_entries = (
            DEFAULT_MAX_ENTRIES
            if self.max_cache_entries == -1
            else self.max_cache_entries
        )
        started = time.perf_counter()
        with DesignEvaluator(
            spec,
            use_cache=self.use_cache,
            jobs=self.jobs,
            max_cache_entries=max_entries,
            use_delta=self.use_delta,
            engine_core=self.engine_core,
            cache_store=self.cache_store,
            cache_path=self.cache_path,
        ) as evaluator:
            outcomes, budget_cut = self._race(spec, evaluator)
            counters = evaluator.counters()
            result = PortfolioResult(
                members=outcomes,
                evaluations=counters.evaluations,
                cache_hits=counters.cache_hits,
                cache_misses=counters.cache_misses,
                delta_hits=counters.delta_hits,
                delta_fallbacks=counters.delta_fallbacks,
                store_hits=counters.store_hits,
                store_misses=counters.store_misses,
                store_writes=counters.store_writes,
                budget_cut=budget_cut,
            )
        result.winner_index = _pick_winner(result.members)
        result.runtime_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    def _race(
        self, spec: "DesignSpec", evaluator: "DesignEvaluator"
    ) -> Tuple[List[PortfolioMemberOutcome], bool]:
        budget = self.budget if self.budget is not None else Budget()
        started = time.perf_counter()
        served_evaluations = 0
        budget_cut = False

        names = _unique_names(self.members)
        programs = []
        outcomes: List[Optional[PortfolioMemberOutcome]] = []
        pending: List[Optional[EvalRequest]] = []
        for index, member in enumerate(self.members):
            programs.append(member.search_program(spec, evaluator.compiled))
            outcomes.append(None)
            pending.append(None)

        def finish(index: int, result: "DesignResult") -> None:
            outcome = outcomes[index]
            outcome.result = result
            programs[index] = None
            pending[index] = None

        # Prime every program up to its first evaluation request.
        for index, program in enumerate(programs):
            outcomes[index] = PortfolioMemberOutcome(
                name=names[index], index=index, result=None
            )
            try:
                pending[index] = next(program)
            except StopIteration as stop:
                finish(index, stop.value)

        # Lockstep rounds: serve one request per live member, in order.
        while any(program is not None for program in programs):
            for index, program in enumerate(programs):
                if program is None:
                    continue
                request = pending[index]
                outcome = outcomes[index]
                outcome.rounds += 1
                cut = request.moves is not None and _over_budget(
                    budget,
                    served_evaluations,
                    request.size,
                    time.perf_counter() - started,
                )
                try:
                    if cut:
                        budget_cut = True
                        pending[index] = program.throw(SharedBudgetExhausted())
                    else:
                        if not request.bookkeeping:
                            # Checkpoint-resume re-evaluations replay
                            # work already charged before a cut; serving
                            # them free keeps a resumed member's budget
                            # trajectory identical to the uninterrupted
                            # run's (the distributed race relies on it).
                            served_evaluations += request.size
                            outcome.evaluations_served += request.size
                        pending[index] = program.send(
                            execute_request(evaluator, request)
                        )
                except StopIteration as stop:
                    finish(index, stop.value)

        final: List[PortfolioMemberOutcome] = []
        for outcome in outcomes:
            if outcome.result.valid and outcome.evaluations_served > 0:
                outcome.result.evaluations = outcome.evaluations_served
            final.append(outcome)
        return final, budget_cut


def _over_budget(
    budget: Budget, served: int, request_size: int, seconds: float
) -> bool:
    """Whether serving ``request_size`` more evaluations busts the budget."""
    if (
        budget.max_evaluations is not None
        and served + request_size > budget.max_evaluations
    ):
        return True
    progress = BudgetProgress(evaluations=served, seconds=seconds)
    reason = budget.stop_reason(progress)
    return reason is not None and reason != "budget:steps"


def _pick_winner(members: Sequence[PortfolioMemberOutcome]) -> Optional[int]:
    """Deterministic incumbent tie-breaking.

    Strictly smallest objective wins; exact objective ties are broken
    by the canonical design identity
    (:meth:`DesignResult.design_identity` -- the one definition shared
    with the smoke checks and CLI gates), so the winning *design* does
    not depend on the racing order even when two members tie with
    different designs; only identical designs fall back to the
    earliest member index.
    """
    winner: Optional[int] = None
    for member in members:
        if not member.result.valid:
            continue
        if winner is None or member.objective < members[winner].objective:
            winner = member.index
        elif (
            member.objective == members[winner].objective
            and member.result.design_identity()
            < members[winner].result.design_identity()
        ):
            winner = member.index
    return winner


def _unique_names(members: Sequence) -> List[str]:
    """Member labels: the strategy name, disambiguated by position."""
    names: List[str] = []
    seen: dict = {}
    for member in members:
        base = getattr(member, "name", type(member).__name__)
        count = seen.get(base, 0)
        seen[base] = count + 1
        names.append(base if count == 0 else f"{base}#{count + 1}")
    return names


# ----------------------------------------------------------------------
# sequential first-valid racing (the modification flow's driver)
# ----------------------------------------------------------------------
def first_valid(
    attempts: Iterable,
    budget: Optional[Budget] = None,
) -> Tuple[Optional[object], int, str]:
    """Run attempt thunks in order until one returns a valid result.

    The sequential sibling of the portfolio race, used by the
    modification flow's cheapest-first subset search: each attempt is a
    zero-argument callable returning an object with a ``valid``
    attribute.  The budget's ``max_steps`` caps the number of attempts
    and ``max_seconds`` the total wall-clock across them.

    Returns ``(result, attempts_made, stop_reason)`` where ``result``
    is the first valid outcome or ``None``, and ``stop_reason`` is
    ``"valid"``, ``"exhausted"`` or the budget reason that cut the
    scan.
    """
    budget = budget if budget is not None else Budget()
    started = time.perf_counter()
    count = 0
    for attempt in attempts:
        progress = BudgetProgress(
            steps=count, seconds=time.perf_counter() - started
        )
        reason = budget.stop_reason(progress)
        if reason is not None:
            return None, count, reason
        result = attempt()
        count += 1
        if getattr(result, "valid", False):
            return result, count, "valid"
    return None, count, "exhausted"
