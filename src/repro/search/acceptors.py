"""Acceptors: how a search step decides which priced move (if any) to take.

An acceptor receives the step's evaluation results (in move order) and
returns the new current design, or ``None`` to reject the step.  The
concrete policies mirror the searches the kernel replaced:

* :class:`GreedyAcceptor` -- steepest descent: take the best strictly
  improving move; a reject is *terminal* (local optimum reached).
* :class:`MetropolisAcceptor` -- simulated annealing: accept downhill
  always, uphill with the Boltzmann probability at the current
  temperature; cools geometrically once per step.
* :class:`ThresholdAcceptor` -- threshold accepting: take the first
  move within ``threshold`` of the current objective (a deterministic
  SA relative).
* :class:`AcceptAny` -- take the first valid result (SA's
  temperature-calibration probe walks like this).

Acceptors may hold mutable per-run state (the Metropolis temperature);
``state_dict`` / ``load_state_dict`` expose it for checkpoints.  The
stochastic acceptor draws from the loop's RNG in exactly the legacy
order (a draw only for uphill proposals), preserving seeded
byte-identical trajectories.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.core.transformations import Transformation
from repro.engine.evaluation import EvaluatedDesign


class Acceptor(Protocol):
    """Decides whether (and where) the walk moves this step."""

    #: Whether a rejected step terminates the search (greedy descent
    #: stops at a local optimum; stochastic walks keep going).
    terminal_on_reject: bool

    def decide(
        self,
        current: EvaluatedDesign,
        moves: Sequence[Transformation],
        results: Sequence[Optional[EvaluatedDesign]],
        rng: Optional[np.random.Generator],
    ) -> Optional[EvaluatedDesign]:
        """The accepted result, or ``None`` to stay at ``current``."""
        ...  # pragma: no cover - protocol

    def state_dict(self) -> dict:
        """Serializable mutable state (``{}`` for stateless policies)."""
        ...  # pragma: no cover - protocol

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (checkpoint resume)."""
        ...  # pragma: no cover - protocol


class GreedyAcceptor:
    """Steepest descent: the best strictly improving move, or stop.

    Walks the results in move order and keeps the steepest improvement
    over the current objective (by more than ``min_improvement``), so
    serial, cached, delta and parallel runs pick the identical move.
    """

    terminal_on_reject = True

    def __init__(self, min_improvement: float = 1e-9):
        self.min_improvement = min_improvement

    def decide(
        self,
        current: EvaluatedDesign,
        moves: Sequence[Transformation],
        results: Sequence[Optional[EvaluatedDesign]],
        rng: Optional[np.random.Generator],
    ) -> Optional[EvaluatedDesign]:
        winner: Optional[EvaluatedDesign] = None
        for evaluated in results:
            if evaluated is None:
                continue
            target = winner.objective if winner is not None else current.objective
            if evaluated.objective < target - self.min_improvement:
                winner = evaluated
        return winner

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class MetropolisAcceptor:
    """Metropolis acceptance with geometric cooling.

    ``decide`` examines results in order and accepts the first that
    passes the Metropolis test (downhill always; uphill with
    probability ``exp(-delta / T)``), then cools once -- per *step*,
    exactly like the legacy annealing loop, including steps whose
    proposal was invalid.
    """

    terminal_on_reject = False

    def __init__(
        self,
        temperature: float,
        cooling: float = 0.997,
        min_temperature: float = 1e-3,
    ):
        self.temperature = temperature
        self.cooling = cooling
        self.min_temperature = min_temperature

    @staticmethod
    def metropolis(
        delta: float, temperature: float, rng: np.random.Generator
    ) -> bool:
        """The classical acceptance test (RNG drawn only when uphill)."""
        if delta <= 0:
            return True
        if temperature <= 0:
            return False
        return rng.random() < math.exp(-delta / temperature)

    def decide(
        self,
        current: EvaluatedDesign,
        moves: Sequence[Transformation],
        results: Sequence[Optional[EvaluatedDesign]],
        rng: Optional[np.random.Generator],
    ) -> Optional[EvaluatedDesign]:
        if rng is None:
            raise ValueError("MetropolisAcceptor requires an rng")
        accepted: Optional[EvaluatedDesign] = None
        for evaluated in results:
            if evaluated is None:
                continue
            if self.metropolis(
                evaluated.objective - current.objective, self.temperature, rng
            ):
                accepted = evaluated
                break
        self.temperature = max(
            self.min_temperature, self.temperature * self.cooling
        )
        return accepted

    def state_dict(self) -> dict:
        return {"temperature": self.temperature}

    def load_state_dict(self, state: dict) -> None:
        self.temperature = float(state["temperature"])


class ThresholdAcceptor:
    """Threshold accepting: the first move within ``threshold`` uphill.

    A deterministic SA relative (Dueck & Scheuer): a move is taken when
    it does not worsen the objective by more than ``threshold``, which
    decays geometrically per step down to zero (pure descent).
    """

    terminal_on_reject = False

    def __init__(self, threshold: float, decay: float = 1.0):
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.threshold = threshold
        self.decay = decay

    def decide(
        self,
        current: EvaluatedDesign,
        moves: Sequence[Transformation],
        results: Sequence[Optional[EvaluatedDesign]],
        rng: Optional[np.random.Generator],
    ) -> Optional[EvaluatedDesign]:
        accepted: Optional[EvaluatedDesign] = None
        for evaluated in results:
            if evaluated is None:
                continue
            if evaluated.objective < current.objective + self.threshold:
                accepted = evaluated
                break
        self.threshold *= self.decay
        return accepted

    def state_dict(self) -> dict:
        return {"threshold": self.threshold}

    def load_state_dict(self, state: dict) -> None:
        self.threshold = float(state["threshold"])


class AcceptAny:
    """Accept the first valid result unconditionally (probe walks)."""

    terminal_on_reject = False

    def decide(
        self,
        current: EvaluatedDesign,
        moves: Sequence[Transformation],
        results: Sequence[Optional[EvaluatedDesign]],
        rng: Optional[np.random.Generator],
    ) -> Optional[EvaluatedDesign]:
        for evaluated in results:
            if evaluated is not None:
                return evaluated
        return None

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass
