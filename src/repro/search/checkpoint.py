"""Serializable search state: pause any search, resume it anywhere.

A :class:`SearchCheckpoint` captures everything a
:class:`~repro.search.loop.SearchLoop` needs to continue exactly where
it stopped: the RNG stream state (numpy bit-generator state dict, so
the continuation draws the very next numbers the uninterrupted run
would have drawn), the current and incumbent design points as plain
dicts, the acceptor's mutable state (e.g. the Metropolis temperature),
the budget progress counters and the accumulated stats.

Everything is JSON-serializable: a budgeted search can be cut, shipped
to another process or host, and resumed against a freshly built
evaluation engine.  The resumed loop re-evaluates the two stored
designs to rebuild their schedules and delta-evaluation attachments
(evaluation is deterministic, so the rebuilt parents are bit-identical
to the originals); the incumbent trajectory of *cut + resume* equals
the uninterrupted run's.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.search.stats import SearchStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import DesignSpec
    from repro.core.transformations import CandidateDesign


def design_to_dict(design: "CandidateDesign") -> dict:
    """Plain-dict wire form of one design point."""
    return {
        "mapping": design.mapping.as_dict(),
        "priorities": dict(design.priorities),
        "message_delays": dict(design.message_delays),
    }


def design_from_dict(data: dict, spec: "DesignSpec") -> "CandidateDesign":
    """Rebuild a design point against ``spec``'s model objects."""
    from repro.core.transformations import CandidateDesign
    from repro.model.mapping import Mapping

    return CandidateDesign(
        Mapping(spec.current, spec.architecture, dict(data["mapping"])),
        dict(data["priorities"]),
        {k: int(v) for k, v in data["message_delays"].items()},
    )


@dataclass
class SearchCheckpoint:
    """The complete resumable state of one search loop.

    Attributes
    ----------
    current:
        The walk's current design point (wire form).
    incumbent:
        The best design seen so far (wire form).
    incumbent_objective:
        Its objective value (informational; the resumed loop recomputes
        it from the re-evaluated incumbent).
    steps, evaluations, stall, seconds:
        Budget progress so far; the continuation keeps counting from
        these, so a ``Budget(max_steps=100)`` run cut at 40 steps
        resumes for exactly 60 more.
    rng_state:
        Numpy bit-generator state of the search RNG stream (``None``
        for deterministic searches that never draw).
    acceptor_state:
        The acceptor's :meth:`state_dict` (e.g. Metropolis
        temperature).
    stats:
        Accumulated :class:`SearchStats` of the run so far.
    """

    current: dict
    incumbent: dict
    incumbent_objective: float
    steps: int = 0
    evaluations: int = 0
    stall: int = 0
    seconds: float = 0.0
    rng_state: Optional[dict] = None
    acceptor_state: dict = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "current": self.current,
            "incumbent": self.incumbent,
            "incumbent_objective": self.incumbent_objective,
            "steps": self.steps,
            "evaluations": self.evaluations,
            "stall": self.stall,
            "seconds": self.seconds,
            "rng_state": self.rng_state,
            "acceptor_state": self.acceptor_state,
            "stats": self.stats.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchCheckpoint":
        return cls(
            current=dict(data["current"]),
            incumbent=dict(data["incumbent"]),
            incumbent_objective=float(data["incumbent_objective"]),
            steps=int(data["steps"]),
            evaluations=int(data["evaluations"]),
            stall=int(data["stall"]),
            seconds=float(data["seconds"]),
            rng_state=data.get("rng_state"),
            acceptor_state=dict(data.get("acceptor_state") or {}),
            stats=SearchStats.from_dict(dict(data["stats"])),
        )

    def to_json(self) -> str:
        """JSON wire form (newline-terminated for file friendliness)."""
        return json.dumps(self.to_dict(), sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SearchCheckpoint":
        return cls.from_dict(json.loads(text))


@dataclass
class MemberCheckpoint:
    """The resumable state of a whole strategy *pipeline*.

    A :class:`SearchCheckpoint` resumes one loop; a portfolio member is
    a pipeline of loops (SA: probe, walk, two polish descents) with a
    little inter-phase state.  When a shard cuts a member for stealing,
    the active loop contributes ``loop`` (its own checkpoint) and the
    strategy annotates ``phase`` (which pipeline stage was cut) plus
    ``carry`` (the JSON-safe inter-phase state accumulated *before*
    that stage -- completed-phase stats, the pre-polish incumbent, the
    calibration deltas).  ``strategy`` records the owning strategy name
    for sanity checks on resume.

    Size contract: everything here is O(current state) -- two designs,
    one RNG bit-generator state, a few counters -- never O(history).
    The wire form is produced *once per steal* (:meth:`to_json` at ship
    time); per-batch evaluation traffic never serializes any of it.
    """

    loop: SearchCheckpoint
    phase: str = ""
    carry: dict = field(default_factory=dict)
    strategy: str = ""

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "strategy": self.strategy,
            "phase": self.phase,
            "carry": self.carry,
            "loop": self.loop.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MemberCheckpoint":
        return cls(
            loop=SearchCheckpoint.from_dict(dict(data["loop"])),
            phase=str(data.get("phase", "")),
            carry=dict(data.get("carry") or {}),
            strategy=str(data.get("strategy", "")),
        )

    def to_json(self) -> str:
        """JSON wire form -- the steal/reship payload."""
        return json.dumps(self.to_dict(), sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "MemberCheckpoint":
        return cls.from_dict(json.loads(text))


class MemberPaused(Exception):
    """Raised *out of* a search program cut by :class:`StealRequested`.

    Carries the :class:`MemberCheckpoint` the resumed program needs.
    The loop raises it with the bare loop checkpoint; each enclosing
    pipeline stage annotates ``checkpoint.phase`` / ``checkpoint.carry``
    as the exception unwinds, so by the time the shard driver catches
    it the payload describes the whole pipeline position.
    """

    def __init__(self, checkpoint: MemberCheckpoint):
        super().__init__("search program paused for migration")
        self.checkpoint = checkpoint
