"""Proposers: how a search step generates candidate moves.

A proposer turns the current :class:`EvaluatedDesign` into the list of
:class:`Transformation` moves the step will price.  The two concrete
proposers are the neighbourhood enumeration that used to live inside
``core.improvement`` (the Mapping Heuristic's high-potential
neighbourhood, also SA's polish phase) and the random-move generator
that used to live inside ``core.simulated_annealing`` (the Metropolis
walk).  Both are lifted verbatim so seeded searches reproduce the
pre-refactor trajectories byte-for-byte.

An empty proposal list terminates the search (nothing left to try) --
the kernel's ``exhausted-neighbourhood`` stop reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol, Tuple

import numpy as np

from repro.core.slack import slack_fragmentation, window_slack_profile
from repro.core.transformations import (
    DelayMessage,
    RemapProcess,
    SwapPriorities,
    Transformation,
)
from repro.engine.evaluation import EvaluatedDesign
from repro.sched.schedule import SystemSchedule
from repro.utils.timemath import periodic_windows

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import DesignSpec
    from repro.model.process_graph import Process


class Proposer(Protocol):
    """Generates the moves one search step will price."""

    def propose(
        self,
        spec: "DesignSpec",
        current: EvaluatedDesign,
        rng: Optional[np.random.Generator],
    ) -> List[Transformation]:
        """The moves to evaluate against ``current``; ``[]`` stops."""
        ...  # pragma: no cover - protocol


# ----------------------------------------------------------------------
# high-potential neighbourhood (the Mapping Heuristic's move generator)
# ----------------------------------------------------------------------
def select_candidates(
    spec: "DesignSpec", evaluated: EvaluatedDesign, pool_size: int
) -> List[str]:
    """Top current-application processes by improvement potential.

    Scoring follows the two design criteria: a process scores its
    node's slack fragmentation (criterion 1 -- moving it may coalesce
    gaps) plus 1 if any of its instances executes inside the node's
    worst ``T_min`` window (criterion 2 -- moving it directly relieves
    the binding window).  Larger WCETs win ties.
    """
    schedule = evaluated.schedule
    mapping = evaluated.mapping
    frag = slack_fragmentation(schedule)
    profile = window_slack_profile(schedule, spec.future.t_min)
    worst_index = {
        node_id: min(range(len(slacks)), key=lambda i: slacks[i])
        for node_id, slacks in profile.items()
    }
    windows = periodic_windows(schedule.horizon, spec.future.t_min)
    horizon = spec.effective_horizon()

    scored: List[Tuple[float, int, str]] = []
    for proc in spec.current.processes:
        node_id = mapping.node_of(proc.id)
        score = frag[node_id].fragmentation
        wcet = proc.wcet_on(node_id)
        worst = windows[worst_index[node_id]]
        period = spec.current.graph_of(proc.id).period
        for instance in range(horizon // period):
            entry = schedule.entry_of(proc.id, instance)
            if entry is not None and entry.interval.overlaps(worst):
                score += 1.0
                break
        scored.append((score, wcet, proc.id))
    scored.sort(key=lambda t: (-t[0], -t[1], t[2]))
    return [pid for _, _, pid in scored[:pool_size]]


def schedule_neighbours(
    spec: "DesignSpec",
    schedule: SystemSchedule,
    process_id: str,
    node_id: str,
) -> List[str]:
    """Current-app processes scheduled adjacent to ``process_id``.

    Swapping priorities with a schedule neighbour realizes "move the
    process to a different slack on the *same* processor": the two
    trade places in the list-scheduling order.
    """
    entries = [
        e
        for e in schedule.entries_on(node_id)
        if not e.frozen and e.process_id in spec.current
    ]
    neighbours: List[str] = []
    for i, entry in enumerate(entries):
        if entry.process_id != process_id:
            continue
        if i > 0 and entries[i - 1].process_id != process_id:
            neighbours.append(entries[i - 1].process_id)
        if i + 1 < len(entries) and entries[i + 1].process_id != process_id:
            neighbours.append(entries[i + 1].process_id)
    seen = set()
    unique: List[str] = []
    for n in neighbours:
        if n not in seen:
            seen.add(n)
            unique.append(n)
    return unique


def generate_moves(
    spec: "DesignSpec",
    evaluated: EvaluatedDesign,
    pool_size: int = 8,
    use_message_moves: bool = True,
) -> List[Transformation]:
    """The bounded high-potential neighbourhood of one design."""
    candidates = select_candidates(spec, evaluated, pool_size)
    mapping = evaluated.mapping
    schedule = evaluated.schedule
    moves: List[Transformation] = []

    for pid in candidates:
        process = spec.current.process(pid)
        current_node = mapping.node_of(pid)
        for node_id in process.allowed_nodes:
            if node_id != current_node:
                moves.append(RemapProcess(pid, node_id))
        for neighbour in schedule_neighbours(spec, schedule, pid, current_node):
            moves.append(SwapPriorities(pid, neighbour))

    if use_message_moves:
        delays = evaluated.design.message_delays
        for pid in candidates:
            graph = spec.current.graph_of(pid)
            for msg in graph.out_messages(pid):
                if mapping.node_of(msg.src) == mapping.node_of(msg.dst):
                    continue
                moves.append(DelayMessage(msg.id, +1))
                if delays.get(msg.id, 0) > 0:
                    moves.append(DelayMessage(msg.id, -1))
    return moves


@dataclass(frozen=True)
class NeighbourhoodProposer:
    """The Mapping Heuristic's high-potential neighbourhood, as a proposer.

    Attributes
    ----------
    pool_size:
        Number of highest-potential candidate processes per step.
    use_message_moves:
        Whether bus-slack (message-delay) moves are generated.
    """

    pool_size: int = 8
    use_message_moves: bool = True

    def propose(
        self,
        spec: "DesignSpec",
        current: EvaluatedDesign,
        rng: Optional[np.random.Generator],
    ) -> List[Transformation]:
        return generate_moves(
            spec, current, self.pool_size, self.use_message_moves
        )


# ----------------------------------------------------------------------
# random single moves (the Metropolis walk's move generator)
# ----------------------------------------------------------------------
def random_swap(
    processes: List["Process"], rng: np.random.Generator
) -> Optional[Transformation]:
    """A priority swap between two distinct random processes."""
    if len(processes) < 2:
        return None
    i, j = rng.choice(len(processes), size=2, replace=False)
    return SwapPriorities(processes[int(i)].id, processes[int(j)].id)


def random_move(
    spec: "DesignSpec",
    current: EvaluatedDesign,
    rng: np.random.Generator,
) -> Optional[Transformation]:
    """Draw one random transformation of the current design.

    The draw sequence is exactly the annealer's historical one (move
    kind, then rejection-sampled operands), so seeded SA walks through
    the kernel reproduce the legacy walks byte-for-byte.
    """
    processes = spec.current.processes
    if not processes:
        return None
    roll = rng.random()
    if roll < 0.55:
        # Remap a random process to a random *other* allowed node.
        for _ in range(8):
            proc = processes[rng.integers(len(processes))]
            options = [
                n
                for n in proc.allowed_nodes
                if n != current.mapping.node_of(proc.id)
            ]
            if options:
                return RemapProcess(
                    proc.id, options[rng.integers(len(options))]
                )
        return random_swap(processes, rng)
    if roll < 0.85 or not spec.current.messages:
        return random_swap(processes, rng)
    # Message-delay move on a random inter-node message.
    messages = spec.current.messages
    for _ in range(8):
        msg = messages[rng.integers(len(messages))]
        if current.mapping.node_of(msg.src) != current.mapping.node_of(
            msg.dst
        ):
            delay = current.design.message_delays.get(msg.id, 0)
            delta = +1 if delay == 0 or rng.random() < 0.5 else -1
            return DelayMessage(msg.id, delta)
    return random_swap(processes, rng)


@dataclass(frozen=True)
class RandomMoveProposer:
    """One random transformation per step (the Metropolis proposer)."""

    def propose(
        self,
        spec: "DesignSpec",
        current: EvaluatedDesign,
        rng: Optional[np.random.Generator],
    ) -> List[Transformation]:
        if rng is None:
            raise ValueError("RandomMoveProposer requires an rng")
        move = random_move(spec, current, rng)
        return [] if move is None else [move]
