"""Distributed, elastic portfolio racing over sharded search processes.

The in-process :class:`~repro.search.portfolio.PortfolioRunner` races
members in deterministic lockstep on one engine -- pinned, simple, and
single-core.  This module shards the same race across N worker
processes: each shard drives a subset of the members' search programs
against its own :class:`~repro.core.strategy.DesignEvaluator` (array
core, delta kernel, read-only view of the shared sqlite result store),
while the parent coordinator owns the shared racing budget, the steal
protocol and the single read-write store connection.

Protocol summary
----------------
*Members* are the configured strategy instances; every worker holds
the full member list (small config dataclasses) but only *runs* its
assigned subset.  Workers talk to the parent over one duplex pipe
each:

* ``ask`` / ``verdict`` -- in *metered* races (a shared budget with an
  evaluation or wall-clock axis) every non-bookkeeping request is
  granted or cut by the parent before it is served.
* ``paused`` -- a member cut for migration: the worker throws
  :class:`~repro.search.budget.StealRequested` into the program at a
  move-evaluation yield, catches
  :class:`~repro.search.checkpoint.MemberPaused` and ships the
  :class:`~repro.search.checkpoint.MemberCheckpoint` (serialized once,
  at ship time).  The parent reassigns the member to the target shard,
  which resumes it byte-identically (the pinned cut+resume contract).
* ``checkpoint`` -- the same cut, applied locally: every
  ``checkpoint_every`` charged evaluations the worker pauses a member,
  ships the checkpoint to the parent (the respawn baseline) and
  resumes it in place; the resume's re-evaluations are warm cache hits
  served as uncharged ``bookkeeping`` requests.
* ``done`` / ``idle`` / ``rows`` / ``final`` -- member results, shard
  starvation (elastic work-stealing trigger), drained store rows for
  the parent's single writer, and end-of-race engine counters.

Worker death is detected through process sentinels: a dead shard's
running members respawn from their last shipped checkpoint on a fresh
replacement worker, with every evaluation charged since that
checkpoint refunded to the shared budget (conservation stays exact).

Determinism
-----------
Member trajectories are invariant under cutting: a steal, checkpoint
or respawn replays the member's own deterministic continuation, so in
a *free* race (no binding shared evaluation/wall budget) the final
member results -- and therefore the winner, picked by the same
:func:`~repro.search.portfolio._pick_winner` tie-breaking -- are
byte-identical to the lockstep reference for any shard count, any
steal pattern and any worker churn.  With a binding shared evaluation
budget, *replay* mode reproduces the lockstep charge order exactly via
a logical budget clock: member ``m``'s ``k``-th budget decision is
made at global slot ``(k, m)``, the lexicographic order the lockstep
rounds produce, so the budget-cut trajectory matches lockstep
byte-for-byte when no churn displaces charges.  Binding budget *plus*
churn guarantees exact budget conservation but not byte-identity
(refunded work is re-charged later in the global order); DESIGN.md
documents the scope honestly.  ``elastic`` mode drops the ordering for
arrival-order grants -- wall-clock budgets and timing-driven stealing,
reproducible only in aggregate.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.engine.engine import EngineCounters
from repro.search.budget import Budget, SharedBudgetExhausted, StealRequested
from repro.search.checkpoint import MemberCheckpoint, MemberPaused
from repro.search.loop import EvalRequest, execute_request
from repro.search.portfolio import (
    PortfolioMemberOutcome,
    PortfolioResult,
    _over_budget,
    _pick_winner,
    _unique_names,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.core.strategy import DesignResult, DesignSpec

#: Charged evaluations a member runs between periodic checkpoints.
DEFAULT_CHECKPOINT_EVERY = 256

#: Crash-loop backstop: a member that dies with its shard more than
#: this many times is marked failed instead of respawning again.
DEFAULT_RESPAWN_LIMIT = 3


@dataclass
class ShardEvent:
    """One coordinator-visible race event (reporting only)."""

    kind: str  # start | assign | steal | checkpoint | done | dead | respawn | add | remove | stop
    shard: int
    member: int = -1
    detail: str = ""
    seconds: float = 0.0


@dataclass
class DistributedPortfolioResult(PortfolioResult):
    """A :class:`PortfolioResult` plus the fleet-level accounting.

    ``shard_counters`` holds each shard engine's
    :class:`~repro.engine.engine.EngineCounters` (index-aligned with
    ``shard_ids``); the inherited portfolio-level totals are their
    fleet-wide sum (plus the parent's store-writer counters).
    ``shard_busy_seconds`` is each shard's CPU time
    (``time.process_time``), the basis of the critical-path speedup
    the benchmark reports.  Counters of shards killed mid-race are
    lost with the process and excluded (noted in ``events``).
    """

    shards: int = 0
    mode: str = "replay"
    shard_ids: List[int] = field(default_factory=list)
    shard_counters: List[EngineCounters] = field(default_factory=list)
    shard_busy_seconds: List[float] = field(default_factory=list)
    events: List[ShardEvent] = field(default_factory=list)
    respawns: int = 0


def _zero_counters() -> EngineCounters:
    return EngineCounters(0, 0, 0, 0, 0)


# ======================================================================
# shard worker
# ======================================================================
def _shard_main(
    shard_id: int,
    conn: "Connection",
    spec: "DesignSpec",
    members: Sequence[Any],
    assigns: List[Tuple[int, Optional[str], int, int, Optional[int]]],
    cfg: Dict[str, Any],
) -> None:
    """One shard process: lockstep-serve assigned members, obey the parent.

    ``assigns`` rows are ``(member, ckpt_json, k0, charged0, steal_at)``.
    """
    from repro.core.strategy import DesignEvaluator

    busy0 = time.process_time()
    evaluator = DesignEvaluator(
        spec,
        use_cache=cfg["use_cache"],
        jobs=1,
        max_cache_entries=cfg["max_cache_entries"],
        use_delta=cfg["use_delta"],
        engine_core=cfg["engine_core"],
        cache_store=cfg["cache_store"],
        cache_path=cfg["cache_path"],
        store_read_only=cfg["cache_store"] == "sqlite",
    )
    metered: bool = cfg["metered"]
    ckpt_every: int = cfg["checkpoint_every"]

    programs: Dict[int, Generator] = {}
    pending: Dict[int, EvalRequest] = {}
    k: Dict[int, int] = {}
    charged: Dict[int, int] = {}
    since_ckpt: Dict[int, int] = {}
    steal_at: Dict[int, Optional[int]] = {}
    steal_now: Set[int] = set()
    stop = False
    idle_sent = False

    def ship_rows() -> None:
        rows = evaluator.drain_store_rows()
        if rows:
            conn.send(("rows", shard_id, rows))

    def finish(m: int, result: "DesignResult") -> None:
        programs.pop(m, None)
        pending.pop(m, None)
        conn.send(("done", m, result, k.get(m, 0), charged.get(m, 0)))

    def start_member(
        m: int, ckpt_json: Optional[str], k0: int, charged0: int, at: Optional[int]
    ) -> None:
        k[m] = k0
        charged[m] = charged0
        since_ckpt[m] = 0
        steal_at[m] = at
        strategy = members[m]
        if ckpt_json is None:
            prog = strategy.search_program(spec, evaluator.compiled)
        else:
            wire = MemberCheckpoint.from_json(ckpt_json)
            prog = strategy.search_program(spec, evaluator.compiled, resume=wire)
        try:
            first = next(prog)
        except StopIteration as ended:
            finish(m, ended.value)
            return
        programs[m] = prog
        pending[m] = first

    def pause_member(m: int) -> None:
        """Cut ``m`` at its pending move request and ship its checkpoint."""
        prog = programs.pop(m)
        pending.pop(m)
        steal_at[m] = None
        steal_now.discard(m)
        try:
            prog.throw(StealRequested())
        except MemberPaused as paused:
            conn.send(("paused", m, paused.checkpoint.to_json(), k[m], charged[m]))
        except StopIteration as ended:  # pragma: no cover - defensive
            finish(m, ended.value)

    def checkpoint_member(m: int) -> None:
        """Local cut + resume: ship a respawn baseline, keep running."""
        prog = programs[m]
        try:
            prog.throw(StealRequested())
            return  # pragma: no cover - defensive (cut always pauses)
        except MemberPaused as paused:
            payload = paused.checkpoint.to_json()
        conn.send(("checkpoint", m, payload, k[m], charged[m]))
        since_ckpt[m] = 0
        # Resume from the deserialized wire form -- exactly what a
        # migrated shard would run, so this path exercises the same
        # contract.  The bookkeeping prefix re-evaluates the stored
        # designs (warm cache hits) and is never charged.
        wire = MemberCheckpoint.from_json(payload)
        prog2 = members[m].search_program(spec, evaluator.compiled, resume=wire)
        try:
            request = next(prog2)
            while request.bookkeeping:
                request = prog2.send(execute_request(evaluator, request))
        except StopIteration as ended:  # pragma: no cover - defensive
            finish(m, ended.value)
            return
        programs[m] = prog2
        pending[m] = request

    def serve(m: int, request: EvalRequest) -> None:
        results = execute_request(evaluator, request)
        try:
            pending[m] = programs[m].send(results)
        except StopIteration as ended:
            finish(m, ended.value)

    def handle(msg: Tuple[Any, ...]) -> None:
        nonlocal stop
        if msg[0] == "assign":
            _, m, ckpt_json, k0, charged0, at = msg
            start_member(m, ckpt_json, k0, charged0, at)
        elif msg[0] == "steal":
            steal_now.add(msg[1])
        elif msg[0] == "stop":
            stop = True

    def await_verdict(m: int, slot: int) -> str:
        """Block for ``m``'s verdict; service other traffic meanwhile."""
        while True:
            msg = conn.recv()
            if msg[0] == "verdict" and msg[1] == m and msg[2] == slot:
                return msg[3]
            handle(msg)

    for row in assigns:
        start_member(*row)

    while True:
        while conn.poll():
            handle(conn.recv())
        if stop:
            break
        if not programs:
            if not idle_sent:
                conn.send(("idle", shard_id))
                idle_sent = True
            handle(conn.recv())
            continue
        idle_sent = False

        # One local lockstep round: serve each live member once, in
        # member-index order (the racing order within the shard).
        for m in sorted(programs):
            if m not in programs:
                continue
            request = pending[m]
            resumable = bool(getattr(members[m], "resumable", False))
            if request.moves is not None and resumable:
                at = steal_at.get(m)
                if m in steal_now or (at is not None and k[m] >= at):
                    pause_member(m)
                    continue
                if ckpt_every and since_ckpt[m] >= ckpt_every:
                    checkpoint_member(m)
                    if m not in programs:
                        continue
                    request = pending[m]
            if request.bookkeeping:
                serve(m, request)
                continue
            if metered:
                conn.send(("ask", m, k[m], request.size, request.moves is not None))
                verdict = await_verdict(m, k[m])
                k[m] += 1
                if verdict == "cut":
                    try:
                        pending[m] = programs[m].throw(SharedBudgetExhausted())
                    except StopIteration as ended:
                        finish(m, ended.value)
                    continue
            else:
                k[m] += 1
            charged[m] += request.size
            since_ckpt[m] += request.size
            serve(m, request)
        ship_rows()

    ship_rows()
    counters = evaluator.counters()
    busy = time.process_time() - busy0
    evaluator.close()
    conn.send(("final", shard_id, counters, busy))
    conn.close()

# ======================================================================
# parent coordinator
# ======================================================================
@dataclass
class _MemberState:
    """The parent's ledger for one racing member."""

    index: int
    resumable: bool
    owner: int
    status: str = "running"  # running | done | failed
    k: int = 0  # next decision slot (the logical budget clock)
    charged: int = 0
    ckpt: Optional[str] = None
    ckpt_k: int = 0
    ckpt_charged: int = 0
    result: Optional["DesignResult"] = None
    respawns: int = 0
    steal_to: Optional[int] = None  # dynamic-steal destination
    schedule: List[dict] = field(default_factory=list)  # pending steal entries


@dataclass
class _ShardHandle:
    """The parent's handle on one worker process."""

    id: int
    proc: Any
    conn: "Connection"
    alive: bool = True
    removing: bool = False
    members: Set[int] = field(default_factory=set)
    counters: Optional[EngineCounters] = None
    busy_seconds: float = 0.0


class DistributedPortfolioRunner:
    """Races a strategy portfolio across sharded worker processes.

    Construction mirrors :class:`~repro.search.portfolio.PortfolioRunner`
    (same members/budget/engine knobs) plus the distribution knobs:

    Parameters
    ----------
    shards:
        Worker process count.  Members are assigned round-robin by
        index; shards left without members steal work (elastic mode)
        or idle until assigned.
    mode:
        ``"replay"`` (default) -- deterministic: budget decisions in
        lockstep logical order, steals only from ``steal_schedule``,
        wall-clock budgets rejected.  ``"elastic"`` -- arrival-order
        decisions, wall-clock budgets allowed, idle shards steal work
        dynamically, ``elastic_plan`` churn applied.
    steal_schedule:
        Deterministic steal events: ``{"member": m, "at": k, "to": s}``
        cuts member ``m`` at its first move request once its logical
        clock reaches ``k`` and resumes it on shard ``s`` (``"to"``
        optional in elastic mode: least-loaded shard).
    elastic_plan:
        Elastic-mode churn events, applied when the ``n``-th member
        finishes: ``{"after_done": n, "action": "add"}`` spawns a
        fresh worker, ``{"after_done": n, "action": "remove",
        "shard": s}`` drains and stops shard ``s`` gracefully,
        ``{"after_done": n, "action": "kill", "shard": s}`` kills it
        outright (members respawn from their last checkpoints).
    checkpoint_every:
        Charged evaluations a member runs between periodic checkpoint
        ships (``0`` disables; the respawn baseline is then only ever
        a steal checkpoint).
    respawn_limit:
        Times one member may respawn after shard deaths before it is
        marked failed.
    race_timeout:
        Wall-clock watchdog: the race aborts (workers terminated,
        ``RuntimeError``) if it exceeds this many seconds.  ``None``
        disables.
    """

    def __init__(
        self,
        members: Sequence[Any],
        budget: Optional[Budget] = None,
        shards: int = 2,
        mode: str = "replay",
        use_cache: bool = True,
        jobs: int = 1,
        max_cache_entries: Optional[int] = -1,
        use_delta: bool = True,
        engine_core: str = "array",
        cache_store: str = "memory",
        cache_path: Optional[str] = None,
        steal_schedule: Optional[Sequence[dict]] = None,
        elastic_plan: Optional[Sequence[dict]] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        respawn_limit: int = DEFAULT_RESPAWN_LIMIT,
        race_timeout: Optional[float] = 600.0,
    ):
        if not members:
            raise ValueError("a portfolio needs at least one member")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if mode not in ("replay", "elastic"):
            raise ValueError(f"unknown mode {mode!r} (replay or elastic)")
        budget_ = budget if budget is not None else Budget()
        if mode == "replay":
            if budget_.max_seconds is not None:
                raise ValueError(
                    "replay mode cannot meter wall-clock budgets "
                    "deterministically; use elastic mode for max_seconds"
                )
            if elastic_plan:
                raise ValueError(
                    "elastic_plan requires elastic mode; replay-mode churn "
                    "is expressed as a steal_schedule"
                )
        for entry in steal_schedule or ():
            if "member" not in entry or "at" not in entry:
                raise ValueError(f"steal_schedule entry needs member/at: {entry}")
            if mode == "replay" and "to" not in entry:
                raise ValueError(f"replay steal_schedule entry needs 'to': {entry}")
        for entry in elastic_plan or ():
            if "after_done" not in entry or entry.get("action") not in (
                "add", "remove", "kill",
            ):
                raise ValueError(f"bad elastic_plan entry: {entry}")
        self.members = list(members)
        self.budget = budget_
        self.shards = shards
        self.mode = mode
        self.use_cache = use_cache
        self.jobs = jobs  # accepted for signature parity; shards are the parallelism
        self.max_cache_entries = max_cache_entries
        self.use_delta = use_delta
        self.engine_core = engine_core
        self.cache_store = cache_store
        self.cache_path = cache_path
        self.steal_schedule = [dict(e) for e in (steal_schedule or ())]
        self.elastic_plan = sorted(
            (dict(e) for e in (elastic_plan or ())), key=lambda e: e["after_done"]
        )
        self.checkpoint_every = checkpoint_every
        self.respawn_limit = respawn_limit
        self.race_timeout = race_timeout

    # ------------------------------------------------------------------
    @property
    def _metered(self) -> bool:
        """Whether budget decisions gate individual requests."""
        return (
            self.budget.max_evaluations is not None
            or self.budget.max_seconds is not None
        )

    def run(self, spec: "DesignSpec") -> DistributedPortfolioResult:
        """Race every member on ``spec`` across the shard fleet."""
        coordinator = _Coordinator(self, spec)
        return coordinator.run()


class _Coordinator:
    """One race's parent-side state machine (single-use)."""

    def __init__(self, runner: DistributedPortfolioRunner, spec: "DesignSpec"):
        self.runner = runner
        self.spec = spec
        self.names = _unique_names(runner.members)
        self.ctx = mp.get_context("fork")
        self.states: List[_MemberState] = []
        self.shards: Dict[int, _ShardHandle] = {}
        self.next_shard_id = 0
        self.pending_asks: Dict[int, Tuple[int, int, bool]] = {}
        self.total_charged = 0
        self.budget_cut = False
        self.done_count = 0
        self.respawns = 0
        self.events: List[ShardEvent] = []
        self.plan = list(runner.elastic_plan)
        self.budgetv: Budget = runner.budget
        self.started = 0.0
        self.evaluator: Optional[Any] = None  # the rw store writer

    # -- helpers -------------------------------------------------------
    def _elapsed(self) -> float:
        return time.perf_counter() - self.started

    def _event(self, kind: str, shard: int, member: int = -1, detail: str = "") -> None:
        self.events.append(
            ShardEvent(kind, shard, member, detail, round(self._elapsed(), 6))
        )

    def _worker_cfg(self) -> Dict[str, Any]:
        from repro.engine.cache import DEFAULT_MAX_ENTRIES

        runner = self.runner
        max_entries = (
            DEFAULT_MAX_ENTRIES
            if runner.max_cache_entries == -1
            else runner.max_cache_entries
        )
        return {
            "use_cache": runner.use_cache,
            "max_cache_entries": max_entries,
            "use_delta": runner.use_delta,
            "engine_core": runner.engine_core,
            "cache_store": runner.cache_store,
            "cache_path": runner.cache_path,
            "metered": runner._metered,
            "checkpoint_every": runner.checkpoint_every,
        }

    def _spawn(
        self, assigns: List[Tuple[int, Optional[str], int, int, Optional[int]]]
    ) -> _ShardHandle:
        shard_id = self.next_shard_id
        self.next_shard_id += 1
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_shard_main,
            args=(
                shard_id, child_conn, self.spec, self.runner.members,
                assigns, self._worker_cfg(),
            ),
            daemon=True,
        )
        # Freeze the heap across the fork: the worker inherits the
        # whole parent heap (caller state, earlier results) copy-on-
        # write, and its first full gc pass would otherwise fault in
        # every inherited page just to scan refcounts -- system CPU
        # billed to the shard's busy time.  Frozen objects are exempt
        # from the child's collector; the parent unfreezes right away.
        gc.freeze()
        try:
            proc.start()
        finally:
            gc.unfreeze()
        child_conn.close()
        handle = _ShardHandle(
            id=shard_id, proc=proc, conn=parent_conn,
            members={m for m, *_ in assigns},
        )
        self.shards[shard_id] = handle
        self._event("start", shard_id, detail=f"members={sorted(handle.members)}")
        return handle

    def _next_steal_at(self, member: int) -> Optional[int]:
        entries = self.states[member].schedule
        return entries[0]["at"] if entries else None

    def _assign(
        self, shard: _ShardHandle, state: _MemberState, ckpt: Optional[str]
    ) -> None:
        state.owner = shard.id
        shard.members.add(state.index)
        shard.conn.send((
            "assign", state.index, ckpt, state.k, state.charged,
            self._next_steal_at(state.index),
        ))
        self._event("assign", shard.id, state.index)

    def _least_loaded(self, exclude: Set[int] = frozenset()) -> Optional[_ShardHandle]:
        candidates = [
            s for s in self.shards.values()
            if s.alive and not s.removing and s.id not in exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (len(s.members), s.id))

    # -- message handling ----------------------------------------------
    def _handle(self, shard: _ShardHandle, msg: Tuple[Any, ...]) -> None:
        kind = msg[0]
        if kind == "ask":
            _, m, slot, size, is_moves = msg
            self.pending_asks[m] = (slot, size, is_moves)
            if self.runner.mode == "elastic":
                self._decide(self.states[m])
        elif kind == "done":
            _, m, result, k, charged = msg
            state = self.states[m]
            state.status = "done"
            state.result = result
            state.k = k
            if not self.runner._metered:
                self.total_charged += charged - state.charged
                state.charged = charged
            shard.members.discard(m)
            self.pending_asks.pop(m, None)
            self._event("done", shard.id, m)
            self.done_count += 1
            self._apply_plan()
        elif kind == "paused":
            _, m, ckpt, k, charged = msg
            state = self.states[m]
            state.ckpt = ckpt
            state.ckpt_k = state.k = k
            if not self.runner._metered:
                self.total_charged += charged - state.charged
                state.charged = charged
            state.ckpt_charged = state.charged
            shard.members.discard(m)
            self._migrate(shard, state)
        elif kind == "checkpoint":
            _, m, ckpt, k, charged = msg
            state = self.states[m]
            state.ckpt = ckpt
            state.ckpt_k = k
            if not self.runner._metered:
                self.total_charged += charged - state.charged
                state.charged = charged
            state.ckpt_charged = charged
            self._event("checkpoint", shard.id, m)
        elif kind == "idle":
            self._on_idle(shard)
        elif kind == "rows":
            if self.evaluator is not None:
                self.evaluator.absorb_store_rows(msg[2])
        elif kind == "final":
            _, _, counters, busy = msg
            shard.counters = counters
            shard.busy_seconds = busy

    def _migrate(self, source: _ShardHandle, state: _MemberState) -> None:
        """Reassign a paused member to its steal destination."""
        target: Optional[_ShardHandle] = None
        if state.steal_to is not None:
            target = self.shards.get(state.steal_to)
            state.steal_to = None
        elif state.schedule and state.ckpt_k >= state.schedule[0]["at"]:
            entry = state.schedule.pop(0)
            if "to" in entry:
                target = self.shards.get(entry["to"])
        if target is None or not target.alive or target.removing:
            target = self._least_loaded(exclude={source.id})
        if target is None:  # pragma: no cover - defensive (source stays alive)
            target = source
        self._event("steal", target.id, state.index, detail=f"from={source.id}")
        self._assign(target, state, state.ckpt)

    def _on_idle(self, shard: _ShardHandle) -> None:
        """A shard ran out of members: stop it if removing, else steal."""
        if shard.removing and not shard.members:
            shard.conn.send(("stop",))
            shard.removing = False
            self._event("remove", shard.id)
            return
        if self.runner.mode != "elastic" or shard.removing:
            return
        victims = [
            s for s in self.shards.values()
            if s.alive and s.id != shard.id and len(s.members) >= 2
        ]
        if not victims:
            return
        victim = max(victims, key=lambda s: (len(s.members), -s.id))
        live = [
            m for m in sorted(victim.members)
            if self.states[m].status == "running"
            and self.states[m].resumable
            and self.states[m].steal_to is None
        ]
        if not live:
            return
        self.states[live[0]].steal_to = shard.id
        victim.conn.send(("steal", live[0]))

    # -- budget decisions ----------------------------------------------
    def _decide(self, state: _MemberState) -> None:
        ask = self.pending_asks.get(state.index)
        if ask is None or ask[0] != state.k:
            return
        slot, size, is_moves = self.pending_asks.pop(state.index)
        seconds = self._elapsed() if self.runner.mode == "elastic" else 0.0
        if is_moves and _over_budget(self.budgetv, self.total_charged, size, seconds):
            verdict = "cut"
            self.budget_cut = True
        else:
            verdict = "grant"
            self.total_charged += size
            state.charged += size
        state.k += 1
        self.shards[state.owner].conn.send(("verdict", state.index, slot, verdict))

    def _drain_decisions(self) -> None:
        """Replay mode: decide asks in global (k, member) lockstep order."""
        if self.runner.mode != "replay":
            return
        while True:
            live = [s for s in self.states if s.status == "running"]
            if not live:
                return
            head = min(live, key=lambda s: (s.k, s.index))
            ask = self.pending_asks.get(head.index)
            if ask is None or ask[0] != head.k:
                return
            self._decide(head)

    # -- churn and death -----------------------------------------------
    def _apply_plan(self) -> None:
        while self.plan and self.plan[0]["after_done"] <= self.done_count:
            entry = self.plan.pop(0)
            action = entry["action"]
            if action == "add":
                handle = self._spawn([])
                self._event("add", handle.id)
            elif action in ("remove", "kill"):
                shard = self.shards.get(entry.get("shard", -1))
                if shard is None or not shard.alive:
                    continue
                if action == "kill":
                    shard.proc.kill()
                    # death handling respawns its members
                else:
                    shard.removing = True
                    for m in sorted(shard.members):
                        state = self.states[m]
                        if state.status == "running" and state.resumable:
                            state.steal_to = None
                            shard.conn.send(("steal", m))
                    if not shard.members:
                        shard.conn.send(("stop",))
                        shard.removing = False
                        self._event("remove", shard.id)

    def _on_death(self, shard: _ShardHandle) -> None:
        """A worker died without its final message: respawn its members."""
        # Drain whatever it managed to send first (checkpoints matter).
        try:
            while shard.conn.poll():
                self._handle(shard, shard.conn.recv())
        except (EOFError, OSError):
            pass
        shard.alive = False
        shard.conn.close()
        shard.proc.join(timeout=5.0)
        if shard.counters is not None and not shard.members:
            return  # clean exit: the final message beat the sentinel
        self._event("dead", shard.id, detail=f"members={sorted(shard.members)}")
        orphans = [
            self.states[m] for m in sorted(shard.members)
            if self.states[m].status == "running"
        ]
        shard.members.clear()
        if not orphans:
            return
        assigns: List[Tuple[int, Optional[str], int, int, Optional[int]]] = []
        for state in orphans:
            self.pending_asks.pop(state.index, None)
            # Refund everything charged since the respawn baseline --
            # that work died with the shard and will be re-charged as
            # the resumed member replays it.
            self.total_charged -= state.charged - state.ckpt_charged
            state.charged = state.ckpt_charged
            state.k = state.ckpt_k
            state.respawns += 1
            self.respawns += 1
            if state.respawns > self.runner.respawn_limit:
                state.status = "failed"
                self._event("failed", shard.id, state.index,
                            detail="respawn limit")
                continue
            assigns.append((
                state.index, state.ckpt, state.k, state.charged,
                self._next_steal_at(state.index),
            ))
        if not assigns:
            return
        replacement = self._spawn(assigns)
        for m, *_ in assigns:
            self.states[m].owner = replacement.id
            self._event("respawn", replacement.id, m)

    # -- main loop ------------------------------------------------------
    def run(self) -> DistributedPortfolioResult:
        from multiprocessing.connection import wait as mpwait

        runner = self.runner
        self.started = time.perf_counter()

        # Seed the member ledgers; pre-split the steal schedule.
        for index, member in enumerate(runner.members):
            self.states.append(_MemberState(
                index=index,
                resumable=bool(getattr(member, "resumable", False)),
                owner=-1,
            ))
        for entry in runner.steal_schedule:
            m = entry["member"]
            if 0 <= m < len(self.states) and self.states[m].resumable:
                self.states[m].schedule.append(dict(entry))
        for state in self.states:
            state.schedule.sort(key=lambda e: e["at"])

        # Round-robin initial assignment, then workers, then the store
        # writer (opened only after forking so no sqlite handle crosses
        # the fork).
        initial: Dict[int, List[Tuple[int, Optional[str], int, int, Optional[int]]]] = {
            s: [] for s in range(runner.shards)
        }
        for index in range(len(runner.members)):
            initial[index % runner.shards].append(
                (index, None, 0, 0, self._next_steal_at(index))
            )
        for s in range(runner.shards):
            handle = self._spawn(initial[s])
            for index, *_ in initial[s]:
                self.states[index].owner = handle.id
        if runner.cache_store == "sqlite":
            from repro.core.strategy import DesignEvaluator

            self.evaluator = DesignEvaluator(
                self.spec,
                use_cache=True,
                cache_store="sqlite",
                cache_path=runner.cache_path,
                use_delta=False,
            )

        try:
            self._loop(mpwait)
            outcomes = self._finalize(mpwait)
        finally:
            for shard in self.shards.values():
                if shard.proc.is_alive():
                    shard.proc.terminate()
                shard.proc.join(timeout=5.0)
            if self.evaluator is not None:
                self.evaluator.close()

        totals = _zero_counters()
        shard_ids: List[int] = []
        shard_counters: List[EngineCounters] = []
        shard_busy: List[float] = []
        for shard in sorted(self.shards.values(), key=lambda s: s.id):
            if shard.counters is None:
                continue
            shard_ids.append(shard.id)
            shard_counters.append(shard.counters)
            shard_busy.append(shard.busy_seconds)
            totals = totals + shard.counters
        if self.evaluator is not None:
            totals = totals + self.evaluator.counters()

        result = DistributedPortfolioResult(
            members=outcomes,
            evaluations=totals.evaluations,
            cache_hits=totals.cache_hits,
            cache_misses=totals.cache_misses,
            delta_hits=totals.delta_hits,
            delta_fallbacks=totals.delta_fallbacks,
            store_hits=totals.store_hits,
            store_misses=totals.store_misses,
            store_writes=totals.store_writes,
            budget_cut=self.budget_cut,
            shards=runner.shards,
            mode=runner.mode,
            shard_ids=shard_ids,
            shard_counters=shard_counters,
            shard_busy_seconds=shard_busy,
            events=self.events,
            respawns=self.respawns,
        )
        result.winner_index = _pick_winner(result.members)
        result.runtime_seconds = time.perf_counter() - self.started
        return result

    def _loop(self, mpwait: Any) -> None:
        while any(s.status == "running" for s in self.states):
            if (
                self.runner.race_timeout is not None
                and self._elapsed() > self.runner.race_timeout
            ):
                raise RuntimeError(
                    f"distributed race exceeded {self.runner.race_timeout}s"
                )
            sources: Dict[Any, _ShardHandle] = {}
            for shard in self.shards.values():
                if shard.alive:
                    sources[shard.conn] = shard
                    sources[shard.proc.sentinel] = shard
            if not sources:  # pragma: no cover - defensive
                raise RuntimeError("all shards died; no members can finish")
            for ready in mpwait(list(sources), timeout=1.0):
                shard = sources[ready]
                if not shard.alive:
                    continue
                if ready is shard.conn:
                    try:
                        while shard.conn.poll():
                            self._handle(shard, shard.conn.recv())
                    except (EOFError, OSError):
                        self._on_death(shard)
                elif not shard.proc.is_alive():
                    if shard.counters is None:
                        self._on_death(shard)
                    else:
                        shard.alive = False
            self._drain_decisions()

    def _finalize(self, mpwait: Any) -> List[PortfolioMemberOutcome]:
        """Stop the fleet, collect finals, build member outcomes."""
        for shard in self.shards.values():
            if shard.alive and shard.counters is None:
                try:
                    shard.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.perf_counter() + 30.0
        while (
            any(s.alive and s.counters is None for s in self.shards.values())
            and time.perf_counter() < deadline
        ):
            sources = {
                s.conn: s
                for s in self.shards.values()
                if s.alive and s.counters is None
            }
            for ready in mpwait(list(sources), timeout=1.0):
                shard = sources[ready]
                try:
                    while shard.conn.poll():
                        self._handle(shard, shard.conn.recv())
                except (EOFError, OSError):
                    shard.alive = False
                if shard.counters is not None:
                    shard.alive = False

        outcomes: List[PortfolioMemberOutcome] = []
        for state in self.states:
            result = state.result
            if result is None:  # failed member: an invalid placeholder
                from repro.core.strategy import DesignResult

                result = DesignResult(self.names[state.index], valid=False)
            outcome = PortfolioMemberOutcome(
                name=self.names[state.index],
                index=state.index,
                result=result,
                evaluations_served=state.charged,
                rounds=state.k,
            )
            if result.valid and state.charged > 0:
                result.evaluations = state.charged
            outcomes.append(outcome)
        return outcomes
