"""Search budgets: composable stopping conditions for any search loop.

A :class:`Budget` is a pure description of *how much* searching is
allowed -- proposal steps, engine evaluations, wall-clock seconds,
patience (steps since the incumbent last improved).  It holds no
mutable state: the loop tracks its own progress counters and asks the
budget for a stop verdict before every step, which is what makes a
budgeted run resumable (a :class:`~repro.search.checkpoint.SearchCheckpoint`
stores the counters, and the continuation keeps counting from there).

Budgets compose with ``&``: the combined budget stops as soon as any
component would (the per-limit minimum).  ``Budget()`` is the identity
-- unlimited on every axis -- so strategies can unconditionally combine
their own caps with an optional user budget.

Determinism: step, evaluation and patience limits cut a seeded search
at an exact, reproducible point.  ``max_seconds`` is inherently
machine-dependent; seeded byte-identical equivalence across runs is
only guaranteed for budgets that do not use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class SharedBudgetExhausted(Exception):
    """Thrown *into* a search program when a budget shared between
    racing portfolio members runs out.

    The :class:`~repro.search.loop.SearchLoop` body catches it at its
    evaluation yield and finishes normally with the incumbent found so
    far (stop reason ``shared-budget``), so a multi-phase strategy
    program unwinds gracefully: each remaining phase is cut at its
    first evaluation request and the program still returns a complete
    result.
    """


class StealRequested(Exception):
    """Thrown *into* a search program to pause it for migration.

    The distributed race's work-stealing cut: a shard driver throws
    this at a *move* evaluation yield (move requests only ever
    originate inside a :class:`~repro.search.loop.SearchLoop`), the
    loop stops cleanly (stop reason ``steal``) and raises
    :class:`~repro.search.checkpoint.MemberPaused` carrying its
    resumable checkpoint instead of returning.  Strategy pipelines
    annotate the in-flight exception with their phase position, so the
    member can be reshipped to another shard and resumed exactly where
    it was cut (the pinned cut+resume byte-identity).
    """


def _min_limit(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """Tighter of two limits where ``None`` means unlimited."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


@dataclass(frozen=True)
class BudgetProgress:
    """The progress counters a budget is checked against.

    Attributes
    ----------
    steps:
        Completed proposal steps (one accept/reject decision each).
    evaluations:
        Engine evaluations the search consumed (a neighbourhood step
        consumes one per generated move).
    seconds:
        Wall-clock seconds spent searching, including time recorded by
        earlier runs when resuming from a checkpoint.
    stall:
        Steps since the incumbent last improved.
    """

    steps: int = 0
    evaluations: int = 0
    seconds: float = 0.0
    stall: int = 0


@dataclass(frozen=True)
class Budget:
    """Composable stopping conditions; ``None`` means unlimited.

    Attributes
    ----------
    max_steps:
        Proposal-step cap (a steepest-descent iteration or one
        Metropolis proposal is one step).
    max_evaluations:
        Engine-evaluation cap, checked *before* each step: a step whose
        neighbourhood would start at or beyond the cap does not run.
    max_seconds:
        Wall-clock cap (see the determinism note in the module doc).
    patience:
        Stop after this many consecutive steps without an incumbent
        improvement.
    """

    max_steps: Optional[int] = None
    max_evaluations: Optional[int] = None
    max_seconds: Optional[float] = None
    patience: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_steps", "max_evaluations", "max_seconds", "patience"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative or None, got {value}")

    def __and__(self, other: "Budget") -> "Budget":
        """The combined budget: stops when either component would."""
        return Budget(
            max_steps=_min_limit(self.max_steps, other.max_steps),
            max_evaluations=_min_limit(self.max_evaluations, other.max_evaluations),
            max_seconds=_min_limit(self.max_seconds, other.max_seconds),
            patience=_min_limit(self.patience, other.patience),
        )

    @staticmethod
    def combine(*budgets: Optional["Budget"]) -> "Budget":
        """Fold any number of (possibly ``None``) budgets with ``&``."""
        combined = Budget()
        for budget in budgets:
            if budget is not None:
                combined = combined & budget
        return combined

    @property
    def unlimited(self) -> bool:
        """Whether this budget can never stop a search."""
        return (
            self.max_steps is None
            and self.max_evaluations is None
            and self.max_seconds is None
            and self.patience is None
        )

    def stop_reason(self, progress: BudgetProgress) -> Optional[str]:
        """Why the search must stop now, or ``None`` to keep going."""
        if self.max_steps is not None and progress.steps >= self.max_steps:
            return "budget:steps"
        if (
            self.max_evaluations is not None
            and progress.evaluations >= self.max_evaluations
        ):
            return "budget:evaluations"
        if self.max_seconds is not None and progress.seconds >= self.max_seconds:
            return "budget:seconds"
        if self.patience is not None and progress.stall >= self.patience:
            return "budget:patience"
        return None
