"""The unified search kernel.

One search loop serves every optimization in the repository: a
:class:`~repro.search.proposers.Proposer` generates moves, the shared
evaluation engine prices them, an
:class:`~repro.search.acceptors.Acceptor` decides where the walk goes,
a :class:`~repro.search.budget.Budget` says when to stop, and a
:class:`~repro.search.checkpoint.SearchCheckpoint` makes any search
resumable.  :class:`~repro.search.portfolio.PortfolioRunner` races
several configured strategies over one shared engine in deterministic
lockstep.
"""

from repro.search.acceptors import (
    AcceptAny,
    Acceptor,
    GreedyAcceptor,
    MetropolisAcceptor,
    ThresholdAcceptor,
)
from repro.search.budget import (
    Budget,
    BudgetProgress,
    SharedBudgetExhausted,
    StealRequested,
)
from repro.search.checkpoint import (
    MemberCheckpoint,
    MemberPaused,
    SearchCheckpoint,
    design_from_dict,
    design_to_dict,
)
from repro.search.distributed import (
    DistributedPortfolioResult,
    DistributedPortfolioRunner,
    ShardEvent,
)
from repro.search.loop import (
    EvalRequest,
    SearchEvent,
    SearchLoop,
    SearchOutcome,
    drive,
    execute_request,
)
from repro.search.portfolio import (
    PortfolioMemberOutcome,
    PortfolioResult,
    PortfolioRunner,
    first_valid,
)
from repro.search.proposers import (
    NeighbourhoodProposer,
    Proposer,
    RandomMoveProposer,
    generate_moves,
    random_move,
    schedule_neighbours,
    select_candidates,
)
from repro.search.stats import SearchStats

__all__ = [
    "AcceptAny",
    "Acceptor",
    "Budget",
    "BudgetProgress",
    "DistributedPortfolioResult",
    "DistributedPortfolioRunner",
    "EvalRequest",
    "GreedyAcceptor",
    "MemberCheckpoint",
    "MemberPaused",
    "MetropolisAcceptor",
    "NeighbourhoodProposer",
    "PortfolioMemberOutcome",
    "PortfolioResult",
    "PortfolioRunner",
    "Proposer",
    "RandomMoveProposer",
    "SearchCheckpoint",
    "SearchEvent",
    "SearchLoop",
    "SearchOutcome",
    "SearchStats",
    "ShardEvent",
    "SharedBudgetExhausted",
    "StealRequested",
    "ThresholdAcceptor",
    "design_from_dict",
    "design_to_dict",
    "drive",
    "execute_request",
    "first_valid",
    "generate_moves",
    "random_move",
    "schedule_neighbours",
    "select_candidates",
]
