"""Heterogeneous distributed architecture: nodes plus a TDMA bus.

The paper's platform (slide 4) is a set of heterogeneous processing
nodes -- each with CPU, memory, possibly an ASIC, and a communication
controller -- connected by a TTP-style TDMA bus.  Heterogeneity is
expressed through per-process WCET tables (see
:class:`repro.model.process_graph.Process`), so a
:class:`Node` itself only carries identity and descriptive metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.tdma.bus import Slot, TdmaBus
from repro.utils.errors import InvalidModelError


@dataclass(frozen=True)
class Node:
    """One processing node of the distributed architecture.

    Attributes
    ----------
    id:
        Unique node identifier (e.g. ``"N1"``).
    name:
        Human-readable label; defaults to ``id``.
    kind:
        Free-form descriptor of the node class (``"cpu"``, ``"asic"``,
        ...); informational only -- mapping restrictions come from
        process WCET tables.
    speed:
        Relative processing speed of the node; ``1.0`` is the reference
        speed.  A process of base execution time ``w`` runs in roughly
        ``w / speed`` time units on this node.  The workload generators
        fold the speed into the per-process WCET tables, so scheduling
        and evaluation never consult it directly -- it is the declared
        source of architecture-level heterogeneity.
    """

    id: str
    name: str = ""
    kind: str = "cpu"
    speed: float = 1.0

    def __post_init__(self) -> None:
        if not self.id:
            raise InvalidModelError("node id must be non-empty")
        if not self.speed > 0 or self.speed != self.speed:
            raise InvalidModelError(
                f"node {self.id!r} speed must be positive, got {self.speed}"
            )
        if not self.name:
            object.__setattr__(self, "name", self.id)


class Architecture:
    """Processing nodes connected by a TDMA bus.

    Parameters
    ----------
    nodes:
        The processing nodes, in TDMA slot order unless ``bus`` is
        given explicitly.
    bus:
        The TDMA round layout.  When omitted, a uniform bus is built
        with ``slot_length`` and ``slot_capacity`` per node in the
        order of ``nodes``.
    slot_length, slot_capacity:
        Parameters of the generated uniform bus (ignored when ``bus``
        is provided).
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        bus: Optional[TdmaBus] = None,
        slot_length: int = 4,
        slot_capacity: int = 32,
    ):
        if not nodes:
            raise InvalidModelError("architecture needs at least one node")
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.id in self._nodes:
                raise InvalidModelError(f"duplicate node id {node.id!r}")
            self._nodes[node.id] = node
        if bus is None:
            bus = TdmaBus(
                [Slot(node.id, slot_length, slot_capacity) for node in nodes]
            )
        bus_nodes = set(bus.node_ids())
        arch_nodes = set(self._nodes)
        if bus_nodes != arch_nodes:
            raise InvalidModelError(
                "TDMA bus slots must cover exactly the architecture nodes; "
                f"bus has {sorted(bus_nodes)}, architecture has "
                f"{sorted(arch_nodes)}"
            )
        self.bus = bus

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def node(self, node_id: str) -> Node:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise InvalidModelError(f"unknown node {node_id!r}") from None

    def speed_of(self, node_id: str) -> float:
        """The relative processing speed of ``node_id``."""
        return self.node(node_id).speed

    @property
    def is_heterogeneous(self) -> bool:
        """Whether any node deviates from the reference speed."""
        return any(node.speed != 1.0 for node in self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Architecture(nodes={self.node_ids}, bus={self.bus!r})"
