"""Application and architecture models.

This subpackage defines the paper's input model:

* :class:`~repro.model.process_graph.Process` -- a node of a process
  graph with a per-processor worst-case execution time (WCET) table;
  the table's keys double as the set of processors the process may be
  mapped to.
* :class:`~repro.model.process_graph.Message` -- a directed data
  dependency between two processes carrying ``size`` bytes over the
  TDMA bus when the endpoints are mapped to different nodes.
* :class:`~repro.model.process_graph.ProcessGraph` -- an acyclic
  directed graph of processes with its own period and deadline.
* :class:`~repro.model.application.Application` -- a named set of
  process graphs (the paper's existing / current / future
  applications are all ``Application`` instances).
* :class:`~repro.model.architecture.Node` and
  :class:`~repro.model.architecture.Architecture` -- heterogeneous
  processing nodes connected by a TDMA bus.
* :class:`~repro.model.mapping.Mapping` -- an assignment of processes
  to nodes, validated against each process's allowed-node set.
"""

from repro.model.process_graph import Message, Process, ProcessGraph
from repro.model.application import Application
from repro.model.architecture import Architecture, Node
from repro.model.mapping import Mapping

__all__ = [
    "Process",
    "Message",
    "ProcessGraph",
    "Application",
    "Node",
    "Architecture",
    "Mapping",
]
