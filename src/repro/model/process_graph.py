"""Processes, messages and process graphs.

The paper models an application as a set of *process graphs*: directed
acyclic graphs whose nodes are processes and whose edges are messages.
Each process graph has its own period and deadline; each process has a
worst-case execution time (WCET) for every processing node it may be
mapped to; each message has a size in bytes and is transmitted over the
TDMA bus when its endpoints live on different nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Tuple

import networkx as nx

from repro.utils.errors import InvalidModelError


@dataclass(frozen=True)
class Process:
    """A schedulable unit of computation.

    Attributes
    ----------
    id:
        Globally unique identifier (unique across *all* applications in
        a scenario, e.g. ``"existing.g2.P7"``).
    wcet:
        Worst-case execution time (time units) per processing node id.
        The key set is simultaneously the set of nodes the process is
        *allowed* to be mapped to -- heterogeneity and mapping
        restrictions are both expressed by this table.
    name:
        Optional human-readable label; defaults to ``id``.
    """

    id: str
    wcet: TMapping[str, int]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise InvalidModelError("process id must be non-empty")
        if not self.wcet:
            raise InvalidModelError(
                f"process {self.id!r} has no allowed nodes (empty WCET table)"
            )
        for node_id, value in self.wcet.items():
            if value <= 0:
                raise InvalidModelError(
                    f"process {self.id!r} has non-positive WCET {value} on "
                    f"node {node_id!r}"
                )
        if not self.name:
            object.__setattr__(self, "name", self.id)
        # Freeze the table so a Process is safely shareable.
        object.__setattr__(self, "wcet", dict(self.wcet))

    @property
    def allowed_nodes(self) -> Tuple[str, ...]:
        """Node ids the process may be mapped to, in sorted order."""
        return tuple(sorted(self.wcet))

    def wcet_on(self, node_id: str) -> int:
        """WCET on ``node_id``.

        Raises
        ------
        repro.utils.errors.InvalidModelError
            If the process is not allowed on that node.
        """
        try:
            return self.wcet[node_id]
        except KeyError:
            raise InvalidModelError(
                f"process {self.id!r} cannot run on node {node_id!r}"
            ) from None

    @property
    def average_wcet(self) -> float:
        """Mean WCET over all allowed nodes (used by HCP priorities)."""
        return sum(self.wcet.values()) / len(self.wcet)

    @property
    def min_wcet(self) -> int:
        """Smallest WCET over all allowed nodes."""
        return min(self.wcet.values())


@dataclass(frozen=True)
class Message:
    """A directed data dependency carrying ``size`` bytes.

    A message constrains the destination process to start only after
    the message has arrived.  When source and destination are mapped to
    the same node the message is an intra-node communication with zero
    cost; otherwise it must be scheduled into a TDMA slot of the
    sender's node.
    """

    id: str
    src: str
    dst: str
    size: int

    def __post_init__(self) -> None:
        if not self.id:
            raise InvalidModelError("message id must be non-empty")
        if self.src == self.dst:
            raise InvalidModelError(
                f"message {self.id!r} is a self-loop on process {self.src!r}"
            )
        if self.size <= 0:
            raise InvalidModelError(
                f"message {self.id!r} has non-positive size {self.size}"
            )


class ProcessGraph:
    """A directed acyclic graph of processes with a period and deadline.

    Parameters
    ----------
    name:
        Identifier of the graph, unique within its application.
    period:
        Release period in time units; the graph is re-executed every
        ``period`` time units within the system hyperperiod.
    deadline:
        Relative deadline in time units (``0 < deadline <= period``);
        every process of instance ``k`` must finish by
        ``k * period + deadline``.
    """

    def __init__(self, name: str, period: int, deadline: Optional[int] = None):
        if not name:
            raise InvalidModelError("process graph name must be non-empty")
        if period <= 0:
            raise InvalidModelError(
                f"process graph {name!r} has non-positive period {period}"
            )
        if deadline is None:
            deadline = period
        if not 0 < deadline <= period:
            raise InvalidModelError(
                f"process graph {name!r} deadline {deadline} must satisfy "
                f"0 < deadline <= period ({period})"
            )
        self.name = name
        self.period = period
        self.deadline = deadline
        self._graph = nx.DiGraph()
        self._processes: Dict[str, Process] = {}
        self._messages: Dict[str, Message] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_process(self, process: Process) -> Process:
        """Add ``process`` to the graph.

        Raises
        ------
        repro.utils.errors.InvalidModelError
            If a process with the same id already exists.
        """
        if process.id in self._processes:
            raise InvalidModelError(
                f"duplicate process id {process.id!r} in graph {self.name!r}"
            )
        self._processes[process.id] = process
        self._graph.add_node(process.id)
        return process

    def add_message(self, message: Message) -> Message:
        """Add ``message``; both endpoints must already be in the graph.

        Raises
        ------
        repro.utils.errors.InvalidModelError
            If an endpoint is missing, the message id is a duplicate, or
            the edge would create a cycle or a parallel edge.
        """
        if message.id in self._messages:
            raise InvalidModelError(
                f"duplicate message id {message.id!r} in graph {self.name!r}"
            )
        for endpoint in (message.src, message.dst):
            if endpoint not in self._processes:
                raise InvalidModelError(
                    f"message {message.id!r} references unknown process "
                    f"{endpoint!r} in graph {self.name!r}"
                )
        if self._graph.has_edge(message.src, message.dst):
            raise InvalidModelError(
                f"parallel message between {message.src!r} and "
                f"{message.dst!r} in graph {self.name!r}"
            )
        self._graph.add_edge(message.src, message.dst, message=message)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(message.src, message.dst)
            raise InvalidModelError(
                f"message {message.id!r} would create a cycle in graph "
                f"{self.name!r}"
            )
        self._messages[message.id] = message
        return message

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def processes(self) -> List[Process]:
        """All processes, in insertion order."""
        return list(self._processes.values())

    @property
    def messages(self) -> List[Message]:
        """All messages, in insertion order."""
        return list(self._messages.values())

    @property
    def process_ids(self) -> List[str]:
        return list(self._processes)

    def process(self, process_id: str) -> Process:
        """Look up a process by id."""
        try:
            return self._processes[process_id]
        except KeyError:
            raise InvalidModelError(
                f"unknown process {process_id!r} in graph {self.name!r}"
            ) from None

    def message(self, message_id: str) -> Message:
        """Look up a message by id."""
        try:
            return self._messages[message_id]
        except KeyError:
            raise InvalidModelError(
                f"unknown message {message_id!r} in graph {self.name!r}"
            ) from None

    def __contains__(self, process_id: str) -> bool:
        return process_id in self._processes

    def __len__(self) -> int:
        return len(self._processes)

    def predecessors(self, process_id: str) -> List[str]:
        """Ids of direct predecessors of ``process_id``."""
        return list(self._graph.predecessors(process_id))

    def successors(self, process_id: str) -> List[str]:
        """Ids of direct successors of ``process_id``."""
        return list(self._graph.successors(process_id))

    def in_messages(self, process_id: str) -> List[Message]:
        """Messages arriving at ``process_id``."""
        return [
            self._graph.edges[pred, process_id]["message"]
            for pred in self._graph.predecessors(process_id)
        ]

    def out_messages(self, process_id: str) -> List[Message]:
        """Messages leaving ``process_id``."""
        return [
            self._graph.edges[process_id, succ]["message"]
            for succ in self._graph.successors(process_id)
        ]

    def sources(self) -> List[str]:
        """Processes with no predecessors."""
        return [p for p in self._graph.nodes if self._graph.in_degree(p) == 0]

    def sinks(self) -> List[str]:
        """Processes with no successors."""
        return [p for p in self._graph.nodes if self._graph.out_degree(p) == 0]

    def topological_order(self) -> List[str]:
        """A deterministic topological ordering of the process ids."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def as_networkx(self) -> nx.DiGraph:
        """A copy of the underlying networkx graph (edges carry ``message``)."""
        return self._graph.copy()

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def total_min_wcet(self) -> int:
        """Sum of minimum WCETs -- a lower bound on the graph's demand."""
        return sum(p.min_wcet for p in self._processes.values())

    def critical_path_length(self) -> float:
        """Length of the longest path using average WCETs (no comm cost).

        Used as a quick structural statistic and by tests; the HCP
        priority function in :mod:`repro.sched.hcp` computes the full
        communication-aware variant.
        """
        order = self.topological_order()
        dist: Dict[str, float] = {}
        for pid in reversed(order):
            proc = self._processes[pid]
            succ_best = max(
                (dist[s] for s in self._graph.successors(pid)), default=0.0
            )
            dist[pid] = proc.average_wcet + succ_best
        return max(dist.values(), default=0.0)

    def validate(self) -> None:
        """Check structural invariants; raise on violation.

        Verifies acyclicity (re-checked defensively) and that the graph
        is non-empty.
        """
        if not self._processes:
            raise InvalidModelError(f"process graph {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise InvalidModelError(
                f"process graph {self.name!r} contains a cycle"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessGraph({self.name!r}, period={self.period}, "
            f"deadline={self.deadline}, processes={len(self._processes)}, "
            f"messages={len(self._messages)})"
        )


def build_graph(
    name: str,
    period: int,
    deadline: Optional[int],
    processes: Iterable[Process],
    messages: Iterable[Message] = (),
) -> ProcessGraph:
    """Convenience constructor assembling a validated ProcessGraph."""
    graph = ProcessGraph(name, period, deadline)
    for proc in processes:
        graph.add_process(proc)
    for msg in messages:
        graph.add_message(msg)
    graph.validate()
    return graph
