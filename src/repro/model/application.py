"""Applications: named sets of process graphs.

The paper's scenario involves three kinds of applications -- existing,
current and future -- all sharing the same structure: a collection of
process graphs, each with its own period and deadline.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.model.process_graph import Message, Process, ProcessGraph
from repro.utils.errors import InvalidModelError
from repro.utils.timemath import hyperperiod


class Application:
    """A named collection of process graphs.

    Process ids must be unique across the whole application (and, in a
    scenario, across all applications -- the generators guarantee this
    by prefixing ids with the application name).
    """

    def __init__(self, name: str, graphs: Optional[Iterable[ProcessGraph]] = None):
        if not name:
            raise InvalidModelError("application name must be non-empty")
        self.name = name
        self._graphs: Dict[str, ProcessGraph] = {}
        self._process_index: Dict[str, Tuple[ProcessGraph, Process]] = {}
        self._message_index: Dict[str, Tuple[ProcessGraph, Message]] = {}
        if graphs is not None:
            for graph in graphs:
                self.add_graph(graph)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_graph(self, graph: ProcessGraph) -> ProcessGraph:
        """Add a process graph, indexing its processes and messages.

        Raises
        ------
        repro.utils.errors.InvalidModelError
            On duplicate graph names or process/message ids.
        """
        if graph.name in self._graphs:
            raise InvalidModelError(
                f"duplicate graph name {graph.name!r} in application "
                f"{self.name!r}"
            )
        for proc in graph.processes:
            if proc.id in self._process_index:
                raise InvalidModelError(
                    f"duplicate process id {proc.id!r} across graphs of "
                    f"application {self.name!r}"
                )
        for msg in graph.messages:
            if msg.id in self._message_index:
                raise InvalidModelError(
                    f"duplicate message id {msg.id!r} across graphs of "
                    f"application {self.name!r}"
                )
        self._graphs[graph.name] = graph
        for proc in graph.processes:
            self._process_index[proc.id] = (graph, proc)
        for msg in graph.messages:
            self._message_index[msg.id] = (graph, msg)
        return graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def graphs(self) -> List[ProcessGraph]:
        """All process graphs, in insertion order."""
        return list(self._graphs.values())

    def graph(self, name: str) -> ProcessGraph:
        """Look up a process graph by name."""
        try:
            return self._graphs[name]
        except KeyError:
            raise InvalidModelError(
                f"unknown graph {name!r} in application {self.name!r}"
            ) from None

    @property
    def processes(self) -> List[Process]:
        """All processes across all graphs."""
        return [proc for _, proc in self._process_index.values()]

    @property
    def messages(self) -> List[Message]:
        """All messages across all graphs."""
        return [msg for _, msg in self._message_index.values()]

    @property
    def process_count(self) -> int:
        return len(self._process_index)

    @property
    def message_count(self) -> int:
        return len(self._message_index)

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[ProcessGraph]:
        return iter(self._graphs.values())

    def __contains__(self, process_id: str) -> bool:
        return process_id in self._process_index

    def process(self, process_id: str) -> Process:
        """Look up a process by id anywhere in the application."""
        try:
            return self._process_index[process_id][1]
        except KeyError:
            raise InvalidModelError(
                f"unknown process {process_id!r} in application {self.name!r}"
            ) from None

    def graph_of(self, process_id: str) -> ProcessGraph:
        """The graph containing ``process_id``."""
        try:
            return self._process_index[process_id][0]
        except KeyError:
            raise InvalidModelError(
                f"unknown process {process_id!r} in application {self.name!r}"
            ) from None

    def message(self, message_id: str) -> Message:
        """Look up a message by id anywhere in the application."""
        try:
            return self._message_index[message_id][1]
        except KeyError:
            raise InvalidModelError(
                f"unknown message {message_id!r} in application {self.name!r}"
            ) from None

    def graph_of_message(self, message_id: str) -> ProcessGraph:
        """The graph containing ``message_id``."""
        try:
            return self._message_index[message_id][0]
        except KeyError:
            raise InvalidModelError(
                f"unknown message {message_id!r} in application {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def periods(self) -> List[int]:
        """The period of every graph."""
        return [g.period for g in self._graphs.values()]

    def hyperperiod(self) -> int:
        """LCM of the application's graph periods."""
        return hyperperiod(self.periods)

    def total_min_wcet_per_hyperperiod(self, horizon: Optional[int] = None) -> int:
        """Lower bound on the processor demand within ``horizon``.

        Each graph contributes ``total_min_wcet() * horizon / period``
        (its instances within the horizon).  Used by tests and the
        generators to sanity-check utilization.
        """
        if horizon is None:
            horizon = self.hyperperiod()
        total = 0
        for graph in self._graphs.values():
            instances = horizon // graph.period
            total += graph.total_min_wcet() * instances
        return total

    def validate(self) -> None:
        """Validate every graph; raise on the first violation."""
        if not self._graphs:
            raise InvalidModelError(f"application {self.name!r} has no graphs")
        for graph in self._graphs.values():
            graph.validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Application({self.name!r}, graphs={len(self._graphs)}, "
            f"processes={self.process_count}, messages={self.message_count})"
        )


def merge_applications(name: str, applications: Iterable[Application]) -> Application:
    """A new application containing every graph of ``applications``.

    Graph names are prefixed with their source application's name to
    avoid collisions.  Useful when treating "all existing applications"
    as one frozen workload.
    """
    merged = Application(name)
    for app in applications:
        for graph in app.graphs:
            clone = ProcessGraph(
                f"{app.name}.{graph.name}", graph.period, graph.deadline
            )
            for proc in graph.processes:
                clone.add_process(proc)
            for msg in graph.messages:
                clone.add_message(msg)
            merged.add_graph(clone)
    return merged
