"""Process-to-node mappings.

A :class:`Mapping` assigns every process of an application to one of
its allowed nodes.  Mappings are the unit the paper's strategies search
over: the Initial Mapping produces one, and the design transformations
of MH and SA mutate it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping as TMapping, Optional, Tuple

from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.utils.errors import MappingError


class Mapping:
    """An assignment of process ids to node ids.

    The class is a thin validated dictionary: it checks at assignment
    time that the target node exists and is allowed for the process,
    which keeps every strategy honest about mapping restrictions.
    """

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        assignment: Optional[TMapping[str, str]] = None,
    ):
        self.application = application
        self.architecture = architecture
        self._assignment: Dict[str, str] = {}
        if assignment is not None:
            for process_id, node_id in assignment.items():
                self.assign(process_id, node_id)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, process_id: str, node_id: str) -> None:
        """Map ``process_id`` onto ``node_id`` (replacing any previous).

        Raises
        ------
        repro.utils.errors.MappingError
            If the process is unknown, the node is unknown, or the
            node is not in the process's allowed set.
        """
        if process_id not in self.application:
            raise MappingError(
                f"process {process_id!r} is not part of application "
                f"{self.application.name!r}"
            )
        if node_id not in self.architecture:
            raise MappingError(f"unknown node {node_id!r}")
        process = self.application.process(process_id)
        if node_id not in process.wcet:
            raise MappingError(
                f"process {process_id!r} is not allowed on node {node_id!r} "
                f"(allowed: {list(process.allowed_nodes)})"
            )
        self._assignment[process_id] = node_id

    def unassign(self, process_id: str) -> None:
        """Remove the assignment of ``process_id`` if present."""
        self._assignment.pop(process_id, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_of(self, process_id: str) -> str:
        """The node ``process_id`` is mapped to.

        Raises
        ------
        repro.utils.errors.MappingError
            If the process has no assignment yet.
        """
        try:
            return self._assignment[process_id]
        except KeyError:
            raise MappingError(
                f"process {process_id!r} is not mapped"
            ) from None

    def get(self, process_id: str) -> Optional[str]:
        """The node of ``process_id`` or ``None`` when unmapped."""
        return self._assignment.get(process_id)

    def __contains__(self, process_id: str) -> bool:
        return process_id in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._assignment.items())

    def items(self) -> Iterator[Tuple[str, str]]:
        return iter(self._assignment.items())

    def as_dict(self) -> Dict[str, str]:
        """A plain-dict snapshot of the assignment."""
        return dict(self._assignment)

    def wcet_of(self, process_id: str) -> int:
        """WCET of the process on its assigned node."""
        return self.application.process(process_id).wcet_on(
            self.node_of(process_id)
        )

    def is_complete(self) -> bool:
        """Whether every process of the application is mapped."""
        return len(self._assignment) == self.application.process_count

    def validate_complete(self) -> None:
        """Raise unless the mapping covers the whole application."""
        if not self.is_complete():
            missing = [
                p.id
                for p in self.application.processes
                if p.id not in self._assignment
            ]
            raise MappingError(
                f"mapping of application {self.application.name!r} is "
                f"incomplete; unmapped processes: {missing[:5]}"
                + ("..." if len(missing) > 5 else "")
            )

    def processes_on(self, node_id: str) -> Iterable[str]:
        """Ids of processes mapped to ``node_id``."""
        return [p for p, n in self._assignment.items() if n == node_id]

    def copy(self) -> "Mapping":
        """An independent copy sharing application and architecture."""
        out = Mapping(self.application, self.architecture)
        out._assignment = dict(self._assignment)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Mapping({self.application.name!r}, "
            f"{len(self._assignment)}/{self.application.process_count} mapped)"
        )
