"""Static TDMA round layout and timing arithmetic.

A :class:`TdmaBus` is an ordered sequence of :class:`Slot` objects, one
per processing node.  The round repeats back-to-back from time 0; the
``k``-th occurrence of slot ``i`` starts at ``k * round_length +
slot_offset(i)``.

The bus performs no I/O and holds no mutable state -- occupancy lives
in :class:`repro.tdma.schedule.BusSchedule` so many candidate designs
can share one bus description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.utils.errors import InvalidModelError
from repro.utils.intervals import Interval


@dataclass(frozen=True)
class Slot:
    """One node's transmission window within the TDMA round.

    Attributes
    ----------
    node_id:
        The id of the node that owns (transmits in) this slot.
    length:
        Slot duration in time units.
    capacity:
        Payload bytes one occurrence of this slot can carry.  TTP slot
        capacity is proportional to length; the model keeps them
        independent so tests can exercise odd configurations.
    """

    node_id: str
    length: int
    capacity: int

    def __post_init__(self) -> None:
        if not self.node_id:
            raise InvalidModelError("slot node_id must be non-empty")
        if self.length <= 0:
            raise InvalidModelError(
                f"slot for node {self.node_id!r} has non-positive length "
                f"{self.length}"
            )
        if self.capacity <= 0:
            raise InvalidModelError(
                f"slot for node {self.node_id!r} has non-positive capacity "
                f"{self.capacity}"
            )


class TdmaBus:
    """The static TDMA round: ordered slots, one per node.

    Parameters
    ----------
    slots:
        The round layout in transmission order.  Every node of the
        architecture must own exactly one slot.
    """

    def __init__(self, slots: Sequence[Slot]):
        if not slots:
            raise InvalidModelError("TDMA round must contain at least one slot")
        seen: Dict[str, int] = {}
        for idx, slot in enumerate(slots):
            if slot.node_id in seen:
                raise InvalidModelError(
                    f"node {slot.node_id!r} owns more than one TDMA slot"
                )
            seen[slot.node_id] = idx
        self._slots: Tuple[Slot, ...] = tuple(slots)
        self._index_of_node: Dict[str, int] = seen
        offsets: List[int] = []
        cursor = 0
        for slot in self._slots:
            offsets.append(cursor)
            cursor += slot.length
        self._offsets: Tuple[int, ...] = tuple(offsets)
        self._round_length: int = cursor

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def slots(self) -> Tuple[Slot, ...]:
        """Slots in transmission order."""
        return self._slots

    @property
    def round_length(self) -> int:
        """Duration of one TDMA round in time units."""
        return self._round_length

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Slot]:
        return iter(self._slots)

    def slot_of(self, node_id: str) -> Slot:
        """The slot owned by ``node_id``."""
        try:
            return self._slots[self._index_of_node[node_id]]
        except KeyError:
            raise InvalidModelError(
                f"node {node_id!r} owns no TDMA slot"
            ) from None

    def slot_index(self, node_id: str) -> int:
        """Position of ``node_id``'s slot within the round."""
        try:
            return self._index_of_node[node_id]
        except KeyError:
            raise InvalidModelError(
                f"node {node_id!r} owns no TDMA slot"
            ) from None

    def node_ids(self) -> List[str]:
        """Slot owners in transmission order."""
        return [slot.node_id for slot in self._slots]

    # ------------------------------------------------------------------
    # timing arithmetic
    # ------------------------------------------------------------------
    def slot_offset(self, node_id: str) -> int:
        """Start of ``node_id``'s slot relative to the round start."""
        return self._offsets[self.slot_index(node_id)]

    def occurrence_window(self, node_id: str, round_index: int) -> Interval:
        """The ``round_index``-th occurrence of ``node_id``'s slot.

        Raises
        ------
        ValueError
            If ``round_index`` is negative.
        """
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        idx = self.slot_index(node_id)
        start = round_index * self._round_length + self._offsets[idx]
        return Interval(start, start + self._slots[idx].length)

    def first_occurrence_not_before(self, node_id: str, instant: int) -> int:
        """Index of the earliest occurrence whose *start* is >= ``instant``.

        TTP semantics: a frame must be assembled before its slot opens,
        so a message ready at time ``t`` can ride the first slot
        occurrence starting at or after ``t``.
        """
        offset = self.slot_offset(node_id)
        if instant <= offset:
            return 0
        # Smallest k with k * round_length + offset >= instant.
        return -(-(instant - offset) // self._round_length)

    def rounds_within(self, horizon: int) -> int:
        """Number of *complete* rounds inside ``[0, horizon)``.

        A round ending exactly at ``horizon`` counts.  When the horizon
        is not a multiple of the round length, slots early in the final
        partial round may still fit entirely before the horizon -- use
        :meth:`occurrence_count_within` / :meth:`occurrences_within` for
        per-slot accounting that includes them.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        return horizon // self._round_length

    def occurrence_count_within(self, node_id: str, horizon: int) -> int:
        """Occurrences of ``node_id``'s slot ending at or before ``horizon``.

        The boundary rule matches :meth:`first_occurrence_not_before`:
        an occurrence whose window ends exactly at ``horizon`` is usable
        and counts.  For horizons that are multiples of the round length
        this equals :meth:`rounds_within`; otherwise slots early in the
        final partial round contribute one extra occurrence each.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        idx = self.slot_index(node_id)
        end_of_first = self._offsets[idx] + self._slots[idx].length
        if horizon < end_of_first:
            return 0
        return (horizon - end_of_first) // self._round_length + 1

    def occurrences_within(self, node_id: str, horizon: int) -> List[Interval]:
        """All occurrences of ``node_id``'s slot fully inside the horizon.

        Includes occurrences in a final partial round whose windows end
        at or before ``horizon`` -- consistent with
        :meth:`occurrence_count_within` and
        :meth:`first_occurrence_not_before`.
        """
        return [
            self.occurrence_window(node_id, r)
            for r in range(self.occurrence_count_within(node_id, horizon))
        ]

    def total_capacity_within(self, horizon: int) -> int:
        """Total payload bytes the bus can carry inside ``[0, horizon)``.

        Counts every slot occurrence ending at or before the horizon,
        including those in a final partial round.
        """
        return sum(
            self.occurrence_count_within(slot.node_id, horizon) * slot.capacity
            for slot in self._slots
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"{s.node_id}:{s.length}tu/{s.capacity}B" for s in self._slots
        )
        return f"TdmaBus([{body}], round={self._round_length})"


def uniform_bus(node_ids: Sequence[str], slot_length: int, slot_capacity: int) -> TdmaBus:
    """A bus where every node gets an identical slot, in the given order."""
    return TdmaBus(
        [Slot(node_id, slot_length, slot_capacity) for node_id in node_ids]
    )
