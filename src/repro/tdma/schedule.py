"""Mutable bus occupancy: which bytes of which slot occurrence are used.

:class:`BusSchedule` is the communication half of a system schedule.
It tracks, per (node, round) slot occurrence, the bytes consumed by
scheduled messages, supports earliest-fit queries for the scheduler,
frozen reservations for existing applications (requirement (a)), and
residual-capacity queries for the design metrics (C1m, C2m).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Tuple

from repro.tdma.bus import TdmaBus
from repro.utils.errors import SchedulingError
from repro.utils.intervals import Interval


@lru_cache(maxsize=64)
def _occurrence_order(bus: TdmaBus, horizon: int) -> Tuple[Tuple[str, int, int], ...]:
    """Usable slot occurrences as ``(node, round, capacity)``, by start.

    A pure function of the immutable round layout and the horizon,
    cached so the residual extraction of every metric evaluation walks
    a precomputed order instead of re-deriving and re-sorting it.
    """
    items: List[Tuple[int, str, int, int]] = []
    round_length = bus.round_length
    for slot in bus.slots:
        offset = bus.slot_offset(slot.node_id)
        for r in range(bus.occurrence_count_within(slot.node_id, horizon)):
            items.append(
                (r * round_length + offset, slot.node_id, r, slot.capacity)
            )
    items.sort()
    return tuple((node_id, r, cap) for _, node_id, r, cap in items)


def occurrence_order(bus: TdmaBus, horizon: int) -> Tuple[Tuple[str, int, int], ...]:
    """Public accessor of the cached occurrence order (metrics layer)."""
    return _occurrence_order(bus, horizon)


@dataclass(frozen=True)
class SlotOccupancy:
    """Bytes used by one message in one slot occurrence.

    Attributes
    ----------
    message_id:
        The message occupying the bytes.
    instance:
        Which periodic instance of the message (0-based within the
        hyperperiod).
    node_id:
        Owner of the slot (the sender node).
    round_index:
        Which occurrence of the round within the horizon.
    size:
        Payload bytes consumed.
    frozen:
        True when the entry belongs to an existing application and must
        not be moved or removed by the current design process.
    """

    message_id: str
    instance: int
    node_id: str
    round_index: int
    size: int
    frozen: bool = False


class BusSchedule:
    """Byte-level occupancy of every slot occurrence within a horizon.

    Parameters
    ----------
    bus:
        The static TDMA round layout.
    horizon:
        Schedule length in time units (the system hyperperiod).  Only
        slot occurrences fully inside the horizon exist.
    """

    def __init__(self, bus: TdmaBus, horizon: int):
        if horizon <= 0:
            raise SchedulingError(f"bus horizon must be positive, got {horizon}")
        self.bus = bus
        self.horizon = horizon
        self._rounds = bus.rounds_within(horizon)
        # Usable occurrences per node: windows ending at or before the
        # horizon, including slots early in a final partial round.
        self._occurrence_counts: Dict[str, int] = {
            node_id: bus.occurrence_count_within(node_id, horizon)
            for node_id in bus.node_ids()
        }
        # used bytes per (node_id, round_index)
        self._used: Dict[Tuple[str, int], int] = {}
        # entries per (node_id, round_index)
        self._entries: Dict[Tuple[str, int], List[SlotOccupancy]] = {}
        # quick lookup: (message_id, instance) -> occupancy
        self._by_message: Dict[Tuple[str, int], SlotOccupancy] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Number of complete rounds inside the horizon."""
        return self._rounds

    def occurrence_count(self, node_id: str) -> int:
        """Usable occurrences of ``node_id``'s slot inside the horizon."""
        self.bus.slot_of(node_id)  # raises for unknown nodes
        return self._occurrence_counts[node_id]

    def used_bytes(self, node_id: str, round_index: int) -> int:
        """Bytes already consumed in the given slot occurrence."""
        self._check_occurrence(node_id, round_index)
        return self._used.get((node_id, round_index), 0)

    def free_bytes(self, node_id: str, round_index: int) -> int:
        """Residual payload capacity of the given slot occurrence."""
        self._check_occurrence(node_id, round_index)
        capacity = self.bus.slot_of(node_id).capacity
        return capacity - self._used.get((node_id, round_index), 0)

    def entries(self, node_id: str, round_index: int) -> List[SlotOccupancy]:
        """Occupancies recorded in the given slot occurrence."""
        self._check_occurrence(node_id, round_index)
        return list(self._entries.get((node_id, round_index), ()))

    def all_entries(self) -> Iterator[SlotOccupancy]:
        """Every occupancy in the schedule, in no particular order."""
        for entries in self._entries.values():
            yield from entries

    def occupancy_of(self, message_id: str, instance: int) -> Optional[SlotOccupancy]:
        """The occupancy of a message instance, or None if unscheduled."""
        return self._by_message.get((message_id, instance))

    def _check_occurrence(self, node_id: str, round_index: int) -> None:
        self.bus.slot_of(node_id)  # raises for unknown nodes
        count = self._occurrence_counts[node_id]
        if not 0 <= round_index < count:
            raise SchedulingError(
                f"round index {round_index} outside horizon "
                f"(slot of {node_id!r} has {count} usable occurrences)"
            )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def earliest_round_with_room(
        self, node_id: str, size: int, ready: int
    ) -> Optional[int]:
        """Earliest slot occurrence that can carry ``size`` bytes.

        The occurrence must *start* at or after ``ready`` (the frame is
        assembled before the slot opens) and end inside the horizon.
        Returns the round index, or ``None`` when no occurrence fits.
        The scan reads the used-bytes map directly (no per-round
        bounds checks) -- this is the message hot path of every
        scheduling pass.
        """
        slot = self.bus.slot_of(node_id)
        threshold = slot.capacity - size
        if threshold < 0:
            return None
        r = self.bus.first_occurrence_not_before(node_id, ready)
        count = self._occurrence_counts[node_id]
        used = self._used
        while r < count:
            if used.get((node_id, r), 0) <= threshold:
                return r
            r += 1
        return None

    def place(
        self,
        message_id: str,
        instance: int,
        node_id: str,
        round_index: int,
        size: int,
        frozen: bool = False,
    ) -> SlotOccupancy:
        """Record ``size`` bytes of ``message_id`` in a slot occurrence.

        Raises
        ------
        repro.utils.errors.SchedulingError
            If the occurrence lacks capacity, lies outside the horizon,
            or the message instance is already placed.
        """
        self._check_occurrence(node_id, round_index)
        if size <= 0:
            raise SchedulingError(
                f"message {message_id!r} has non-positive size {size}"
            )
        key = (message_id, instance)
        if key in self._by_message:
            raise SchedulingError(
                f"message {message_id!r} instance {instance} already scheduled"
            )
        if self.free_bytes(node_id, round_index) < size:
            raise SchedulingError(
                f"slot occurrence ({node_id!r}, round {round_index}) cannot "
                f"fit {size} bytes of message {message_id!r}"
            )
        occ = SlotOccupancy(message_id, instance, node_id, round_index, size, frozen)
        slot_key = (node_id, round_index)
        self._used[slot_key] = self._used.get(slot_key, 0) + size
        self._entries.setdefault(slot_key, []).append(occ)
        self._by_message[key] = occ
        return occ

    def remove(self, message_id: str, instance: int) -> None:
        """Remove a previously placed, non-frozen message instance.

        Raises
        ------
        repro.utils.errors.SchedulingError
            If the instance is unknown or frozen (existing applications
            must not be modified -- requirement (a)).
        """
        key = (message_id, instance)
        occ = self._by_message.get(key)
        if occ is None:
            raise SchedulingError(
                f"message {message_id!r} instance {instance} is not scheduled"
            )
        if occ.frozen:
            raise SchedulingError(
                f"message {message_id!r} instance {instance} belongs to an "
                f"existing application and cannot be removed"
            )
        slot_key = (occ.node_id, occ.round_index)
        self._used[slot_key] -= occ.size
        self._entries[slot_key].remove(occ)
        del self._by_message[key]

    def arrival_time(self, occ: SlotOccupancy) -> int:
        """When the message of ``occ`` is available at every receiver.

        TTP broadcasts the whole slot; receivers see the payload at the
        end of the slot occurrence.
        """
        return self.bus.occurrence_window(occ.node_id, occ.round_index).end

    # ------------------------------------------------------------------
    # metrics support
    # ------------------------------------------------------------------
    def residuals(self) -> List[Tuple[Interval, int]]:
        """(occurrence window, free bytes) for every slot occurrence.

        The bus-side *slack containers* used by metric C1m: each slot
        occurrence with residual capacity is a bin of that many bytes.
        Ordered by window start (slots within a round are already in
        transmission order).
        """
        out: List[Tuple[Interval, int]] = []
        round_length = self.bus.round_length
        for slot in self.bus.slots:
            offset = self.bus.slot_offset(slot.node_id)
            for r in range(self._occurrence_counts[slot.node_id]):
                used = self._used.get((slot.node_id, r), 0)
                start = r * round_length + offset
                out.append(
                    (Interval(start, start + slot.length), slot.capacity - used)
                )
        out.sort(key=lambda item: item[0].start)
        return out

    def residual_bytes(self) -> List[int]:
        """Free bytes of every slot occurrence, in window-start order.

        The container list of metric C1m without the window intervals
        :meth:`residuals` materializes -- the metric hot path drops
        them anyway, and building one :class:`Interval` per occurrence
        dominates the extraction cost on long horizons.
        """
        used = self._used
        return [
            capacity - used.get((node_id, r), 0)
            for node_id, r, capacity in _occurrence_order(self.bus, self.horizon)
        ]

    def occupancy_equals(self, other: "BusSchedule") -> bool:
        """Whether both schedules consume identical bytes per occurrence.

        Byte-occupancy equality is exactly what the bus-side metrics
        (C1m, C2m) depend on; the delta evaluator uses this to reuse a
        parent's bus metric inputs when a resumed pass re-placed every
        message where the parent had it.
        """
        return self.bus is other.bus and self._used == other._used

    def occupancy_diff(
        self, other: "BusSchedule"
    ) -> List[Tuple[Tuple[str, int], int]]:
        """Per-occurrence used-byte deltas ``self - other``.

        The sparse difference the incremental metric layer patches a
        parent's residual vector with; empty when the two schedules
        occupy the bus identically.
        """
        mine = self._used
        theirs = other._used
        diff: List[Tuple[Tuple[str, int], int]] = []
        for key, used in mine.items():
            previous = theirs.get(key, 0)
            if used != previous:
                diff.append((key, used - previous))
        for key, used in theirs.items():
            if used and key not in mine:
                diff.append((key, -used))
        return diff

    def used_map(self) -> Dict[Tuple[str, int], int]:
        """The live used-bytes map keyed by ``(node, round)`` (read-only)."""
        return self._used

    def free_bytes_within(self, window: Interval) -> int:
        """Total residual bytes of occurrences fully inside ``window``.

        Used by metric C2m: bandwidth available to a future application
        inside one T_min window.  Computed arithmetically (capacity of
        the in-window occurrences minus the in-window used bytes), so
        the cost is O(slots + scheduled messages), not O(rounds).
        """
        round_length = self.bus.round_length
        total = 0
        offsets: Dict[str, int] = {}
        lengths: Dict[str, int] = {}
        for slot in self.bus.slots:
            offset = self.bus.slot_offset(slot.node_id)
            offsets[slot.node_id] = offset
            lengths[slot.node_id] = slot.length
            # Rounds r with window.start <= r*L + offset and
            # r*L + offset + length <= window.end.
            r_lo = max(0, -(-(window.start - offset) // round_length))
            r_hi = min(
                self._occurrence_counts[slot.node_id] - 1,
                (window.end - offset - slot.length) // round_length,
            )
            if r_hi >= r_lo:
                total += (r_hi - r_lo + 1) * slot.capacity
        for (node_id, r), used in self._used.items():
            start = r * round_length + offsets[node_id]
            if start >= window.start and start + lengths[node_id] <= window.end:
                total -= used
        return total

    def total_free_bytes(self) -> int:
        """Residual capacity summed over the whole horizon."""
        capacity = self.bus.total_capacity_within(self.horizon)
        return capacity - sum(self._used.values())

    def copy(self) -> "BusSchedule":
        """A deep, independent copy (occupancies are immutable records)."""
        out = BusSchedule(self.bus, self.horizon)
        out._used = dict(self._used)
        out._entries = {k: list(v) for k, v in self._entries.items()}
        out._by_message = dict(self._by_message)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BusSchedule(rounds={self._rounds}, "
            f"messages={len(self._by_message)}, "
            f"free={self.total_free_bytes()}B)"
        )
