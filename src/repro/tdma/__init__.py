"""TTP-like TDMA bus substrate.

The paper's communication infrastructure is the Time-Triggered Protocol
(Kopetz & Grünsteidl, IEEE Computer 1994): nodes share a broadcast bus
via static time-division multiple access.  Each node owns exactly one
*slot* per *round*; rounds repeat back-to-back over the schedule
horizon.  A message sent by a node must be packed into an occurrence of
that node's slot; several messages fit in one slot occurrence up to the
slot's byte capacity.

* :class:`~repro.tdma.bus.Slot` -- one node's transmission window.
* :class:`~repro.tdma.bus.TdmaBus` -- the round layout plus timing
  arithmetic (slot occurrence times, earliest occurrence after a given
  instant).
* :class:`~repro.tdma.schedule.BusSchedule` -- mutable per-occurrence
  byte bookkeeping used by the scheduler and the design metrics.
"""

from repro.tdma.bus import Slot, TdmaBus
from repro.tdma.schedule import BusSchedule, SlotOccupancy

__all__ = ["Slot", "TdmaBus", "BusSchedule", "SlotOccupancy"]
