"""Inline suppressions: ``# repro: allow[RULE-ID] reason``.

A suppression silences matching findings on its own physical line, or
-- when the comment is the whole line -- on the next line (so long
statements can carry the comment above them).  The reason is
**mandatory**: an empty reason is itself a finding (LINT001), and a
suppression that silences nothing is reported as stale (LINT002) so
dead exemptions cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.lint.findings import Finding, Severity

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rule_ids: List[str]
    reason: str
    standalone: bool  # the comment is the whole line
    used: bool = field(default=False, compare=False)

    def covers(self, finding: Finding) -> bool:
        if finding.rule not in self.rule_ids:
            return False
        if finding.line == self.line:
            return True
        return self.standalone and finding.line == self.line + 1


def parse_suppressions(source: str) -> List[Suppression]:
    """All suppression comments in a source file.

    Tokenizes rather than regex-scanning raw lines so the marker text
    inside string literals or docstrings is never mistaken for a live
    suppression.
    """
    found: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.start[1], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return []
    for line, col, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = [
            rule_id.strip()
            for rule_id in match.group("ids").split(",")
            if rule_id.strip()
        ]
        found.append(
            Suppression(
                line=line,
                rule_ids=ids,
                reason=match.group("reason").strip(),
                standalone=col == 0
                or not source.splitlines()[line - 1][:col].strip(),
            )
        )
    return found


def apply_suppressions(
    findings: Sequence[Finding],
    suppressions_by_path: Dict[str, List[Suppression]],
) -> tuple:
    """Split findings into (kept, suppressed) and add hygiene findings.

    Returns ``(kept, suppressed)`` where ``kept`` already includes the
    LINT001 (reason missing) and LINT002 (stale suppression) hygiene
    findings, which are themselves unsuppressible.
    """
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        covering = None
        for suppression in suppressions_by_path.get(finding.path, ()):
            if suppression.covers(finding):
                covering = suppression
                break
        if covering is None:
            kept.append(finding)
            continue
        covering.used = True
        if covering.reason:
            suppressed.append(finding)
        else:
            # Reasonless suppressions do not suppress: the original
            # finding stands and LINT001 (emitted below) joins it.
            kept.append(finding)

    for path, suppressions in sorted(suppressions_by_path.items()):
        for suppression in suppressions:
            if not suppression.reason:
                kept.append(
                    Finding(
                        rule="LINT001",
                        severity=Severity.ERROR,
                        path=path,
                        line=suppression.line,
                        col=0,
                        message=(
                            "suppression without a reason: write "
                            "'# repro: allow[{}] <why this is safe>'".format(
                                ",".join(suppression.rule_ids) or "RULE-ID"
                            )
                        ),
                        snippet=f"allow[{','.join(suppression.rule_ids)}]",
                    )
                )
            elif not suppression.used:
                kept.append(
                    Finding(
                        rule="LINT002",
                        severity=Severity.ERROR,
                        path=path,
                        line=suppression.line,
                        col=0,
                        message=(
                            "stale suppression: no {} finding here -- "
                            "delete the comment".format(
                                ",".join(suppression.rule_ids) or "?"
                            )
                        ),
                        snippet=f"allow[{','.join(suppression.rule_ids)}]",
                    )
                )
    return kept, suppressed


__all__ = ["Suppression", "parse_suppressions", "apply_suppressions"]
