"""Command line: ``python -m repro.lint [paths] [options]``.

Exit codes: 0 = clean, 1 = findings, 2 = usage/configuration error.
Human output goes to stdout one finding per line (editor-clickable
``path:line:col:``); ``--format json`` emits a machine-readable
document suitable for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.config import load_config
from repro.lint.engine import run_lint
from repro.lint.rules import rule_catalog

#: Default baseline location, relative to the pyproject that
#: configures the run.  The checked-in file is empty -- that is the
#: contract CI enforces.
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static determinism / layering / contract analysis for the "
            "repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml carrying [tool.repro-lint] "
        "(default: nearest above the cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} next to the governing pyproject, when "
        "present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather current findings "
        "and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report everything)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _resolve_baseline(
    args: argparse.Namespace, config_source: Optional[Path]
) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    if args.write_baseline:
        # An explicit write with no path gets the default location.
        anchor = config_source.parent if config_source else Path.cwd()
        return anchor / DEFAULT_BASELINE
    if config_source is not None:
        candidate = config_source.parent / DEFAULT_BASELINE
        if candidate.is_file():
            return candidate
    candidate = Path.cwd() / DEFAULT_BASELINE
    return candidate if candidate.is_file() else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            print(json.dumps(rule_catalog(), indent=2))
        else:
            for rule in rule_catalog():
                print(f"{rule['id']}  {rule['description']}")
                print(f"        fix: {rule['hint']}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    try:
        config = load_config(
            start=paths[0] if paths else Path.cwd(), explicit=args.config
        )
    except ValueError as exc:
        print(f"error: bad configuration: {exc}", file=sys.stderr)
        return 2

    baseline = _resolve_baseline(args, config.source)
    try:
        result = run_lint(
            paths,
            config=config,
            baseline_path=baseline,
            update_baseline=args.write_baseline,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "files": result.files,
                    "findings": [f.as_dict() for f in result.findings],
                    "suppressed": len(result.suppressed),
                    "baselined": len(result.baselined),
                    "stale_baseline": sorted(result.stale_baseline),
                    "ok": result.ok,
                },
                indent=2,
            )
        )
    else:
        for finding in result.findings:
            print(finding.render())
            if finding.hint:
                print(f"    fix: {finding.hint}")
        tail: List[str] = [f"{result.files} files"]
        if result.suppressed:
            tail.append(f"{len(result.suppressed)} suppressed")
        if result.baselined:
            tail.append(f"{len(result.baselined)} baselined")
        if result.stale_baseline:
            tail.append(
                f"{len(result.stale_baseline)} stale baseline entries "
                "(delete or --write-baseline)"
            )
        verdict = (
            "clean"
            if result.ok
            else f"{len(result.findings)} finding(s)"
        )
        print(f"repro-lint: {verdict} ({', '.join(tail)})")
        if args.write_baseline and baseline is not None:
            print(f"baseline written: {baseline}")

    return 0 if result.ok else 1


__all__ = ["main", "build_parser"]
