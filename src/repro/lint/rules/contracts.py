"""Contract rules CON001..CON003: protocol obligations, statically.

The delta kernel and the checkpoint machinery rely on duck-typed
protocols whose omissions fail silently: a transformation without a
``footprint()`` falls back to full rescheduling (correct but quietly
slow -- or wrong once footprints gate cache keys), and an acceptor
without the ``state_dict``/``load_state_dict`` pair breaks
``SearchCheckpoint`` cut-and-resume byte-identity.  These rules make
the obligations compile-time errors.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo, Project, Rule
from repro.lint.findings import Finding

_IO_BUILTINS = {"print", "open", "input", "breakpoint"}


def _method_names(node: ast.ClassDef) -> Set[str]:
    return {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _is_protocol(node: ast.ClassDef) -> bool:
    for base in node.bases:
        target = base.value if isinstance(base, ast.Subscript) else base
        if isinstance(target, ast.Name) and target.id == "Protocol":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "Protocol":
            return True
    return False


class TransformationFootprintRule(Rule):
    """CON001: every concrete transformation declares its footprint."""

    id = "CON001"
    description = (
        "transformation class without a footprint() override: the "
        "delta kernel cannot bound its dirty set"
    )
    hint = (
        "implement footprint(design) returning the MoveFootprint "
        "dirty sets (see core.transformations)"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not config.is_kernel(module.layer):
            return
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        union_members = self._transformation_union(module)
        for name in union_members:
            node = classes.get(name)
            if node is None:
                continue
            missing = {"footprint", "apply", "describe"} - _method_names(
                node
            )
            if missing:
                yield module.finding(
                    self,
                    node,
                    f"`{name}` is a Transformation union member but "
                    f"lacks {', '.join(sorted(missing))}()",
                )
        for name, node in classes.items():
            if name in union_members or _is_protocol(node):
                continue
            methods = _method_names(node)
            if {"apply", "describe"} <= methods and "footprint" not in (
                methods
            ):
                yield module.finding(
                    self,
                    node,
                    f"`{name}` looks like a transformation (has "
                    "apply/describe) but declares no footprint(); the "
                    "delta kernel would have to assume everything is "
                    "dirty",
                )

    @staticmethod
    def _transformation_union(module: ModuleInfo) -> List[str]:
        """Class names in a ``Transformation = Union[...]`` alias."""
        members: List[str] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Name)
                and target.id == "Transformation"
            ):
                continue
            value = node.value
            if isinstance(value, ast.Subscript):
                head = value.value
                is_union = (
                    isinstance(head, ast.Name) and head.id == "Union"
                ) or (
                    isinstance(head, ast.Attribute)
                    and head.attr == "Union"
                )
                if is_union:
                    elts = (
                        value.slice.elts
                        if isinstance(value.slice, ast.Tuple)
                        else [value.slice]
                    )
                    members.extend(
                        elt.id
                        for elt in elts
                        if isinstance(elt, ast.Name)
                    )
        return members


class CheckpointStatePairRule(Rule):
    """CON002: acceptors/proposers carry the checkpoint state pair."""

    id = "CON002"
    description = (
        "search policy without the state_dict/load_state_dict pair "
        "used by SearchCheckpoint cut-and-resume"
    )
    hint = (
        "add state_dict() and load_state_dict(state); return {} when "
        "the policy is stateless"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not config.is_kernel(module.layer):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or _is_protocol(node):
                continue
            methods = _method_names(node)
            pair = {"state_dict", "load_state_dict"}
            have = methods & pair
            if "decide" in methods and have != pair:
                missing = ", ".join(sorted(pair - have))
                yield module.finding(
                    self,
                    node,
                    f"acceptor `{node.name}` lacks {missing}(): "
                    "checkpoints cannot restore its per-run state "
                    "(cooling temperature, thresholds) and resumed "
                    "searches diverge",
                )
            elif "propose" in methods and len(have) == 1:
                missing = ", ".join(sorted(pair - have))
                yield module.finding(
                    self,
                    node,
                    f"proposer `{node.name}` defines half the "
                    f"checkpoint pair; add {missing}()",
                )


class HotPathIORule(Rule):
    """CON003: no I/O inside scheduling/delta hot paths."""

    id = "CON003"
    description = (
        "print/open/logging inside a scheduling or delta-resume hot "
        "path"
    )
    hint = (
        "return the datum and report it at the experiments boundary; "
        "hot paths run millions of times per race"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not config.is_kernel(module.layer):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in config.hot_paths:
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                offender = self._io_call(module, inner)
                if offender is not None:
                    yield module.finding(
                        self,
                        inner,
                        f"`{offender}` inside hot path "
                        f"`{node.name}`",
                    )

    @staticmethod
    def _io_call(module: ModuleInfo, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            return func.id
        full = module.resolve(func)
        if full is not None:
            if full.startswith("logging.") or full.startswith("sys.std"):
                return full
        return None


CONTRACT_RULES = (
    TransformationFootprintRule,
    CheckpointStatePairRule,
    HotPathIORule,
)

__all__ = ["CONTRACT_RULES"]
