"""Layering rules LAY001..LAY003: the import DAG, statically.

The documented stack (DESIGN.md "Layer diagram") is enforced on
*module-level runtime* imports: a layer may import itself and
strictly-earlier layers.  ``if TYPE_CHECKING:`` imports are erased at
runtime and exempt; function-scope (lazy) imports are the sanctioned
cycle-breaking mechanism (e.g. the engine pricing schedules through
``core.metrics`` at call time) and exempt from LAY001 -- but every
runtime edge, lazy or not, still participates in nothing upward that
the allowlist in ``pyproject.toml [tool.repro-lint]`` does not name.

LAY002 rejects import cycles at module granularity (over module-level
runtime edges, allowlisted or not: an allowlisted upward edge must
still not close a loop).  LAY003 rejects cross-layer imports of
``_``-private modules regardless of context.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo, Project, Rule
from repro.lint.findings import Finding


@dataclass(frozen=True)
class ImportEdge:
    """One import statement's contribution to the module graph."""

    src_module: str
    dst_module: str
    line: int
    col: int
    context: str  # "module" | "lazy" | "type-checking"


def _edges_of(module: ModuleInfo) -> List[ImportEdge]:
    """All ``repro.*`` imports of one module, classified by context."""
    edges: List[ImportEdge] = []
    for node in ast.walk(module.tree):
        targets: List[str] = []
        if isinstance(node, ast.Import):
            targets = [
                alias.name
                for alias in node.names
                if alias.name.split(".")[0] == "repro"
            ]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module and node.module.split(".")[0] == "repro":
                if node.module == "repro":
                    # ``from repro import engine`` imports submodules.
                    targets = [
                        f"repro.{alias.name}" for alias in node.names
                    ]
                else:
                    targets = [node.module]
        for target in targets:
            if module.in_type_checking(node):
                context = "type-checking"
            elif module.in_function(node):
                context = "lazy"
            else:
                context = "module"
            edges.append(
                ImportEdge(
                    src_module=module.module,
                    dst_module=target,
                    line=node.lineno,
                    col=node.col_offset,
                    context=context,
                )
            )
    return edges


def _layer_of_module(dotted: str) -> str:
    parts = dotted.split(".")
    if parts[0] == "repro" and len(parts) >= 2:
        return parts[1]
    return ""


class UpwardImportRule(Rule):
    """LAY001: no module-level runtime import of a later layer."""

    id = "LAY001"
    description = (
        "module-level import of a later layer (violates the "
        "documented import DAG)"
    )
    hint = (
        "invert the dependency, defer the import to call time, or "
        "(last resort) add the edge to [tool.repro-lint] "
        "import-allowlist with a reason"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        src_rank = config.layer_rank(module.layer)
        if src_rank is None:
            return
        for edge in _edges_of(module):
            if edge.context != "module":
                continue
            dst_layer = _layer_of_module(edge.dst_module)
            dst_rank = config.layer_rank(dst_layer)
            if dst_rank is None or dst_rank <= src_rank:
                continue
            if config.import_allowed(edge.src_module, edge.dst_module):
                continue
            finding = module.finding(
                self,
                _node_at(module, edge),
                f"layer '{module.layer}' imports "
                f"`{edge.dst_module}` from later layer "
                f"'{dst_layer}' at module level",
            )
            yield finding


class ImportCycleRule(Rule):
    """LAY002: the runtime import graph stays acyclic."""

    id = "LAY002"
    description = "module-level import cycle"
    hint = "break the cycle with a call-time import or an interface split"

    def finalize(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        by_name: Dict[str, ModuleInfo] = {
            module.module: module for module in project.modules
        }
        graph: Dict[str, Set[str]] = {name: set() for name in by_name}
        edge_site: Dict[Tuple[str, str], Tuple[int, int]] = {}
        for module in project.modules:
            for edge in _edges_of(module):
                if edge.context != "module":
                    continue
                if edge.dst_module in by_name:
                    graph[module.module].add(edge.dst_module)
                    edge_site.setdefault(
                        (module.module, edge.dst_module),
                        (edge.line, edge.col),
                    )
        for cycle in _cycles(graph):
            anchor = min(cycle)
            module = by_name[anchor]
            index = cycle.index(anchor)
            ordered = cycle[index:] + cycle[:index]
            line, col = edge_site.get(
                (ordered[0], ordered[1 % len(ordered)]), (1, 0)
            )
            chain = " -> ".join([*ordered, ordered[0]])
            snippet = ""
            if 1 <= line <= len(module.lines):
                snippet = module.lines[line - 1].strip()
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=module.display_path,
                line=line,
                col=col,
                message=f"import cycle: {chain}",
                hint=self.hint,
                snippet=snippet,
            )


def _cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components of size > 1 (Tarjan, iterative
    enough for this graph's size via recursion on small depth)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    out: List[List[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component: List[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            if len(component) > 1:
                out.append(sorted(component))

    for vertex in sorted(graph):
        if vertex not in index:
            strongconnect(vertex)
    return out


class PrivateImportRule(Rule):
    """LAY003: no cross-layer import of ``_``-private modules."""

    id = "LAY003"
    description = (
        "deep import of another layer's private `_`-module"
    )
    hint = (
        "import the layer's public surface; promote the symbol if "
        "another layer genuinely needs it"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        for edge in _edges_of(module):
            if edge.context == "type-checking":
                continue
            dst_layer = _layer_of_module(edge.dst_module)
            if not dst_layer or dst_layer == module.layer:
                continue
            private = [
                part
                for part in edge.dst_module.split(".")[2:]
                if part.startswith("_") and not part.startswith("__")
            ]
            if private:
                yield module.finding(
                    self,
                    _node_at(module, edge),
                    f"`{edge.dst_module}` is private to layer "
                    f"'{dst_layer}' (module {private[0]} is "
                    "underscore-prefixed)",
                )


class _Site:
    """Minimal node-like object for findings at a known location."""

    def __init__(self, line: int, col: int):
        self.lineno = line
        self.col_offset = col


def _node_at(module: ModuleInfo, edge: ImportEdge) -> ast.AST:
    """A location carrier for an edge (qualname lookup degrades to
    module scope, which is correct for import statements)."""
    return _Site(edge.line, edge.col)  # type: ignore[return-value]


LAYERING_RULES = (UpwardImportRule, ImportCycleRule, PrivateImportRule)

__all__ = ["LAYERING_RULES", "ImportEdge"]
