"""Determinism rules DET001..DET006 (kernel layers only).

The byte-identity contract -- seeded runs identical across cache
on/off, ``--jobs N``, delta on/off and both engine cores -- survives
only if the kernel layers (``model``, ``tdma``, ``sched``, ``engine``,
``search``, ``core``) never consult ambient state.  Each rule below
bans one ambient channel at the source level.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo, Project, Rule
from repro.lint.findings import Finding

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random attributes that construct *explicitly seeded* streams
#: (legitimate even in kernels when the seed is threaded in).
_NP_RANDOM_CONSTRUCTORS = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Direct consumers whose result does not depend on iteration order.
_ORDER_INSENSITIVE_CONSUMERS = {
    "len",
    "sum",
    "any",
    "all",
    "set",
    "frozenset",
}

_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}


def _kernel_module(module: ModuleInfo, config: LintConfig) -> bool:
    return config.is_kernel(module.layer)


class WallClockRule(Rule):
    """DET001: no wall-clock reads outside declared timing boundaries."""

    id = "DET001"
    description = (
        "wall-clock read (time.time/perf_counter/datetime.now) in a "
        "kernel layer outside the timing-boundary allowlist"
    )
    hint = (
        "move the read to a timing boundary (SearchStats/"
        "runtime_seconds sites) or add the function to "
        "[tool.repro-lint] timing-allowlist"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not _kernel_module(module, config):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            full = module.resolve(node.func)
            if full not in _WALL_CLOCK:
                continue
            if module.in_type_checking(node):
                continue
            if config.timing_allowed(module.module, module.qualname(node)):
                continue
            yield module.finding(
                self,
                node,
                f"wall-clock read `{full}` in kernel layer "
                f"'{module.layer}': results must not depend on when "
                "they run",
            )


class GlobalRngRule(Rule):
    """DET002: no module-global RNG; only seeded generators."""

    id = "DET002"
    description = (
        "module-global RNG call (random.*, np.random.*) in a kernel "
        "layer; randomness must come from a seeded Generator/Random "
        "threaded as a parameter"
    )
    hint = (
        "accept an np.random.Generator parameter (see utils.rng."
        "make_rng) instead of drawing from the shared global stream"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not _kernel_module(module, config):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            full = module.resolve(node.func)
            if full is None or module.in_type_checking(node):
                continue
            message = self._violation(full, node)
            if message is not None:
                yield module.finding(self, node, message)

    @staticmethod
    def _violation(full: str, call: ast.Call) -> Optional[str]:
        seeded = bool(call.args or call.keywords)
        if full.startswith("numpy.random."):
            attr = full[len("numpy.random."):]
            if attr in _NP_RANDOM_CONSTRUCTORS:
                return None
            if attr in ("default_rng", "RandomState"):
                if seeded:
                    return None
                return (
                    f"`{full}()` without a seed draws entropy from the "
                    "OS; pass the seed (or an existing SeedSequence)"
                )
            if "." in attr:  # e.g. numpy.random.mtrand.*
                return None
            return (
                f"`{full}` uses numpy's module-global RNG; draw from a "
                "seeded np.random.Generator parameter instead"
            )
        if full.startswith("random."):
            attr = full[len("random."):]
            if attr == "Random":
                if seeded:
                    return None
                return (
                    "`random.Random()` without a seed is "
                    "time-dependent; pass the seed explicitly"
                )
            if attr == "SystemRandom":
                return "`random.SystemRandom` is OS entropy by design"
            if "." in attr:
                return None
            return (
                f"`{full}` uses the interpreter-global RNG; draw from "
                "a seeded generator threaded as a parameter instead"
            )
        return None


class _SetishInference:
    """Syntactic set-ness for one module.

    An expression is *set-ish* when it is a set literal/comprehension,
    a ``set()``/``frozenset()`` call, a set operator over set-ish or
    dict-view operands, a set-method call on a set-ish receiver, a
    local name bound to a set-ish expression, or an attribute whose
    receiver's annotated class declares the field as a set (the
    project-wide dataclass registry).
    """

    def __init__(self, module: ModuleInfo, project: Project):
        self.module = module
        self.project = project
        #: local/parameter name -> True (set-ish) per enclosing scope
        self.set_names: Dict[str, Set[str]] = {}
        #: parameter name -> annotated class name per enclosing scope
        self.param_classes: Dict[str, Dict[str, str]] = {}
        self._collect()

    def _collect(self) -> None:
        from repro.lint.engine import _annotation_is_set

        for node in ast.walk(self.module.tree):
            scope = self.module.qualname(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A def's qualname already includes its own name.
                fn_scope = scope
                for arg in [
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                ]:
                    if arg.annotation is None:
                        continue
                    if _annotation_is_set(arg.annotation):
                        self.set_names.setdefault(fn_scope, set()).add(
                            arg.arg
                        )
                    else:
                        cls = self._annotation_class(arg.annotation)
                        if cls is not None and self.project.class_fields.get(
                            cls
                        ):
                            self.param_classes.setdefault(fn_scope, {})[
                                arg.arg
                            ] = cls
            elif isinstance(node, ast.Assign):
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    if self.is_setish(node.value, scope):
                        self.set_names.setdefault(scope, set()).add(
                            node.targets[0].id
                        )
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_is_set(node.annotation):
                    self.set_names.setdefault(scope, set()).add(
                        node.target.id
                    )

    @staticmethod
    def _annotation_class(annotation: ast.expr) -> Optional[str]:
        if isinstance(annotation, ast.Name):
            return annotation.id
        if isinstance(annotation, ast.Attribute):
            return annotation.attr
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return annotation.value.split("[")[0].strip().rsplit(".", 1)[-1]
        return None

    # ------------------------------------------------------------------
    def is_setish(self, node: ast.expr, scope: str) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_setish(func.value, scope)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return (
                self.is_setish(node.left, scope)
                or self.is_setish(node.right, scope)
                or self._is_dict_view(node.left)
                or self._is_dict_view(node.right)
            )
        if isinstance(node, ast.Name):
            for candidate in self._scope_chain(scope):
                if node.id in self.set_names.get(candidate, ()):
                    return True
            return False
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            for candidate in self._scope_chain(scope):
                cls = self.param_classes.get(candidate, {}).get(
                    node.value.id
                )
                if cls is not None:
                    return node.attr in self.project.set_typed_fields(cls)
            return False
        return False

    @staticmethod
    def _is_dict_view(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items")
            and not node.args
        )

    @staticmethod
    def _scope_chain(scope: str) -> List[str]:
        """``a.b.c`` -> [``a.b.c``, ``a.b``, ``a``, ````]."""
        chain = [scope]
        while scope:
            scope = scope.rpartition(".")[0]
            chain.append(scope)
        return chain


class UnorderedIterationRule(Rule):
    """DET003: unordered set iteration reaching an order-sensitive
    consumer must pass through ``sorted()`` first."""

    id = "DET003"
    description = (
        "iteration over a set/frozenset feeding an order-sensitive "
        "consumer (for-loop, list()/tuple(), join, keyed sort) "
        "without sorted()"
    )
    hint = (
        "wrap the iterable in sorted(...); if the consumption is "
        "provably order-insensitive, suppress with the proof as the "
        "reason"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not _kernel_module(module, config):
            return
        inference = _SetishInference(module, project)

        def setish(expr: ast.expr, at: ast.AST) -> bool:
            return inference.is_setish(expr, module.qualname(at))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and setish(node.iter, node):
                yield module.finding(
                    self,
                    node.iter,
                    "for-loop over an unordered set: iterate "
                    "sorted(...) or prove order-insensitivity",
                )
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if setish(gen.iter, node):
                        yield module.finding(
                            self,
                            gen.iter,
                            "list comprehension over an unordered set "
                            "captures PYTHONHASHSEED-dependent order",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, setish)

    def _check_call(self, module, node: ast.Call, setish) -> Iterator:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        first = node.args[0] if node.args else None
        if name in ("list", "tuple") and first is not None:
            if setish(first, node):
                yield module.finding(
                    self,
                    node,
                    f"{name}() over an unordered set captures "
                    "PYTHONHASHSEED-dependent order",
                )
        elif name in ("sorted", "min", "max") and first is not None:
            # sorted/min/max canonicalize -- unless a key function
            # makes ties resolve by encounter order.
            has_key = any(kw.arg == "key" for kw in node.keywords)
            if has_key and setish(first, node):
                yield module.finding(
                    self,
                    node,
                    f"{name}(..., key=...) over an unordered set: key "
                    "ties resolve in hash order; sort the set itself "
                    "first",
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and first is not None
        ):
            if setish(first, node):
                yield module.finding(
                    self,
                    node,
                    "join() over an unordered set produces "
                    "hash-order-dependent text",
                )


class HashBuiltinRule(Rule):
    """DET004: no ``hash()`` of interned values in kernel layers."""

    id = "DET004"
    description = (
        "hash() call in a kernel layer: str/bytes hashes vary with "
        "PYTHONHASHSEED across the BatchEvaluator worker pool"
    )
    hint = (
        "derive signatures/ordering keys from the value itself (tuples,"
        " sorted items, hashlib) instead of hash()"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not _kernel_module(module, config):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield module.finding(
                    self,
                    node,
                    "hash() is salted per interpreter (PYTHONHASHSEED): "
                    "its value must never reach an ordering or "
                    "signature position",
                )


class AmbientStateRule(Rule):
    """DET005: no environment/OS-entropy/uuid reads in kernels."""

    id = "DET005"
    description = (
        "ambient-state read (os.environ/os.getenv/os.urandom/uuid) in "
        "a kernel layer"
    )
    hint = (
        "read configuration at the experiments/CLI boundary and pass "
        "it down as parameters"
    )

    _CALLS = {"os.getenv", "os.urandom", "os.getrandom"}

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not _kernel_module(module, config):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                full = module.resolve(node.func)
                if full in self._CALLS or (
                    full is not None and full.startswith("uuid.")
                ):
                    yield module.finding(
                        self,
                        node,
                        f"`{full}` reads ambient state: kernel results "
                        "must be a pure function of their inputs",
                    )
            elif isinstance(node, ast.Attribute):
                if module.resolve(node) == "os.environ":
                    yield module.finding(
                        self,
                        node,
                        "`os.environ` read in a kernel layer: pass "
                        "configuration down as parameters",
                    )


class FloatEqualityRule(Rule):
    """DET006: no float ``==``/``!=`` in scheduler/metric modules."""

    id = "DET006"
    description = (
        "float equality comparison in scheduler/metric code: "
        "accumulation order and platform rounding make == fragile"
    )
    hint = (
        "compare integers (the kernels are integer-time), use "
        "math.isclose at reporting boundaries, or suppress with a "
        "proof that both sides are exact copies"
    )

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        if not config.float_eq_applies(module.module):
            return
        float_params = self._float_params(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            scope = module.qualname(node)
            operands = [node.left, *node.comparators]
            if any(
                self._is_floatish(operand, scope, float_params)
                for operand in operands
            ):
                yield module.finding(
                    self,
                    node,
                    "float == / != comparison: exact equality is only "
                    "sound for bit-copied values",
                )

    @staticmethod
    def _float_params(module: ModuleInfo) -> Dict[str, Set[str]]:
        """Per-scope parameter names annotated ``float``."""
        out: Dict[str, Set[str]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            fn_scope = module.qualname(node)
            for arg in [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ]:
                ann = arg.annotation
                if (isinstance(ann, ast.Name) and ann.id == "float") or (
                    isinstance(ann, ast.Constant) and ann.value == "float"
                ):
                    out.setdefault(fn_scope, set()).add(arg.arg)
        return out

    @classmethod
    def _is_floatish(
        cls, node: ast.expr, scope: str, float_params: Dict[str, Set[str]]
    ) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return cls._is_floatish(node.operand, scope, float_params)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return cls._is_floatish(
                node.left, scope, float_params
            ) or cls._is_floatish(node.right, scope, float_params)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, float)
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            chain = scope
            while True:
                if node.id in float_params.get(chain, ()):
                    return True
                if not chain:
                    return False
                chain = chain.rpartition(".")[0]
        return False


DETERMINISM_RULES = (
    WallClockRule,
    GlobalRngRule,
    UnorderedIterationRule,
    HashBuiltinRule,
    AmbientStateRule,
    FloatEqualityRule,
)

__all__ = ["DETERMINISM_RULES"]
