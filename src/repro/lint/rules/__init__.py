"""Rule registry: every shipped rule, in catalog order."""

from __future__ import annotations

from typing import List, Type

from repro.lint.engine import Rule
from repro.lint.rules.contracts import CONTRACT_RULES
from repro.lint.rules.determinism import DETERMINISM_RULES
from repro.lint.rules.layering import LAYERING_RULES

RULE_CLASSES: tuple = (
    *DETERMINISM_RULES,
    *LAYERING_RULES,
    *CONTRACT_RULES,
)


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule."""
    return [cls() for cls in RULE_CLASSES]


def rule_catalog() -> List[dict]:
    """Id/severity/description/hint for every rule (docs, --list-rules)."""
    catalog = [
        {
            "id": cls.id,
            "severity": cls.severity,
            "description": cls.description,
            "hint": cls.hint,
        }
        for cls in RULE_CLASSES
    ]
    catalog.append(
        {
            "id": "LINT001",
            "severity": "error",
            "description": "suppression without a reason",
            "hint": "write '# repro: allow[RULE-ID] <why this is safe>'",
        }
    )
    catalog.append(
        {
            "id": "LINT002",
            "severity": "error",
            "description": "stale suppression (matches no finding)",
            "hint": "delete the comment",
        }
    )
    catalog.append(
        {
            "id": "LINT003",
            "severity": "error",
            "description": "file does not parse",
            "hint": "fix the syntax error",
        }
    )
    return catalog


__all__ = ["RULE_CLASSES", "all_rules", "rule_catalog"]
