"""Baseline files: grandfathered findings that do not fail the run.

A baseline is a JSON file of finding fingerprints (see
:attr:`repro.lint.findings.Finding.fingerprint`).  Fingerprints hash
nothing and carry the source text, so entries survive pure line-shift
edits and are machine-independent.  The checked-in baseline for
``src/repro`` is empty -- the file exists as the CI contract that it
stays empty.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints grandfathered by ``path`` (missing file = none)."""
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} "
            f"in {path}"
        )
    entries = data.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"malformed baseline {path}: entries not a list")
    return set(entries)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the baseline grandfathering exactly ``findings``."""
    payload = {
        "version": BASELINE_VERSION,
        "entries": sorted({finding.fingerprint for finding in findings}),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: Sequence[Finding], entries: Set[str]
) -> Tuple[List[Finding], List[Finding], Set[str]]:
    """Split findings into (kept, baselined) and report stale entries.

    Returns ``(kept, baselined, stale)`` where ``stale`` holds baseline
    entries that matched nothing -- candidates for deletion, surfaced
    in the human output but not themselves failures.
    """
    kept: List[Finding] = []
    baselined: List[Finding] = []
    matched: Set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint
        if fingerprint in entries:
            matched.add(fingerprint)
            baselined.append(finding)
        else:
            kept.append(finding)
    return kept, baselined, entries - matched


__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
