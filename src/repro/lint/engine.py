"""The rule engine: one ``ast`` parse per file, one walk per rule set.

:class:`ModuleInfo` wraps a parsed file with everything rules need --
parent links, enclosing qualnames, ``TYPE_CHECKING`` containment and a
resolved import-alias table (``np.random.default_rng`` -> the dotted
``numpy.random.default_rng`` regardless of aliasing).  :class:`Project`
adds the cross-file registries (set-typed dataclass fields, the module
import graph) that the layering and flow rules consume, and
:func:`run_lint` orchestrates: parse, per-module rules, project rules,
inline suppressions, baseline.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.suppressions import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

_SET_TYPE_NAMES = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    """Whether a type annotation denotes a set/frozenset."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Name):
        return node.id in _SET_TYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_TYPE_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations: cheap textual check is enough here.
        head = node.value.split("[")[0].strip().rsplit(".", 1)[-1]
        return head in _SET_TYPE_NAMES
    return False


class ModuleInfo:
    """One parsed source file plus the lookups every rule shares."""

    def __init__(self, path: Path, display_path: str, source: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.module = self._module_name(path)
        self.layer = self._layer_name(self.module)
        self.suppressions: List[Suppression] = parse_suppressions(source)

        self._qualname: Dict[int, str] = {}
        self._in_type_checking: Set[int] = set()
        self._in_function: Set[int] = set()
        self._aliases: Dict[str, str] = {}
        self._index()

    # ------------------------------------------------------------------
    @staticmethod
    def _module_name(path: Path) -> str:
        """Dotted module name inferred from the path.

        The last ``repro`` path component anchors the package, so both
        the live tree (``src/repro/...``) and test fixtures written to
        ``<tmp>/repro/<layer>/mod.py`` resolve identically.  Files
        outside a ``repro`` tree fall back to their stem.
        """
        parts = list(path.parts)
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            dotted = list(parts[anchor:])
        else:
            dotted = [parts[-1]]
        dotted[-1] = Path(dotted[-1]).stem
        if dotted[-1] == "__init__":
            dotted.pop()
        return ".".join(dotted)

    @staticmethod
    def _layer_name(module: str) -> str:
        parts = module.split(".")
        if parts[0] == "repro" and len(parts) >= 2:
            return parts[1]
        return ""

    # ------------------------------------------------------------------
    def _index(self) -> None:
        """One walk computing qualnames, guards and the alias table."""
        stores: Set[str] = set()

        def visit(node: ast.AST, stack: List[str], tc: bool, fn: bool):
            node_id = id(node)
            self._qualname[node_id] = ".".join(stack)
            if tc:
                self._in_type_checking.add(node_id)
            if fn:
                self._in_function.add(node_id)

            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else name
                    self._aliases.setdefault(name, target)
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.level == 0:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        self._aliases.setdefault(
                            bound, f"{node.module}.{alias.name}"
                        )
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                stores.add(node.id)
            elif isinstance(node, ast.arg):
                stores.add(node.arg)

            is_tc_branch = isinstance(node, ast.If) and (
                (
                    isinstance(node.test, ast.Name)
                    and node.test.id == "TYPE_CHECKING"
                )
                or (
                    isinstance(node.test, ast.Attribute)
                    and node.test.attr == "TYPE_CHECKING"
                )
            )
            for child_field, value in ast.iter_fields(node):
                children = value if isinstance(value, list) else [value]
                for child in children:
                    if not isinstance(child, ast.AST):
                        continue
                    child_tc = tc or (
                        is_tc_branch and child_field == "body"
                    )
                    child_stack = stack
                    child_fn = fn
                    if isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        child_fn = True
                    if isinstance(
                        child,
                        (
                            ast.FunctionDef,
                            ast.AsyncFunctionDef,
                            ast.ClassDef,
                        ),
                    ):
                        child_stack = stack + [child.name]
                    visit(child, child_stack, child_tc, child_fn)

        visit(self.tree, [], False, False)
        # A name rebound by ordinary assignment anywhere stops being a
        # trustworthy import alias (conservative: avoids false flags).
        for name in stores:
            self._aliases.pop(name, None)

    # ------------------------------------------------------------------
    def qualname(self, node: ast.AST) -> str:
        """Qualified name of the scope *containing* ``node``."""
        return self._qualname.get(id(node), "")

    def in_type_checking(self, node: ast.AST) -> bool:
        return id(node) in self._in_type_checking

    def in_function(self, node: ast.AST) -> bool:
        return id(node) in self._in_function

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a ``Name``/``Attribute`` chain, de-aliased.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` aliases ``numpy``;
        a bare ``perf_counter`` imported from ``time`` resolves to
        ``time.perf_counter``.  Returns None for non-static chains
        (calls, subscripts) or unknown roots.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        chain.append(root)
        return ".".join(reversed(chain))

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.display_path,
            line=line,
            col=col,
            message=message,
            symbol=self.qualname(node),
            hint=rule.hint,
            snippet=snippet,
        )


@dataclass
class Project:
    """Cross-file registries shared by project-scope rules."""

    modules: List[ModuleInfo] = field(default_factory=list)
    #: class name -> {attribute: is-set-typed} from annotated class
    #: bodies anywhere in the run (dataclass fields, class attrs).
    class_fields: Dict[str, Dict[str, bool]] = field(default_factory=dict)

    def build_registries(self) -> None:
        for module in self.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                fields = self.class_fields.setdefault(node.name, {})
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        fields[stmt.target.id] = _annotation_is_set(
                            stmt.annotation
                        )

    def set_typed_fields(self, class_name: str) -> Set[str]:
        return {
            attr
            for attr, is_set in self.class_fields.get(class_name, {}).items()
            if is_set
        }


class Rule:
    """Base class for lint rules.

    Subclasses override :meth:`check` (per module) and/or
    :meth:`finalize` (once, after every module is parsed -- for
    whole-program properties such as import cycles).
    """

    id: str = ""
    severity: str = Severity.ERROR
    description: str = ""
    hint: str = ""

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())

    def finalize(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())


class _SyntaxErrorRule(Rule):
    """Synthetic rule id for unparseable files."""

    id = "LINT003"
    description = "file does not parse"
    hint = "fix the syntax error"


@dataclass
class LintResult:
    """Everything one run produced."""

    findings: List[Finding]
    suppressed: List[Finding]
    baselined: List[Finding]
    stale_baseline: Set[str]
    files: int

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(
    paths: Sequence[Path], exclude: Sequence[str] = ()
) -> Iterator[Path]:
    """All ``.py`` files under ``paths`` (files given directly pass
    the exclude filter too), deterministically ordered."""
    seen: Set[Path] = set()
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            posix = candidate.as_posix()
            if any(fnmatch.fnmatch(posix, pattern) for pattern in exclude):
                continue
            seen.add(resolved)
            yield candidate


def _display_path(path: Path) -> str:
    """Repo-relative posix path when possible (stable fingerprints)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _number_occurrences(findings: List[Finding]) -> List[Finding]:
    """Assign occurrence indexes so identical findings fingerprint
    distinctly (two equal snippets in one function)."""
    counts: Dict[str, int] = {}
    numbered = []
    for finding in findings:
        key = "|".join(
            [finding.rule, finding.path, finding.symbol, finding.snippet]
        )
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        numbered.append(replace(finding, occurrence=occurrence))
    return numbered


def run_lint(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline_path: Optional[Path] = None,
    update_baseline: bool = False,
) -> LintResult:
    """Lint ``paths`` and return the full result.

    ``update_baseline`` rewrites ``baseline_path`` to grandfather the
    current unsuppressed findings instead of reporting them.
    """
    from repro.lint.rules import all_rules

    config = config or LintConfig()
    active_rules = list(rules) if rules is not None else all_rules()

    project = Project()
    raw_findings: List[Finding] = []
    suppressions_by_path: Dict[str, List[Suppression]] = {}
    files = 0
    syntax_rule = _SyntaxErrorRule()
    for path in iter_python_files(paths, config.exclude):
        files += 1
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            module = ModuleInfo(path, display, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            raw_findings.append(
                Finding(
                    rule=syntax_rule.id,
                    severity=syntax_rule.severity,
                    path=display,
                    line=line,
                    col=0,
                    message=f"file does not parse: {exc}",
                    hint=syntax_rule.hint,
                )
            )
            continue
        project.modules.append(module)
        suppressions_by_path[display] = module.suppressions

    project.build_registries()
    for module in project.modules:
        for rule in active_rules:
            raw_findings.extend(rule.check(module, project, config))
    for rule in active_rules:
        raw_findings.extend(rule.finalize(project, config))

    raw_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    raw_findings = _number_occurrences(raw_findings)

    kept, suppressed = apply_suppressions(
        raw_findings, suppressions_by_path
    )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    baselined: List[Finding] = []
    stale: Set[str] = set()
    if baseline_path is not None and update_baseline:
        write_baseline(baseline_path, kept)
        baselined, kept = kept, []
    elif baseline_path is not None:
        entries = load_baseline(baseline_path)
        kept, baselined, stale = apply_baseline(kept, entries)

    return LintResult(
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        files=files,
    )


__all__ = [
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "iter_python_files",
    "run_lint",
]
