"""Lint configuration: built-in defaults + ``[tool.repro-lint]``.

The shipped defaults mirror the checked-in ``pyproject.toml`` section
so fixture snippets lint identically with or without a config file;
the file is authoritative for the live tree (it carries the layering
allowlist and the timing-boundary set).

``tomllib`` only exists on Python 3.11+; on 3.10 a tiny fallback
parser handles the restricted TOML subset this section uses (string
and list-of-string values, ``#`` comments, multi-line arrays).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None

#: Layers in import order: an entry may import strictly-earlier
#: entries (and itself).  ``tdma`` precedes ``model`` because
#: ``model.architecture`` embeds the bus description.  ``lint`` is
#: last: it may see everything but nothing imports it.
DEFAULT_LAYERS: Tuple[str, ...] = (
    "utils",
    "tdma",
    "model",
    "sched",
    "engine",
    "search",
    "core",
    "gen",
    "serialize",
    "analysis",
    "experiments",
    "lint",
)

#: Layers whose modules are determinism kernels (DET rules apply).
DEFAULT_KERNEL_LAYERS: Tuple[str, ...] = (
    "model",
    "tdma",
    "sched",
    "engine",
    "search",
    "core",
)

#: ``module:qualname`` prefixes allowed to read the wall clock
#: (DET001).  These are the timing *boundaries*: budget accounting in
#: the search loop and the ``runtime_seconds`` reporting sites.  Time
#: read there feeds stats and stopping only -- never a scheduling or
#: acceptance decision.
DEFAULT_TIMING_ALLOWLIST: Tuple[str, ...] = (
    "repro.search.loop:SearchLoop.program",
    "repro.search.portfolio:PortfolioRunner.run",
    "repro.search.portfolio:PortfolioRunner._race",
    "repro.search.portfolio:first_valid",
    "repro.core.strategy:timed",
)

#: ``src -> dst [:: reason]`` module-level import edges exempt from
#: LAY001.  Empty by default; the live tree's entries live in
#: ``pyproject.toml`` next to the code they grandfather.
DEFAULT_IMPORT_ALLOWLIST: Tuple[str, ...] = ()

#: Module prefixes where float ``==``/``!=`` is a determinism hazard
#: (DET006): scheduler decisions and metric kernels.
DEFAULT_FLOAT_EQ_MODULES: Tuple[str, ...] = (
    "repro.sched",
    "repro.engine.delta",
    "repro.core.metrics",
    "repro.core.slack",
)

#: Function names treated as scheduling/delta hot paths (CON003).
DEFAULT_HOT_PATHS: Tuple[str, ...] = (
    "run_pass",
    "resume_state",
    "evaluate_move",
    "evaluate_moves",
    "_divergence",
)


@dataclass
class LintConfig:
    """Effective configuration for one lint run."""

    layers: Tuple[str, ...] = DEFAULT_LAYERS
    kernel_layers: Tuple[str, ...] = DEFAULT_KERNEL_LAYERS
    timing_allowlist: Tuple[str, ...] = DEFAULT_TIMING_ALLOWLIST
    import_allowlist: Tuple[str, ...] = DEFAULT_IMPORT_ALLOWLIST
    float_eq_modules: Tuple[str, ...] = DEFAULT_FLOAT_EQ_MODULES
    hot_paths: Tuple[str, ...] = DEFAULT_HOT_PATHS
    exclude: Tuple[str, ...] = ()
    source: Optional[Path] = None
    _layer_rank: Dict[str, int] = field(default_factory=dict, repr=False)
    _import_allow: Dict[Tuple[str, str], str] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self._layer_rank = {name: i for i, name in enumerate(self.layers)}
        self._import_allow = {}
        for entry in self.import_allowlist:
            spec, _, reason = entry.partition("::")
            src, arrow, dst = spec.partition("->")
            if not arrow:
                raise ValueError(
                    f"malformed import-allowlist entry {entry!r}: "
                    "expected 'src.module -> dst.module [:: reason]'"
                )
            key = (src.strip(), dst.strip())
            self._import_allow[key] = reason.strip()

    # -- layering ------------------------------------------------------
    def layer_rank(self, layer: str) -> Optional[int]:
        """Position of ``layer`` in the DAG (None = outside the DAG)."""
        return self._layer_rank.get(layer)

    def import_allowed(self, src_module: str, dst_module: str) -> bool:
        """Whether the allowlist grandfathers ``src -> dst``."""
        return (src_module, dst_module) in self._import_allow

    # -- determinism ---------------------------------------------------
    def is_kernel(self, layer: str) -> bool:
        return layer in self.kernel_layers

    def timing_allowed(self, module: str, qualname: str) -> bool:
        """Whether a wall-clock read at ``module:qualname`` is a
        declared timing boundary (prefix match on the qualname)."""
        site = f"{module}:{qualname}"
        return any(
            site == entry or site.startswith(entry + ".")
            for entry in self.timing_allowlist
        )

    def float_eq_applies(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.float_eq_modules
        )


def _parse_toml_fallback(text: str) -> dict:
    """Minimal TOML for ``[tool.repro-lint]`` on Python 3.10.

    Supports exactly what the section uses: ``[table.headers]``,
    ``key = "string"``, ``key = true/false`` and (possibly multi-line)
    arrays of strings.  Anything fancier should run on 3.11+.
    """
    data: dict = {}
    current = data
    lines = iter(text.splitlines())
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = data
            for part in line[1:-1].strip().split("."):
                part = part.strip().strip('"')
                current = current.setdefault(part, {})
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.strip()
        if value.startswith("["):
            while not _array_closed(value):
                value += " " + next(lines).strip()
            current[key] = re.findall(r'"((?:[^"\\]|\\.)*)"', value)
        elif value.startswith('"'):
            match = re.match(r'"((?:[^"\\]|\\.)*)"', value)
            current[key] = match.group(1) if match else ""
        elif value in ("true", "false"):
            current[key] = value == "true"
        else:
            try:
                current[key] = int(value.split("#")[0].strip())
            except ValueError:
                current[key] = value
    return data


def _array_closed(fragment: str) -> bool:
    """Whether a TOML array literal is complete (quote-aware)."""
    in_string = False
    escaped = False
    depth = 0
    for ch in fragment:
        if escaped:
            escaped = False
            continue
        if in_string:
            if ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth == 0:
                return True
    return False


def _read_pyproject(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    if tomllib is not None:
        return tomllib.loads(text)
    return _parse_toml_fallback(text)


def find_pyproject(start: Path) -> Optional[Path]:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    node = start if start.is_dir() else start.parent
    for candidate in [node, *node.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(
    start: Optional[Path] = None, explicit: Optional[Path] = None
) -> LintConfig:
    """Configuration for a run rooted at ``start``.

    ``explicit`` points straight at a ``pyproject.toml``; otherwise the
    file is searched upward from ``start`` (default: cwd).  A missing
    file or missing ``[tool.repro-lint]`` section yields the built-in
    defaults.
    """
    pyproject = explicit or find_pyproject(start or Path.cwd())
    if pyproject is None:
        return LintConfig()
    section = (
        _read_pyproject(pyproject).get("tool", {}).get("repro-lint", {})
    )
    if not section:
        return LintConfig(source=pyproject)

    def str_list(key: str, default: Sequence[str]) -> Tuple[str, ...]:
        value = section.get(key)
        if value is None:
            return tuple(default)
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise ValueError(
                f"[tool.repro-lint] {key} must be an array of strings"
            )
        return tuple(value)

    return LintConfig(
        layers=str_list("layers", DEFAULT_LAYERS),
        kernel_layers=str_list("kernel-layers", DEFAULT_KERNEL_LAYERS),
        timing_allowlist=str_list(
            "timing-allowlist", DEFAULT_TIMING_ALLOWLIST
        ),
        import_allowlist=str_list(
            "import-allowlist", DEFAULT_IMPORT_ALLOWLIST
        ),
        float_eq_modules=str_list(
            "float-eq-modules", DEFAULT_FLOAT_EQ_MODULES
        ),
        hot_paths=str_list("hot-paths", DEFAULT_HOT_PATHS),
        exclude=str_list("exclude", ()),
        source=pyproject,
    )


__all__ = ["LintConfig", "load_config", "find_pyproject"]
