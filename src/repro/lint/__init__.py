"""Static analysis of the repository's byte-identity invariants.

Every guarantee the reproduction makes -- seeded runs byte-identical
across cache on/off, ``--jobs N``, delta on/off and
``--engine-core array|object`` -- is otherwise enforced only
dynamically, by golden-design tests.  This package proves the
underlying source-level invariants statically, on every commit:

* **determinism rules** (DET001..DET006): no wall-clock, module-global
  RNG, unordered-set iteration, ``hash()`` of interned values,
  environment reads, or float equality inside the kernel layers;
* **layering rules** (LAY001..LAY003): the documented import DAG
  (``utils < tdma < model < sched < engine < search < core < gen <
  serialize < analysis < experiments``) holds at module level, stays
  acyclic, and no layer deep-imports another layer's ``_``-private
  modules;
* **contract rules** (CON001..CON003): every transformation declares
  its delta footprint, every acceptor/proposer carries the checkpoint
  state pair, and hot paths stay free of I/O.

Run it as ``python -m repro.lint [paths]``.  Findings are suppressed
inline with ``# repro: allow[RULE-ID] reason`` (the reason is
mandatory) or grandfathered through a ``--baseline`` file; the checked
in baseline for ``src/repro`` is empty and CI keeps it that way.

The analyzer is self-contained: it imports nothing from the rest of
``repro`` (it sits outside the layer DAG it enforces) and never
imports the code under analysis -- everything is a single ``ast``
parse per file.
"""

from repro.lint.engine import LintResult, ModuleInfo, Project, run_lint
from repro.lint.findings import Finding, Severity
from repro.lint.config import LintConfig, load_config
from repro.lint.rules import all_rules

__all__ = [
    "Finding",
    "Severity",
    "LintConfig",
    "LintResult",
    "ModuleInfo",
    "Project",
    "all_rules",
    "load_config",
    "run_lint",
]
