"""Finding and severity types shared by every rule."""

from __future__ import annotations

from dataclasses import dataclass, field


class Severity:
    """Finding severities (plain strings so findings stay JSON-native)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule id (``DET001``, ``LAY002``, ...).
    severity:
        ``error`` or ``warning``; both fail the run, the distinction
        is informational.
    path:
        Path as given to the linter (kept repo-relative by the CLI so
        fingerprints are machine-independent).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human explanation of this specific violation.
    symbol:
        Qualified name of the enclosing function/class, if any.
    hint:
        The rule's autofix hint (how violations are usually repaired).
    snippet:
        The stripped source line, used for stable fingerprints.
    occurrence:
        Disambiguates identical findings on identical lines.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""
    hint: str = ""
    snippet: str = ""
    occurrence: int = field(default=0, compare=False)

    @property
    def fingerprint(self) -> str:
        """A location-stable identity for baseline matching.

        Uses the source text rather than the line number so pure
        line-shift edits do not invalidate a grandfathered entry.
        """
        return "|".join(
            [
                self.rule,
                self.path,
                self.symbol,
                self.snippet,
                str(self.occurrence),
            ]
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One-line human rendering (``path:line:col: RULE message``)."""
        where = f"{self.path}:{self.line}:{self.col + 1}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule} {self.message}{sym}"
