"""The Mapping Heuristic (MH) -- slide 14.

MH starts from the Initial Mapping's valid solution and iteratively
performs design transformations that improve the slide-14 objective,
"examining only transformations with the highest potential to improve
the design".  Each iteration:

1. **Candidate selection.**  Current-application processes are scored
   by how much their displacement could help: processes on nodes with
   fragmented slack (first criterion) and processes executing inside
   the worst ``T_min`` window of their node (second criterion) score
   highest; larger processes break ties (moving them moves more time).
   Only the top ``pool_size`` processes are considered.
2. **Move generation.**  For every candidate: remap to each other
   allowed node; swap priorities with its schedule neighbours on the
   same node (same-processor slack move).  For the current-application
   messages sent by candidates: delay by one feasible slot occurrence
   (bus slack move), or un-delay.
3. **Exact evaluation.**  Every generated move is priced by actually
   rescheduling the current application and recomputing the metrics
   (no surrogate model), and the best strictly-improving move is
   applied.  The loop stops when no candidate move improves the
   objective or ``max_iterations`` is reached.

The descent machinery itself lives in :mod:`repro.core.improvement`
(shared with the SA reference's polishing phase); this class binds it
to the Initial Mapping and the strategy interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.improvement import DescentParams, steepest_descent
from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import (
    DesignEvaluator,
    DesignResult,
    DesignSpec,
    timed,
)
from repro.core.transformations import CandidateDesign
from repro.engine.cache import DEFAULT_MAX_ENTRIES


@dataclass
class MappingHeuristic:
    """Iterative-improvement mapping heuristic (the paper's MH).

    Parameters
    ----------
    pool_size:
        Number of highest-potential candidate processes examined per
        iteration (ablated in ``bench_ablation_candidates``).
    max_iterations:
        Upper bound on improvement iterations (each applies at most one
        move).
    min_improvement:
        A move must lower the objective by more than this to be taken.
    use_message_moves:
        Whether bus-slack (message-delay) moves are generated.
    use_cache:
        Memoize candidate evaluations in the engine (neighbourhoods of
        consecutive descent iterations overlap heavily).
    jobs:
        Worker processes for batch-evaluating each neighbourhood;
        ``1`` stays serial.  Results are identical for any value.
    max_cache_entries:
        LRU bound of the engine's cache (``None`` = unbounded).
    use_delta:
        Evaluate each neighbourhood through the incremental kernel
        (children rescheduled from the current design's checkpoints).
        Results are identical with it off.
    """

    pool_size: int = 8
    max_iterations: int = 64
    min_improvement: float = 1e-9
    use_message_moves: bool = True
    use_cache: bool = True
    jobs: int = 1
    max_cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES
    use_delta: bool = True

    name = "MH"

    @timed
    def design(self, spec: DesignSpec) -> DesignResult:
        """Run IM, then steepest-descent improvement of the objective."""
        with DesignEvaluator(
            spec,
            use_cache=self.use_cache,
            jobs=self.jobs,
            max_cache_entries=self.max_cache_entries,
            use_delta=self.use_delta,
        ) as evaluator:
            return self._design(spec, evaluator)

    def _design(
        self, spec: DesignSpec, evaluator: DesignEvaluator
    ) -> DesignResult:
        mapper = InitialMapper(spec.architecture)
        outcome = mapper.try_map_and_schedule(
            spec.current,
            base=spec.base_schedule,
            horizon=None if spec.base_schedule else spec.horizon,
            compiled=evaluator.compiled,
        )
        if outcome is None:
            return DesignResult(self.name, valid=False, evaluations=1)
        im_mapping, im_schedule = outcome

        start = evaluator.evaluate(
            CandidateDesign(
                im_mapping, dict(evaluator.compiled.default_priorities)
            )
        )
        if start is None:
            # The list scheduler resolved messages slightly differently
            # than IM and failed; report IM's own valid schedule without
            # optimization (rare).
            metrics = evaluator.engine.price(im_schedule)
            return DesignResult(
                self.name,
                valid=True,
                mapping=im_mapping,
                priorities=dict(evaluator.compiled.default_priorities),
                schedule=im_schedule,
                metrics=metrics,
            ).record_engine_stats(evaluator)

        best = steepest_descent(
            spec,
            evaluator,
            start,
            DescentParams(
                pool_size=self.pool_size,
                max_iterations=self.max_iterations,
                min_improvement=self.min_improvement,
                use_message_moves=self.use_message_moves,
            ),
        )
        return DesignResult(
            self.name,
            valid=True,
            mapping=best.mapping,
            priorities=best.priorities,
            message_delays=dict(best.design.message_delays),
            schedule=best.schedule,
            metrics=best.metrics,
        ).record_engine_stats(evaluator)
