"""The Mapping Heuristic (MH) -- slide 14.

MH starts from the Initial Mapping's valid solution and iteratively
performs design transformations that improve the slide-14 objective,
"examining only transformations with the highest potential to improve
the design".  Each iteration:

1. **Candidate selection.**  Current-application processes are scored
   by how much their displacement could help: processes on nodes with
   fragmented slack (first criterion) and processes executing inside
   the worst ``T_min`` window of their node (second criterion) score
   highest; larger processes break ties (moving them moves more time).
   Only the top ``pool_size`` processes are considered.
2. **Move generation.**  For every candidate: remap to each other
   allowed node; swap priorities with its schedule neighbours on the
   same node (same-processor slack move).  For the current-application
   messages sent by candidates: delay by one feasible slot occurrence
   (bus slack move), or un-delay.
3. **Exact evaluation.**  Every generated move is priced by actually
   rescheduling the current application and recomputing the metrics
   (no surrogate model), and the best strictly-improving move is
   applied.  The loop stops when no candidate move improves the
   objective, the iteration cap is reached, or the budget runs out.

Since the search-kernel refactor MH is a thin configuration of
:class:`repro.search.SearchLoop` (neighbourhood proposer + greedy
acceptor + step budget); :meth:`search_program` exposes the whole run
as a kernel program so the portfolio runner can race MH against other
strategies over one shared engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.improvement import DescentParams, descent_loop
from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import (
    DesignEvaluator,
    DesignResult,
    DesignSpec,
    timed,
)
from repro.core.transformations import CandidateDesign
from repro.engine.cache import DEFAULT_MAX_ENTRIES
from repro.search.budget import Budget
from repro.search.checkpoint import MemberCheckpoint, MemberPaused
from repro.search.loop import EvalRequest, drive


@dataclass
class MappingHeuristic:
    """Iterative-improvement mapping heuristic (the paper's MH).

    Parameters
    ----------
    pool_size:
        Number of highest-potential candidate processes examined per
        iteration (ablated in ``bench_ablation_candidates``).
    max_iterations:
        Upper bound on improvement iterations (each applies at most one
        move).
    min_improvement:
        A move must lower the objective by more than this to be taken.
    use_message_moves:
        Whether bus-slack (message-delay) moves are generated.
    use_cache:
        Memoize candidate evaluations in the engine (neighbourhoods of
        consecutive descent iterations overlap heavily).
    jobs:
        Worker processes for batch-evaluating each neighbourhood;
        ``1`` stays serial.  Results are identical for any value.
    max_cache_entries:
        LRU bound of the engine's cache (``None`` = unbounded).
    use_delta:
        Evaluate each neighbourhood through the incremental kernel
        (children rescheduled from the current design's checkpoints).
        Results are identical with it off.
    budget:
        Optional external search budget, combined (``&``) with the
        ``max_iterations`` step cap -- the tighter limit wins on every
        axis.  Step/evaluation/patience budgets cut a seeded run at an
        exact reproducible point.
    """

    pool_size: int = 8
    max_iterations: int = 64
    min_improvement: float = 1e-9
    use_message_moves: bool = True
    use_cache: bool = True
    jobs: int = 1
    max_cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES
    use_delta: bool = True
    engine_core: str = "array"
    cache_store: str = "memory"
    cache_path: Optional[str] = None
    budget: Optional[Budget] = None

    name = "MH"
    #: The pipeline supports cut+resume via ``MemberCheckpoint`` (the
    #: distributed race's steal/respawn protocol).
    resumable = True

    @timed
    def design(self, spec: DesignSpec) -> DesignResult:
        """Run IM, then steepest-descent improvement of the objective."""
        with DesignEvaluator(
            spec,
            use_cache=self.use_cache,
            jobs=self.jobs,
            max_cache_entries=self.max_cache_entries,
            use_delta=self.use_delta,
            engine_core=self.engine_core,
            cache_store=self.cache_store,
            cache_path=self.cache_path,
        ) as evaluator:
            result = drive(
                self.search_program(spec, evaluator.compiled), evaluator
            )
            if result.valid:
                result.record_engine_stats(evaluator)
            return result

    def search_program(
        self,
        spec: DesignSpec,
        compiled,
        resume: Optional[MemberCheckpoint] = None,
    ):
        """The MH pipeline as a kernel program (portfolio-raceable).

        A generator yielding :class:`repro.search.EvalRequest` batches:
        Initial Mapping (computed inline against the shared compiled
        spec), one cold evaluation of the IM design, then the
        steepest-descent :class:`~repro.search.SearchLoop`.

        ``resume`` continues a pipeline cut by the distributed race's
        steal protocol: the single ``descent`` phase resumes from its
        loop checkpoint (IM needs no recomputation -- the descent
        carries its own state) and the continuation is byte-identical
        to the uninterrupted run.
        """
        from repro.core.metrics import evaluate_design

        start = None
        if resume is None:
            mapper = InitialMapper(spec.architecture)
            outcome = mapper.try_map_and_schedule(
                spec.current,
                base=spec.base_schedule,
                horizon=None if spec.base_schedule else spec.horizon,
                compiled=compiled,
            )
            if outcome is None:
                return DesignResult(self.name, valid=False, evaluations=1)
            im_mapping, im_schedule = outcome

            results = yield EvalRequest(
                designs=[
                    CandidateDesign(
                        im_mapping, dict(compiled.default_priorities)
                    )
                ]
            )
            start = results[0]
            if start is None:
                # The list scheduler resolved messages slightly differently
                # than IM and failed; report IM's own valid schedule without
                # optimization (rare).
                metrics = evaluate_design(
                    im_schedule, spec.future, spec.weights
                )
                return DesignResult(
                    self.name,
                    valid=True,
                    mapping=im_mapping,
                    priorities=dict(compiled.default_priorities),
                    schedule=im_schedule,
                    metrics=metrics,
                )
        elif resume.phase != "descent":
            raise ValueError(
                f"MH cannot resume from phase {resume.phase!r}"
            )

        descent = descent_loop(
            DescentParams(
                pool_size=self.pool_size,
                max_iterations=self.max_iterations,
                min_improvement=self.min_improvement,
                use_message_moves=self.use_message_moves,
            ),
            budget=self.budget,
            name="MH-descent",
        )
        try:
            if resume is None:
                search = yield from descent.program(spec, start=start)
            else:
                search = yield from descent.program(
                    spec, checkpoint=resume.loop
                )
        except MemberPaused as pause:
            pause.checkpoint.phase = "descent"
            pause.checkpoint.strategy = self.name
            raise
        best = search.incumbent
        return DesignResult(
            self.name,
            valid=True,
            mapping=best.mapping,
            priorities=best.priorities,
            message_delays=dict(best.design.message_delays),
            schedule=best.schedule,
            metrics=best.metrics,
            search=search.stats,
        )
