"""End-to-end design flow: specs, evaluation, results, strategy registry.

The mapping strategies (AH, MH, SA) share one contract:

1. a :class:`DesignSpec` describes the problem -- platform, frozen
   existing schedule, current application, future characterization and
   objective weights;
2. ``strategy.design(spec)`` returns a :class:`DesignResult` with the
   mapping, priorities, schedule, metrics and accounting data.

:class:`DesignEvaluator` is the shared inner loop: schedule a candidate
``(mapping, priorities)`` around the frozen reservations and price the
result with the slide-14 objective.  Invalid candidates (deadline miss,
unpackable message) evaluate to ``None`` and are rejected by every
strategy, which enforces the paper's requirement (a) throughout the
search.  The heavy lifting -- problem compilation, memoization and
parallel batch scoring -- lives in :mod:`repro.engine`; the evaluator
here is the strategy-facing facade over one
:class:`repro.engine.engine.EvaluationEngine`.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.stats import SearchStats

from repro.core.future import FutureCharacterization
from repro.core.metrics import DesignMetrics, ObjectiveWeights
from repro.engine.cache import DEFAULT_MAX_ENTRIES, CacheStats
from repro.engine.delta import DeltaStats
from repro.engine.engine import EngineCounters, EvaluationEngine
from repro.engine.evaluation import EvaluatedDesign
from repro.engine.store import StoreStats
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.core.transformations import CandidateDesign
from repro.sched.priorities import PriorityMap
from repro.sched.schedule import SystemSchedule


@dataclass
class DesignSpec:
    """One incremental design problem instance.

    Attributes
    ----------
    architecture:
        The platform (nodes + TDMA bus).
    base_schedule:
        Schedule of the existing applications with frozen entries; the
        current application is placed around them.  ``None`` means a
        green-field design (no existing applications).
    current:
        The application to map and schedule now.
    future:
        Characterization of the expected future applications.
    weights:
        Objective-function weights.
    horizon:
        Schedule horizon; defaults to the base schedule's horizon or to
        the current application's hyperperiod.
    """

    architecture: Architecture
    current: Application
    future: FutureCharacterization
    base_schedule: Optional[SystemSchedule] = None
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    horizon: Optional[int] = None

    def effective_horizon(self) -> int:
        """The horizon the design will be scheduled over."""
        if self.base_schedule is not None:
            return self.base_schedule.horizon
        if self.horizon is not None:
            return self.horizon
        return self.current.hyperperiod()


@dataclass
class DesignResult:
    """Outcome of running one strategy on one spec.

    ``valid`` is False when the strategy could not find any design
    meeting requirement (a); the remaining fields are then ``None``.
    """

    strategy: str
    valid: bool
    mapping: Optional[Mapping] = None
    priorities: Optional[PriorityMap] = None
    message_delays: Optional[Dict[str, int]] = None
    schedule: Optional[SystemSchedule] = None
    metrics: Optional[DesignMetrics] = None
    runtime_seconds: float = 0.0
    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    delta_hits: int = 0
    delta_fallbacks: int = 0
    #: Stage-time buckets of the evaluation pipeline (scheduling pass,
    #: metric pricing, schedule decode), in wall nanoseconds summed
    #: across the engine process and every pool worker.
    sched_ns: int = 0
    metrics_ns: int = 0
    decode_ns: int = 0
    #: Persistent result-store accounting: probes past the resident
    #: cache tier, rows flushed, and database open/commit wall time.
    #: All zero on the in-memory backend.
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    store_open_ns: int = 0
    store_commit_ns: int = 0
    #: Per-search accounting of the kernel loops behind this result
    #: (steps, proposals, evaluations-to-incumbent); ``None`` for
    #: strategies that do not search (AH).
    search: Optional["SearchStats"] = None

    @property
    def objective(self) -> float:
        """The achieved objective; +inf for invalid results."""
        if not self.valid or self.metrics is None:
            return float("inf")
        return self.metrics.objective

    def record_engine_stats(self, evaluator: "DesignEvaluator") -> "DesignResult":
        """Copy the evaluator's accounting into this result, in place."""
        self.evaluations = evaluator.evaluations
        self.cache_hits = evaluator.cache_hits
        self.cache_misses = evaluator.cache_misses
        self.delta_hits = evaluator.delta_hits
        self.delta_fallbacks = evaluator.delta_fallbacks
        self.sched_ns = evaluator.sched_ns
        self.metrics_ns = evaluator.metrics_ns
        self.decode_ns = evaluator.decode_ns
        store = evaluator.store_stats()
        self.store_hits = store.hits
        self.store_misses = store.misses
        self.store_writes = store.writes
        self.store_open_ns = store.open_ns
        self.store_commit_ns = store.commit_ns
        return self

    def design_identity(self) -> tuple:
        """Canonical identity of the design, for determinism comparisons.

        Two runs are "the same design" when mapping, priorities,
        message delays and objective all agree; invalid results are
        identified by their (in)validity alone.  This is the single
        definition used by the family smoke checks, the portfolio
        winner tie-break and the CLI determinism gates.
        """
        if not self.valid:
            return ("invalid",)
        return (
            tuple(sorted(self.mapping.as_dict().items())),
            tuple(sorted(self.priorities.items())),
            tuple(sorted((self.message_delays or {}).items())),
            self.objective,
        )


class DesignEvaluator:
    """Schedules and prices :class:`CandidateDesign` points.

    Since the evaluation-engine refactor this class is a thin facade
    over :class:`repro.engine.engine.EvaluationEngine`: the engine owns
    the compiled problem, the memo cache and the worker pool, while
    this class keeps the historical strategy-facing API.

    Parameters
    ----------
    spec:
        The design problem (compiled once by the engine).
    use_cache:
        Memoize candidate evaluations, including invalid verdicts.
    jobs:
        Worker processes for :meth:`evaluate_many`; ``1`` stays serial.
    max_cache_entries:
        LRU bound of the engine's cache (``None`` = unbounded).
    parallel_threshold:
        Minimum problem size (expanded jobs) before the pool engages.
    use_delta:
        Enable the incremental (move-aware) evaluation kernel; results
        are bit-identical either way (the ``--no-delta`` escape hatch).
    engine_core:
        ``"array"`` (the default here) runs the structure-of-arrays
        scheduler kernel; ``"object"`` the pinned object-graph
        reference.  Byte-identical results; the CLI's
        ``--engine-core`` switch.
    cache_store:
        ``"memory"`` (the default) keeps memoized outcomes in the
        process-local LRU; ``"sqlite"`` backs that LRU with a
        persistent database at ``cache_path`` that survives restarts
        and is shared read-only with pool workers.
    cache_path:
        Filesystem path of the sqlite result store (required when
        ``cache_store="sqlite"``).
    store_read_only:
        Open the sqlite store as a read-only shard view (the
        distributed race's per-shard engines): warm reads, no rw lock;
        new rows are buffered for the coordinating parent to drain and
        persist.  Ignored by the memory backend.
    """

    def __init__(
        self,
        spec: DesignSpec,
        use_cache: bool = True,
        jobs: int = 1,
        max_cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        parallel_threshold: Optional[int] = None,
        use_delta: bool = True,
        engine_core: str = "array",
        cache_store: str = "memory",
        cache_path: Optional[str] = None,
        store_read_only: bool = False,
    ):
        self.spec = spec
        self.engine = EvaluationEngine(
            spec,
            use_cache=use_cache,
            jobs=jobs,
            max_cache_entries=max_cache_entries,
            parallel_threshold=parallel_threshold,
            use_delta=use_delta,
            engine_core=engine_core,
            cache_store=cache_store,
            cache_path=cache_path,
            store_read_only=store_read_only,
        )

    def evaluate(self, design: "CandidateDesign") -> Optional[EvaluatedDesign]:
        """Schedule the candidate; return ``None`` when it is invalid."""
        return self.engine.evaluate(design)

    def evaluate_many(
        self, designs: Sequence["CandidateDesign"]
    ) -> List[Optional[EvaluatedDesign]]:
        """Score a batch of candidates, preserving input order."""
        return self.engine.evaluate_many(designs)

    def evaluate_move(self, parent: EvaluatedDesign, move) -> Optional[EvaluatedDesign]:
        """Score the child one ``move`` away from ``parent`` (delta path)."""
        return self.engine.evaluate_move(parent, move)

    def evaluate_moves(
        self, parent: EvaluatedDesign, moves: Sequence
    ) -> List[Optional[EvaluatedDesign]]:
        """Score a parent's move neighbourhood, preserving input order."""
        return self.engine.evaluate_moves(parent, moves)

    @property
    def compiled(self):
        """The engine's compiled problem (shared with Initial Mapping)."""
        return self.engine.compiled

    @property
    def evaluations(self) -> int:
        return self.engine.evaluations

    @property
    def cache_hits(self) -> int:
        return self.engine.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.engine.cache_misses

    @property
    def delta_hits(self) -> int:
        return self.engine.delta_hits

    @property
    def delta_fallbacks(self) -> int:
        return self.engine.delta_fallbacks

    @property
    def sched_ns(self) -> int:
        return self.engine.sched_ns

    @property
    def metrics_ns(self) -> int:
        return self.engine.metrics_ns

    @property
    def decode_ns(self) -> int:
        return self.engine.decode_ns

    @property
    def store_hits(self) -> int:
        return self.engine.store_hits

    @property
    def store_misses(self) -> int:
        return self.engine.store_misses

    @property
    def store_writes(self) -> int:
        return self.engine.store_writes

    def store_stats(self) -> StoreStats:
        """Persistent-store accounting (all-zero on the memory backend)."""
        return self.engine.store_stats()

    def drain_store_rows(self) -> List[tuple]:
        """Encoded rows a read-only shard view buffered (else empty)."""
        return self.engine.drain_store_rows()

    def absorb_store_rows(self, rows: Sequence[tuple]) -> None:
        """Persist rows drained from shard engines (parent side)."""
        self.engine.absorb_store_rows(rows)

    def cache_stats(self) -> CacheStats:
        return self.engine.cache_stats()

    def delta_stats(self) -> DeltaStats:
        return self.engine.delta_stats()

    def counters(self) -> EngineCounters:
        """Snapshot of every engine counter (per-search attribution)."""
        return self.engine.counters()

    def close(self) -> None:
        """Release the engine's worker pool (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "DesignEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_strategy(name: str, **kwargs):
    """Instantiate a strategy by its paper acronym: ``AH``, ``MH``, ``SA``.

    Extra keyword arguments are forwarded to the strategy constructor.
    """
    from repro.core.adhoc import AdHocStrategy
    from repro.core.mapping_heuristic import MappingHeuristic
    from repro.core.simulated_annealing import SimulatedAnnealing

    registry = {
        "AH": AdHocStrategy,
        "MH": MappingHeuristic,
        "SA": SimulatedAnnealing,
    }
    key = name.upper()
    if key not in registry:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(registry)}"
        )
    return registry[key](**kwargs)


def design_application(spec: DesignSpec, strategy: str = "MH", **kwargs) -> DesignResult:
    """Convenience wrapper: build the named strategy and run it on ``spec``."""
    return make_strategy(strategy, **kwargs).design(spec)


def fits_future_application(
    designed_schedule: SystemSchedule,
    future_application: Application,
    architecture: Architecture,
) -> bool:
    """Whether ``future_application`` can be mapped on the designed system.

    This is the acceptance test of the paper's third experiment
    (slide 17): after the current application has been designed, a
    concrete future application arrives; it fits when the Initial
    Mapper finds a valid mapping and schedule in the remaining slack
    without touching anything already placed.
    """
    from repro.core.initial_mapping import InitialMapper

    mapper = InitialMapper(architecture)
    outcome = mapper.try_map_and_schedule(
        future_application, base=designed_schedule
    )
    return outcome is not None


def timed(func):
    """Decorator measuring a strategy's ``design`` wall-clock runtime.

    The wrapped method must return a :class:`DesignResult`; its
    ``runtime_seconds`` field is filled in.
    """

    @functools.wraps(func)
    def wrapper(self, spec: DesignSpec) -> DesignResult:
        start = time.perf_counter()
        result = func(self, spec)
        result.runtime_seconds = time.perf_counter() - start
        return result

    return wrapper
