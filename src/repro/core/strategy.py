"""End-to-end design flow: specs, evaluation, results, strategy registry.

The mapping strategies (AH, MH, SA) share one contract:

1. a :class:`DesignSpec` describes the problem -- platform, frozen
   existing schedule, current application, future characterization and
   objective weights;
2. ``strategy.design(spec)`` returns a :class:`DesignResult` with the
   mapping, priorities, schedule, metrics and accounting data.

:class:`DesignEvaluator` is the shared inner loop: schedule a candidate
``(mapping, priorities)`` around the frozen reservations and price the
result with the slide-14 objective.  Invalid candidates (deadline miss,
unpackable message) evaluate to ``None`` and are rejected by every
strategy, which enforces the paper's requirement (a) throughout the
search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.future import FutureCharacterization
from repro.core.metrics import DesignMetrics, ObjectiveWeights, evaluate_design
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.sched.list_scheduler import ListScheduler
from repro.core.transformations import CandidateDesign
from repro.sched.priorities import PriorityMap
from repro.sched.schedule import SystemSchedule


@dataclass
class DesignSpec:
    """One incremental design problem instance.

    Attributes
    ----------
    architecture:
        The platform (nodes + TDMA bus).
    base_schedule:
        Schedule of the existing applications with frozen entries; the
        current application is placed around them.  ``None`` means a
        green-field design (no existing applications).
    current:
        The application to map and schedule now.
    future:
        Characterization of the expected future applications.
    weights:
        Objective-function weights.
    horizon:
        Schedule horizon; defaults to the base schedule's horizon or to
        the current application's hyperperiod.
    """

    architecture: Architecture
    current: Application
    future: FutureCharacterization
    base_schedule: Optional[SystemSchedule] = None
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    horizon: Optional[int] = None

    def effective_horizon(self) -> int:
        """The horizon the design will be scheduled over."""
        if self.base_schedule is not None:
            return self.base_schedule.horizon
        if self.horizon is not None:
            return self.horizon
        return self.current.hyperperiod()


@dataclass
class EvaluatedDesign:
    """A valid candidate design with its schedule and metric values."""

    design: "CandidateDesign"
    schedule: SystemSchedule
    metrics: DesignMetrics

    @property
    def objective(self) -> float:
        return self.metrics.objective

    @property
    def mapping(self) -> Mapping:
        return self.design.mapping

    @property
    def priorities(self) -> PriorityMap:
        return self.design.priorities


@dataclass
class DesignResult:
    """Outcome of running one strategy on one spec.

    ``valid`` is False when the strategy could not find any design
    meeting requirement (a); the remaining fields are then ``None``.
    """

    strategy: str
    valid: bool
    mapping: Optional[Mapping] = None
    priorities: Optional[PriorityMap] = None
    message_delays: Optional[Dict[str, int]] = None
    schedule: Optional[SystemSchedule] = None
    metrics: Optional[DesignMetrics] = None
    runtime_seconds: float = 0.0
    evaluations: int = 0

    @property
    def objective(self) -> float:
        """The achieved objective; +inf for invalid results."""
        if not self.valid or self.metrics is None:
            return float("inf")
        return self.metrics.objective


class DesignEvaluator:
    """Schedules and prices :class:`CandidateDesign` points."""

    def __init__(self, spec: DesignSpec):
        self.spec = spec
        self.scheduler = ListScheduler(spec.architecture)
        self.evaluations = 0

    def evaluate(self, design: "CandidateDesign") -> Optional[EvaluatedDesign]:
        """Schedule the candidate; return ``None`` when it is invalid."""
        self.evaluations += 1
        result = self.scheduler.try_schedule(
            self.spec.current,
            design.mapping,
            base=self.spec.base_schedule,
            priorities=design.priorities,
            horizon=None if self.spec.base_schedule else self.spec.horizon,
            message_delays=design.message_delays,
        )
        if not result.success:
            return None
        metrics = evaluate_design(
            result.schedule, self.spec.future, self.spec.weights
        )
        return EvaluatedDesign(design, result.schedule, metrics)


def make_strategy(name: str, **kwargs):
    """Instantiate a strategy by its paper acronym: ``AH``, ``MH``, ``SA``.

    Extra keyword arguments are forwarded to the strategy constructor.
    """
    from repro.core.adhoc import AdHocStrategy
    from repro.core.mapping_heuristic import MappingHeuristic
    from repro.core.simulated_annealing import SimulatedAnnealing

    registry = {
        "AH": AdHocStrategy,
        "MH": MappingHeuristic,
        "SA": SimulatedAnnealing,
    }
    key = name.upper()
    if key not in registry:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(registry)}"
        )
    return registry[key](**kwargs)


def design_application(spec: DesignSpec, strategy: str = "MH", **kwargs) -> DesignResult:
    """Convenience wrapper: build the named strategy and run it on ``spec``."""
    return make_strategy(strategy, **kwargs).design(spec)


def fits_future_application(
    designed_schedule: SystemSchedule,
    future_application: Application,
    architecture: Architecture,
) -> bool:
    """Whether ``future_application`` can be mapped on the designed system.

    This is the acceptance test of the paper's third experiment
    (slide 17): after the current application has been designed, a
    concrete future application arrives; it fits when the Initial
    Mapper finds a valid mapping and schedule in the remaining slack
    without touching anything already placed.
    """
    from repro.core.initial_mapping import InitialMapper

    mapper = InitialMapper(architecture)
    outcome = mapper.try_map_and_schedule(
        future_application, base=designed_schedule
    )
    return outcome is not None


def timed(func):
    """Decorator measuring a strategy's ``design`` wall-clock runtime.

    The wrapped method must return a :class:`DesignResult`; its
    ``runtime_seconds`` field is filled in.
    """

    def wrapper(self, spec: DesignSpec) -> DesignResult:
        start = time.perf_counter()
        result = func(self, spec)
        result.runtime_seconds = time.perf_counter() - start
        return result

    wrapper.__doc__ = func.__doc__
    wrapper.__name__ = func.__name__
    return wrapper
