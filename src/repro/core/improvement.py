"""Steepest-descent improvement over the high-potential neighbourhood.

This is the inner loop of the Mapping Heuristic, factored out so the
Simulated Annealing reference can *polish* its best design with the
same exact-evaluation descent (annealing explores globally; the final
descent walks to the bottom of the basin it found).  Keeping one
implementation guarantees MH and SA optimize over exactly the same
transformation neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.slack import slack_fragmentation, window_slack_profile
from repro.core.strategy import DesignEvaluator, DesignSpec, EvaluatedDesign
from repro.core.transformations import (
    DelayMessage,
    RemapProcess,
    SwapPriorities,
    Transformation,
)
from repro.sched.schedule import SystemSchedule
from repro.utils.timemath import periodic_windows


@dataclass(frozen=True)
class DescentParams:
    """Knobs of the steepest-descent loop (shared by MH and SA-polish).

    Attributes
    ----------
    pool_size:
        Number of highest-potential candidate processes per iteration.
    max_iterations:
        Maximum number of applied moves.
    min_improvement:
        Required strict objective decrease per applied move.
    use_message_moves:
        Whether bus-slack (message-delay) moves are generated.
    """

    pool_size: int = 8
    max_iterations: int = 64
    min_improvement: float = 1e-9
    use_message_moves: bool = True


def select_candidates(
    spec: DesignSpec, evaluated: EvaluatedDesign, pool_size: int
) -> List[str]:
    """Top current-application processes by improvement potential.

    Scoring follows the two design criteria: a process scores its
    node's slack fragmentation (criterion 1 -- moving it may coalesce
    gaps) plus 1 if any of its instances executes inside the node's
    worst ``T_min`` window (criterion 2 -- moving it directly relieves
    the binding window).  Larger WCETs win ties.
    """
    schedule = evaluated.schedule
    mapping = evaluated.mapping
    frag = slack_fragmentation(schedule)
    profile = window_slack_profile(schedule, spec.future.t_min)
    worst_index = {
        node_id: min(range(len(slacks)), key=lambda i: slacks[i])
        for node_id, slacks in profile.items()
    }
    windows = periodic_windows(schedule.horizon, spec.future.t_min)
    horizon = spec.effective_horizon()

    scored: List[Tuple[float, int, str]] = []
    for proc in spec.current.processes:
        node_id = mapping.node_of(proc.id)
        score = frag[node_id].fragmentation
        wcet = proc.wcet_on(node_id)
        worst = windows[worst_index[node_id]]
        period = spec.current.graph_of(proc.id).period
        for instance in range(horizon // period):
            entry = schedule.entry_of(proc.id, instance)
            if entry is not None and entry.interval.overlaps(worst):
                score += 1.0
                break
        scored.append((score, wcet, proc.id))
    scored.sort(key=lambda t: (-t[0], -t[1], t[2]))
    return [pid for _, _, pid in scored[:pool_size]]


def schedule_neighbours(
    spec: DesignSpec,
    schedule: SystemSchedule,
    process_id: str,
    node_id: str,
) -> List[str]:
    """Current-app processes scheduled adjacent to ``process_id``.

    Swapping priorities with a schedule neighbour realizes "move the
    process to a different slack on the *same* processor": the two
    trade places in the list-scheduling order.
    """
    entries = [
        e
        for e in schedule.entries_on(node_id)
        if not e.frozen and e.process_id in spec.current
    ]
    neighbours: List[str] = []
    for i, entry in enumerate(entries):
        if entry.process_id != process_id:
            continue
        if i > 0 and entries[i - 1].process_id != process_id:
            neighbours.append(entries[i - 1].process_id)
        if i + 1 < len(entries) and entries[i + 1].process_id != process_id:
            neighbours.append(entries[i + 1].process_id)
    seen = set()
    unique: List[str] = []
    for n in neighbours:
        if n not in seen:
            seen.add(n)
            unique.append(n)
    return unique


def generate_moves(
    spec: DesignSpec,
    evaluated: EvaluatedDesign,
    params: DescentParams,
) -> List[Transformation]:
    """The bounded high-potential neighbourhood of one design."""
    candidates = select_candidates(spec, evaluated, params.pool_size)
    mapping = evaluated.mapping
    schedule = evaluated.schedule
    moves: List[Transformation] = []

    for pid in candidates:
        process = spec.current.process(pid)
        current_node = mapping.node_of(pid)
        for node_id in process.allowed_nodes:
            if node_id != current_node:
                moves.append(RemapProcess(pid, node_id))
        for neighbour in schedule_neighbours(spec, schedule, pid, current_node):
            moves.append(SwapPriorities(pid, neighbour))

    if params.use_message_moves:
        delays = evaluated.design.message_delays
        for pid in candidates:
            graph = spec.current.graph_of(pid)
            for msg in graph.out_messages(pid):
                if mapping.node_of(msg.src) == mapping.node_of(msg.dst):
                    continue
                moves.append(DelayMessage(msg.id, +1))
                if delays.get(msg.id, 0) > 0:
                    moves.append(DelayMessage(msg.id, -1))
    return moves


def best_improving_move(
    evaluator: DesignEvaluator,
    best: EvaluatedDesign,
    moves: List[Transformation],
    min_improvement: float,
) -> Optional[EvaluatedDesign]:
    """Exactly evaluate every move; return the steepest improvement.

    The whole neighbourhood is scored in one :meth:`evaluate_moves`
    batch against the shared parent ``best`` -- cached outcomes are
    served directly, the remainder is rescheduled incrementally from
    the parent's checkpoints (or cold with ``--no-delta``), in
    parallel when the evaluator runs with ``jobs > 1``.  The winner
    scan walks the results in move order, so serial, cached, delta and
    parallel runs pick the identical move.
    """
    winner: Optional[EvaluatedDesign] = None
    for evaluated in evaluator.evaluate_moves(best, moves):
        if evaluated is None:
            continue
        target = winner.objective if winner is not None else best.objective
        if evaluated.objective < target - min_improvement:
            winner = evaluated
    return winner


def steepest_descent(
    spec: DesignSpec,
    evaluator: DesignEvaluator,
    start: EvaluatedDesign,
    params: Optional[DescentParams] = None,
) -> EvaluatedDesign:
    """Apply best improving moves until a local optimum (or iteration cap)."""
    if params is None:
        params = DescentParams()
    best = start
    for _ in range(params.max_iterations):
        moves = generate_moves(spec, best, params)
        improved = best_improving_move(
            evaluator, best, moves, params.min_improvement
        )
        if improved is None:
            break
        best = improved
    return best
