"""Steepest-descent improvement over the high-potential neighbourhood.

This is the inner loop of the Mapping Heuristic, shared with the
Simulated Annealing reference's *polish* phase (annealing explores
globally; the final descent walks to the bottom of the basin it found).
Since the search-kernel refactor the descent is a thin configuration of
:class:`repro.search.SearchLoop` -- the neighbourhood enumeration lives
in :mod:`repro.search.proposers` (re-exported here for compatibility)
and the steepest-improvement policy is
:class:`repro.search.GreedyAcceptor`; one kernel implementation
guarantees MH and SA optimize over exactly the same transformation
neighbourhood with exactly the same acceptance rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.strategy import DesignEvaluator, DesignSpec, EvaluatedDesign
from repro.core.transformations import Transformation
from repro.search.acceptors import GreedyAcceptor
from repro.search.budget import Budget
from repro.search.loop import SearchLoop, SearchOutcome
from repro.search.proposers import (  # noqa: F401  (compatibility re-exports)
    NeighbourhoodProposer,
    schedule_neighbours,
    select_candidates,
)
from repro.search.proposers import generate_moves as _generate_moves


@dataclass(frozen=True)
class DescentParams:
    """Knobs of the steepest-descent loop (shared by MH and SA-polish).

    Attributes
    ----------
    pool_size:
        Number of highest-potential candidate processes per iteration.
    max_iterations:
        Maximum number of applied moves.
    min_improvement:
        Required strict objective decrease per applied move.
    use_message_moves:
        Whether bus-slack (message-delay) moves are generated.
    """

    pool_size: int = 8
    max_iterations: int = 64
    min_improvement: float = 1e-9
    use_message_moves: bool = True


def generate_moves(
    spec: DesignSpec,
    evaluated: EvaluatedDesign,
    params: DescentParams,
) -> List[Transformation]:
    """The bounded high-potential neighbourhood of one design."""
    return _generate_moves(
        spec, evaluated, params.pool_size, params.use_message_moves
    )


def best_improving_move(
    evaluator: DesignEvaluator,
    best: EvaluatedDesign,
    moves: List[Transformation],
    min_improvement: float,
) -> Optional[EvaluatedDesign]:
    """Exactly evaluate every move; return the steepest improvement.

    The whole neighbourhood is scored in one :meth:`evaluate_moves`
    batch against the shared parent ``best`` -- cached outcomes are
    served directly, the remainder is rescheduled incrementally from
    the parent's checkpoints (or cold with ``--no-delta``), in
    parallel when the evaluator runs with ``jobs > 1``.  The winner
    scan walks the results in move order, so serial, cached, delta and
    parallel runs pick the identical move.
    """
    if not moves:
        return None
    results = evaluator.evaluate_moves(best, moves)
    return GreedyAcceptor(min_improvement).decide(best, moves, results, None)


def descent_loop(
    params: Optional[DescentParams] = None,
    budget: Optional[Budget] = None,
    name: str = "descent",
) -> SearchLoop:
    """The steepest-descent search as a kernel :class:`SearchLoop`.

    ``params.max_iterations`` becomes a step budget, combined (``&``)
    with any externally supplied ``budget`` -- the tighter limit wins
    on every axis.
    """
    if params is None:
        params = DescentParams()
    return SearchLoop(
        proposer=NeighbourhoodProposer(
            pool_size=params.pool_size,
            use_message_moves=params.use_message_moves,
        ),
        acceptor=GreedyAcceptor(params.min_improvement),
        budget=Budget.combine(Budget(max_steps=params.max_iterations), budget),
        name=name,
    )


def steepest_descent(
    spec: DesignSpec,
    evaluator: DesignEvaluator,
    start: EvaluatedDesign,
    params: Optional[DescentParams] = None,
    budget: Optional[Budget] = None,
) -> EvaluatedDesign:
    """Apply best improving moves until a local optimum (or budget cut)."""
    return steepest_descent_outcome(
        spec, evaluator, start, params, budget
    ).incumbent


def steepest_descent_outcome(
    spec: DesignSpec,
    evaluator: DesignEvaluator,
    start: EvaluatedDesign,
    params: Optional[DescentParams] = None,
    budget: Optional[Budget] = None,
) -> SearchOutcome:
    """:func:`steepest_descent` with full stats and checkpoint."""
    return descent_loop(params, budget).run(spec, evaluator, start=start)
