"""Initial Mapping (IM) -- slide 11.

IM constructs a first valid mapping and schedule of the current
application on top of the frozen existing reservations.  Its starting
point is the Heterogeneous Critical Path (HCP) algorithm of Jorgensen &
Madsen (CODES'97): list scheduling where the most critical ready
process is selected first and is mapped to the processing node that
lets it *finish earliest*, accounting for heterogeneous WCETs, the TDMA
bus delay of its input messages, and the gaps left by already-placed
reservations.

A process's node is locked when its first periodic instance is placed;
later instances reuse it (a process has exactly one mapping).  If the
earliest-finish node turns out infeasible at commit time (message
packing interactions), the next-best candidate is tried, so IM performs
a small amount of backtracking per process.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.sched.jobs import Job, expand_jobs
from repro.sched.priorities import PriorityMap, hcp_priorities
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import MappingError, SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.compiled_spec import CompiledSpec


class InitialMapper:
    """HCP-seeded initial mapping and scheduling (the paper's IM step)."""

    name = "IM"

    def __init__(self, architecture: Architecture):
        self.architecture = architecture

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def map_and_schedule(
        self,
        application: Application,
        base: Optional[SystemSchedule] = None,
        horizon: Optional[int] = None,
        frozen: bool = False,
        priorities: Optional[PriorityMap] = None,
    ) -> Tuple[Mapping, SystemSchedule]:
        """Produce a valid (mapping, schedule) pair or raise.

        Raises
        ------
        repro.utils.errors.MappingError
            When no valid design is found (requirement (a) cannot be
            met by IM).
        """
        outcome = self.try_map_and_schedule(
            application, base, horizon, frozen, priorities
        )
        if outcome is None:
            raise MappingError(
                f"initial mapping failed for application {application.name!r}"
            )
        return outcome

    def try_map_and_schedule(
        self,
        application: Application,
        base: Optional[SystemSchedule] = None,
        horizon: Optional[int] = None,
        frozen: bool = False,
        priorities: Optional[PriorityMap] = None,
        restarts: int = 3,
        compiled: Optional["CompiledSpec"] = None,
    ) -> Optional[Tuple[Mapping, SystemSchedule]]:
        """Like :meth:`map_and_schedule` but returns ``None`` on failure.

        When the HCP-ordered greedy pass fails, up to ``restarts``
        further passes run with deterministically jittered priorities
        (seeded from the attempt index), exploring different ready-list
        orders.  This recovers most fragmented-slack instances that the
        single greedy order misses, at zero cost on the success path.
        ``restarts`` only applies when ``priorities`` is not supplied
        explicitly.

        ``compiled`` is an optional
        :class:`repro.engine.compiled_spec.CompiledSpec` for this exact
        problem; its precomputed job table, base template and default
        priorities are reused instead of re-derived, and ``base`` /
        ``horizon`` are ignored.
        """
        if priorities is not None:
            return self._attempt_once(
                application, base, horizon, frozen, priorities, compiled
            )
        from repro.utils.rng import make_rng

        base_priorities = (
            compiled.default_priorities
            if compiled is not None
            else hcp_priorities(application, self.architecture.bus)
        )
        outcome = self._attempt_once(
            application, base, horizon, frozen, base_priorities, compiled
        )
        attempt = 0
        while outcome is None and attempt < restarts:
            rng = make_rng(attempt)
            jittered = {
                pid: value * float(rng.uniform(0.6, 1.4))
                for pid, value in base_priorities.items()
            }
            outcome = self._attempt_once(
                application, base, horizon, frozen, jittered, compiled
            )
            attempt += 1
        return outcome

    def _attempt_once(
        self,
        application: Application,
        base: Optional[SystemSchedule] = None,
        horizon: Optional[int] = None,
        frozen: bool = False,
        priorities: Optional[PriorityMap] = None,
        compiled: Optional["CompiledSpec"] = None,
    ) -> Optional[Tuple[Mapping, SystemSchedule]]:
        """One greedy HCP mapping/scheduling pass."""
        if compiled is not None:
            compiled.validate_against(application, base, horizon)
            schedule = compiled.fresh_schedule()
            table = compiled.job_table
            if priorities is None:
                priorities = compiled.default_priorities
        else:
            if base is not None:
                schedule = base.copy()
                if horizon is not None and horizon != base.horizon:
                    raise SchedulingError(
                        f"requested horizon {horizon} differs from base "
                        f"horizon {base.horizon}"
                    )
            else:
                schedule = SystemSchedule(
                    self.architecture,
                    horizon
                    if horizon is not None
                    else application.hyperperiod(),
                )
            for graph in application.graphs:
                if schedule.horizon % graph.period != 0:
                    raise SchedulingError(
                        f"graph {graph.name!r} period {graph.period} does "
                        f"not divide the horizon {schedule.horizon}"
                    )
            table = expand_jobs(application, schedule.horizon)
        if priorities is None:
            priorities = hcp_priorities(application, self.architecture.bus)

        mapping = Mapping(application, self.architecture)
        locked: Dict[str, str] = {}

        jobs: Dict[Tuple[str, int], Job] = table.jobs
        preds_left: Dict[Tuple[str, int], int] = table.fresh_preds()
        finish: Dict[Tuple[str, int], int] = {}

        ready: List[Tuple[float, int, str, int]] = []
        for key in table.sources:
            job = jobs[key]
            heapq.heappush(
                ready,
                (
                    # Latest-start-time urgency; see
                    # repro.sched.trace.heap_key for the rationale.
                    job.abs_deadline - priorities.get(job.process_id, 0.0),
                    job.release,
                    job.process_id,
                    job.instance,
                ),
            )

        while ready:
            _, _, pid, instance = heapq.heappop(ready)
            key = (pid, instance)
            job = jobs[key]
            graph = application.graph_of(pid)
            process = application.process(pid)

            if pid in locked:
                candidates = [locked[pid]]
            else:
                candidates = self._rank_candidates(
                    application, schedule, job, process, graph, finish
                )

            committed = False
            for node_id in candidates:
                end = self._commit(
                    application, schedule, job, node_id, graph, finish
                )
                if end is not None:
                    if pid not in locked:
                        locked[pid] = node_id
                        mapping.assign(pid, node_id)
                    finish[key] = end
                    committed = True
                    break
            if not committed:
                return None

            for succ in graph.successors(pid):
                succ_key = (succ, instance)
                preds_left[succ_key] -= 1
                if preds_left[succ_key] == 0:
                    succ_job = jobs[succ_key]
                    heapq.heappush(
                        ready,
                        (
                            succ_job.abs_deadline
                            - priorities.get(succ, 0.0),
                            succ_job.release,
                            succ,
                            succ_job.instance,
                        ),
                    )

        mapping.validate_complete()
        if frozen:
            # Entries are placed unfrozen so candidate rollback can
            # remove them; freeze the finished schedule in one sweep.
            schedule.freeze_all()
        return mapping, schedule

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rank_candidates(
        self,
        application: Application,
        schedule: SystemSchedule,
        job: Job,
        process,
        graph,
        finish: Dict[Tuple[str, int], int],
    ) -> List[str]:
        """Allowed nodes ordered by estimated finish time (HCP rule).

        The estimate queries the bus for each input message without
        placing anything; commit-time interactions may shift the real
        finish slightly, which the caller's backtracking absorbs.
        """
        scored: List[Tuple[int, int, str]] = []
        for node_id in process.allowed_nodes:
            wcet = process.wcet_on(node_id)
            est = job.release
            feasible = True
            for msg in graph.in_messages(job.process_id):
                pred_key = (msg.src, job.instance)
                pred_entry = schedule.entry_of(msg.src, job.instance)
                assert pred_entry is not None  # preds are scheduled first
                if pred_entry.node_id == node_id:
                    arrival = finish[pred_key]
                else:
                    round_index = schedule.bus.earliest_round_with_room(
                        pred_entry.node_id, msg.size, finish[pred_key]
                    )
                    if round_index is None:
                        feasible = False
                        break
                    arrival = schedule.bus.bus.occurrence_window(
                        pred_entry.node_id, round_index
                    ).end
                est = max(est, arrival)
            if not feasible:
                continue
            start = schedule.earliest_fit(node_id, wcet, est)
            end = start + wcet
            if end > schedule.horizon or end > job.abs_deadline:
                continue
            scored.append((end, wcet, node_id))
        scored.sort()
        return [node_id for _, _, node_id in scored]

    def _commit(
        self,
        application: Application,
        schedule: SystemSchedule,
        job: Job,
        node_id: str,
        graph,
        finish: Dict[Tuple[str, int], int],
    ) -> Optional[int]:
        """Place the job and its input messages on ``node_id``, for real.

        Returns the finish time, or ``None`` after rolling back every
        partial placement when the node turns out infeasible.  Entries
        are always placed unfrozen; the caller freezes the completed
        schedule when building an existing-application base.
        """
        process = application.process(job.process_id)
        wcet = process.wcet_on(node_id)
        placed_messages: List[Tuple[str, int]] = []
        est = job.release
        ok = True
        for msg in graph.in_messages(job.process_id):
            pred_entry = schedule.entry_of(msg.src, job.instance)
            assert pred_entry is not None
            pred_finish = finish[(msg.src, job.instance)]
            if pred_entry.node_id == node_id:
                arrival = pred_finish
            else:
                round_index = schedule.bus.earliest_round_with_room(
                    pred_entry.node_id, msg.size, pred_finish
                )
                if round_index is None:
                    ok = False
                    break
                schedule.bus.place(
                    msg.id,
                    job.instance,
                    pred_entry.node_id,
                    round_index,
                    msg.size,
                )
                placed_messages.append((msg.id, job.instance))
                arrival = schedule.bus.bus.occurrence_window(
                    pred_entry.node_id, round_index
                ).end
            est = max(est, arrival)

        if ok:
            start = schedule.earliest_fit(node_id, wcet, est)
            end = start + wcet
            if end > schedule.horizon or end > job.abs_deadline:
                ok = False
            else:
                schedule.place_process(
                    job.process_id, job.instance, node_id, start, wcet
                )
                return end

        # Roll back message placements made for this candidate, in
        # reverse placement order.
        for msg_id, instance in reversed(placed_messages):
            schedule.bus.remove(msg_id, instance)
        return None
