"""Design transformations (slide 14).

The paper's optimization strategies improve a design by applying two
kinds of moves to the current application:

* *moving a process to a different slack on the same or a different
  processor*, and
* *moving a message to a different slack on the bus*.

A candidate design here is the triple
``(mapping, priorities, message_delays)`` wrapped in
:class:`CandidateDesign`; the static cyclic schedule is a deterministic
function of that triple (the list scheduler).  The paper's moves map to
three concrete transformations:

* :class:`RemapProcess` -- change the node a process is mapped to
  (moves the process, and implicitly its messages, to the slack of a
  different processor / bus slot);
* :class:`SwapPriorities` -- exchange the list-scheduling priorities of
  two processes, reordering the ready list so the process lands in a
  different slack of the *same* processor;
* :class:`DelayMessage` -- make a message skip feasible TDMA slot
  occurrences, moving it to a later slack on the bus.

Every transformation is pure: ``apply`` returns fresh copies and leaves
the input design untouched, so strategies can fan out many moves from
one base design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Union

from repro.model.mapping import Mapping
from repro.sched.priorities import PriorityMap


@dataclass
class CandidateDesign:
    """A point in the search space of the optimization strategies.

    Attributes
    ----------
    mapping:
        Process-to-node assignment of the current application.
    priorities:
        List-scheduling priorities (higher runs first among ready).
    message_delays:
        Per-message feasible-slot skips (absent means 0).
    """

    mapping: Mapping
    priorities: PriorityMap
    message_delays: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "CandidateDesign":
        """An independent copy of the design point."""
        return CandidateDesign(
            self.mapping.copy(),
            dict(self.priorities),
            dict(self.message_delays),
        )


@dataclass(frozen=True)
class RemapProcess:
    """Move ``process_id`` onto ``node_id`` (a different-processor slack)."""

    process_id: str
    node_id: str

    def apply(self, design: CandidateDesign) -> CandidateDesign:
        """Return a new design with the process remapped."""
        out = design.copy()
        out.mapping.assign(self.process_id, self.node_id)
        return out

    def describe(self) -> str:
        return f"remap {self.process_id} -> {self.node_id}"


@dataclass(frozen=True)
class SwapPriorities:
    """Exchange scheduling priorities of two processes (same-resource shuffle)."""

    first: str
    second: str

    def apply(self, design: CandidateDesign) -> CandidateDesign:
        """Return a new design with the two priorities swapped."""
        out = design.copy()
        a = out.priorities.get(self.first, 0.0)
        b = out.priorities.get(self.second, 0.0)
        out.priorities[self.first] = b
        out.priorities[self.second] = a
        return out

    def describe(self) -> str:
        return f"swap priority {self.first} <-> {self.second}"


@dataclass(frozen=True)
class DelayMessage:
    """Shift ``message_id`` by ``delta`` feasible slot occurrences.

    The resulting delay is clamped at zero; a move that would leave the
    delay unchanged still produces a (trivially equal) new design and
    is filtered out by the strategies' improvement test.
    """

    message_id: str
    delta: int

    def apply(self, design: CandidateDesign) -> CandidateDesign:
        """Return a new design with the message delay adjusted."""
        out = design.copy()
        current = out.message_delays.get(self.message_id, 0)
        new = max(0, current + self.delta)
        if new == 0:
            out.message_delays.pop(self.message_id, None)
        else:
            out.message_delays[self.message_id] = new
        return out

    def describe(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return f"delay message {self.message_id} {sign}{self.delta} slots"


Transformation = Union[RemapProcess, SwapPriorities, DelayMessage]


def remap_moves(
    mapping: Mapping, process_ids: Iterable[str]
) -> List[RemapProcess]:
    """All single-process remap moves for the given processes."""
    moves: List[RemapProcess] = []
    for pid in process_ids:
        current = mapping.node_of(pid)
        process = mapping.application.process(pid)
        for node_id in process.allowed_nodes:
            if node_id != current:
                moves.append(RemapProcess(pid, node_id))
    return moves
