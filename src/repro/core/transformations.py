"""Design transformations (slide 14).

The paper's optimization strategies improve a design by applying two
kinds of moves to the current application:

* *moving a process to a different slack on the same or a different
  processor*, and
* *moving a message to a different slack on the bus*.

A candidate design here is the triple
``(mapping, priorities, message_delays)`` wrapped in
:class:`CandidateDesign`; the static cyclic schedule is a deterministic
function of that triple (the list scheduler).  The paper's moves map to
three concrete transformations:

* :class:`RemapProcess` -- change the node a process is mapped to
  (moves the process, and implicitly its messages, to the slack of a
  different processor / bus slot);
* :class:`SwapPriorities` -- exchange the list-scheduling priorities of
  two processes, reordering the ready list so the process lands in a
  different slack of the *same* processor;
* :class:`DelayMessage` -- make a message skip feasible TDMA slot
  occurrences, moving it to a later slack on the bus.

Every transformation is pure: ``apply`` returns fresh copies and leaves
the input design untouched, so strategies can fan out many moves from
one base design.

Every transformation also declares its **footprint**: the dirty set of
processes, nodes and messages whose scheduling decisions the move can
affect directly.  The incremental evaluation kernel
(:mod:`repro.engine.delta`) turns a footprint into the earliest point
where a child schedule can diverge from its parent, and reschedules
only from there.  Footprints are *direct* dirty sets -- ripple effects
(a displaced process freeing a gap another process then takes) are
handled by the divergence/resume machinery, not declared here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Union

from repro.model.mapping import Mapping
from repro.sched.priorities import PriorityMap


@dataclass(frozen=True)
class MoveFootprint:
    """The dirty set one transformation can affect directly.

    Attributes
    ----------
    processes:
        Processes whose *pop-time* behavior changes: their own
        placement (node, WCET) or the delivery of a message they send.
        The child schedule cannot diverge from the parent before the
        first pop of one of these processes' instances.
    reprioritized:
        Processes whose ready-heap key changes.  Divergence can start
        as soon as one of their instances sits in the ready heap and
        the new key would win (or lose) a pop it previously lost (or
        won).
    nodes:
        Nodes whose timeline the move touches directly (the remap's
        source/target, the priority swap's node, the delayed message's
        sender).  Diagnostic: the full dirty-node set of a child is
        only known after rescheduling, because displaced work ripples.
    messages:
        Messages whose bus placement the move changes directly.
    """

    processes: FrozenSet[str] = frozenset()
    reprioritized: FrozenSet[str] = frozenset()
    nodes: FrozenSet[str] = frozenset()
    messages: FrozenSet[str] = frozenset()


@dataclass
class CandidateDesign:
    """A point in the search space of the optimization strategies.

    Attributes
    ----------
    mapping:
        Process-to-node assignment of the current application.
    priorities:
        List-scheduling priorities (higher runs first among ready).
    message_delays:
        Per-message feasible-slot skips (absent means 0).
    """

    mapping: Mapping
    priorities: PriorityMap
    message_delays: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "CandidateDesign":
        """An independent copy of the design point."""
        return CandidateDesign(
            self.mapping.copy(),
            dict(self.priorities),
            dict(self.message_delays),
        )


@dataclass(frozen=True)
class RemapProcess:
    """Move ``process_id`` onto ``node_id`` (a different-processor slack)."""

    process_id: str
    node_id: str

    def apply(self, design: CandidateDesign) -> CandidateDesign:
        """Return a new design with the process remapped."""
        out = design.copy()
        out.mapping.assign(self.process_id, self.node_id)
        return out

    def footprint(self, design: CandidateDesign) -> MoveFootprint:
        """Dirty set: the process, affected deliveries, both nodes.

        Besides the remapped process itself, a *predecessor* is
        placement-dirty when the delivery of its message into the
        process changes: the delivery happens while the predecessor's
        job is popped, and its shape depends only on whether sender and
        receiver share a node (the bus slot is the *sender's*).  A
        sender mapped to neither the old nor the new node keeps an
        identical delivery -- same slot, same ready time -- and stays
        clean.
        """
        mapping = design.mapping
        graph = mapping.application.graph_of(self.process_id)
        in_messages = graph.in_messages(self.process_id)
        out_messages = graph.out_messages(self.process_id)
        old_node = mapping.node_of(self.process_id)
        dirty = [self.process_id]
        dirty_messages = [msg.id for msg in out_messages]
        for msg in in_messages:
            if mapping.node_of(msg.src) in (old_node, self.node_id):
                dirty.append(msg.src)
                dirty_messages.append(msg.id)
        return MoveFootprint(
            processes=frozenset(dirty),
            nodes=frozenset([old_node, self.node_id]),
            messages=frozenset(dirty_messages),
        )

    def describe(self) -> str:
        return f"remap {self.process_id} -> {self.node_id}"


@dataclass(frozen=True)
class SwapPriorities:
    """Exchange scheduling priorities of two processes (same-resource shuffle)."""

    first: str
    second: str

    def apply(self, design: CandidateDesign) -> CandidateDesign:
        """Return a new design with the two priorities swapped."""
        out = design.copy()
        a = out.priorities.get(self.first, 0.0)
        b = out.priorities.get(self.second, 0.0)
        out.priorities[self.first] = b
        out.priorities[self.second] = a
        return out

    def footprint(self, design: CandidateDesign) -> MoveFootprint:
        """Dirty set: only the two re-keyed processes (and their nodes)."""
        return MoveFootprint(
            reprioritized=frozenset([self.first, self.second]),
            nodes=frozenset(
                [
                    design.mapping.node_of(self.first),
                    design.mapping.node_of(self.second),
                ]
            ),
        )

    def describe(self) -> str:
        return f"swap priority {self.first} <-> {self.second}"


@dataclass(frozen=True)
class DelayMessage:
    """Shift ``message_id`` by ``delta`` feasible slot occurrences.

    The resulting delay is clamped at zero; a move that would leave the
    delay unchanged still produces a (trivially equal) new design and
    is filtered out by the strategies' improvement test.
    """

    message_id: str
    delta: int

    def apply(self, design: CandidateDesign) -> CandidateDesign:
        """Return a new design with the message delay adjusted."""
        out = design.copy()
        current = out.message_delays.get(self.message_id, 0)
        new = max(0, current + self.delta)
        if new == 0:
            out.message_delays.pop(self.message_id, None)
        else:
            out.message_delays[self.message_id] = new
        return out

    def footprint(self, design: CandidateDesign) -> MoveFootprint:
        """Dirty set: the sender (deliveries happen at its pop) + slot."""
        message = design.mapping.application.message(self.message_id)
        return MoveFootprint(
            processes=frozenset([message.src]),
            nodes=frozenset([design.mapping.node_of(message.src)]),
            messages=frozenset([self.message_id]),
        )

    def describe(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return f"delay message {self.message_id} {sign}{self.delta} slots"


Transformation = Union[RemapProcess, SwapPriorities, DelayMessage]


def remap_moves(
    mapping: Mapping, process_ids: Iterable[str]
) -> List[RemapProcess]:
    """All single-process remap moves for the given processes."""
    moves: List[RemapProcess] = []
    for pid in process_ids:
        current = mapping.node_of(pid)
        process = mapping.application.process(pid)
        for node_id in process.allowed_nodes:
            if node_id != current:
                moves.append(RemapProcess(pid, node_id))
    return moves
