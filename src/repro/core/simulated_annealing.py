"""Simulated Annealing (SA) -- the paper's near-optimal reference.

Slide 14 uses SA to obtain "near optimal value for C": a slow but
thorough stochastic search whose result the faster strategies are
measured against (slide 15 reports AH's and MH's average percentage
deviation from SA).

The implementation is classical Metropolis annealing over the same
search space as MH -- :class:`repro.core.transformations.CandidateDesign`
points mutated by remap / priority-swap / message-delay moves -- with a
geometric cooling schedule and an automatically calibrated initial
temperature (mean uphill delta of a random probe walk).  Invalid
candidates (deadline misses) are always rejected, so requirement (a)
holds at every accepted state.

Since the search-kernel refactor the whole pipeline is a sequence of
:class:`repro.search.SearchLoop` phases sharing one RNG stream --
calibration probe (random proposer + accept-any), Metropolis walk
(random proposer + Metropolis acceptor), and the polish descents
(neighbourhood proposer + greedy acceptor, shared with MH).  The phase
sequence draws random numbers in exactly the legacy order, so seeded
SA results are byte-identical to the pre-refactor implementation.
:meth:`search_program` exposes the pipeline as one kernel program for
the portfolio runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.improvement import descent_loop
from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import (
    DesignEvaluator,
    DesignResult,
    DesignSpec,
    timed,
)
from repro.core.transformations import CandidateDesign
from repro.engine.cache import DEFAULT_MAX_ENTRIES
from repro.search.acceptors import AcceptAny, MetropolisAcceptor
from repro.search.budget import Budget
from repro.search.checkpoint import (
    MemberCheckpoint,
    MemberPaused,
    design_from_dict,
    design_to_dict,
)
from repro.search.loop import EvalRequest, SearchLoop, drive
from repro.search.proposers import RandomMoveProposer
from repro.search.stats import SearchStats
from repro.utils.rng import SeedLike, make_rng


@dataclass
class SimulatedAnnealing:
    """Metropolis annealing over candidate designs.

    Parameters
    ----------
    iterations:
        Total number of proposed moves (the dominant cost knob; the
        paper's SA ran for tens of minutes, this default is sized for
        laptop-scale scenarios).
    initial_temperature:
        Starting temperature; ``None`` calibrates it from a random
        probe of ``probe_moves`` deltas.
    cooling:
        Geometric cooling factor per step (applied so the temperature
        decays smoothly across ``iterations``).
    min_temperature:
        Floor below which the search becomes pure descent.
    probe_moves:
        Probe-walk length for temperature auto-calibration.
    seed:
        RNG seed; every run with the same seed and spec is identical.
    polish:
        When True (default) the best annealed design is finished with
        the exact steepest-descent pass of
        :mod:`repro.core.improvement`, walking to the bottom of the
        basin SA found.  This keeps the reference "near optimal" even
        with moderate iteration budgets.
    use_cache:
        Memoize candidate evaluations in the engine; annealing revisits
        rejected design points constantly, so hit rates are high.
    jobs:
        Worker processes for the polish phase's neighbourhood batches;
        the Metropolis walk itself is inherently sequential.  Results
        are identical for any value.
    max_cache_entries:
        LRU bound of the engine's cache (``None`` = unbounded).
    use_delta:
        Serve each proposed move through the incremental evaluation
        kernel (reschedule from the current state's checkpoints); the
        walk threads the accepted state as the parent of the next
        proposal.  Results are identical with it off.
    budget:
        Optional external search budget, combined (``&``) into *each*
        phase's own cap (probe, walk, each polish descent) -- e.g.
        ``Budget(max_evaluations=n)`` bounds every phase at ``n``
        evaluations.  Step/evaluation/patience budgets cut a seeded
        run at an exact reproducible point.
    """

    iterations: int = 1500
    initial_temperature: Optional[float] = None
    cooling: float = 0.997
    min_temperature: float = 1e-3
    probe_moves: int = 24
    seed: SeedLike = 0
    polish: bool = True
    use_cache: bool = True
    jobs: int = 1
    max_cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES
    use_delta: bool = True
    engine_core: str = "array"
    cache_store: str = "memory"
    cache_path: Optional[str] = None
    budget: Optional[Budget] = None

    name = "SA"
    #: The pipeline supports cut+resume via ``MemberCheckpoint`` (the
    #: distributed race's steal/respawn protocol).
    resumable = True

    # ------------------------------------------------------------------
    @timed
    def design(self, spec: DesignSpec) -> DesignResult:
        """Anneal from the Initial Mapping and return the best design seen."""
        with DesignEvaluator(
            spec,
            use_cache=self.use_cache,
            jobs=self.jobs,
            max_cache_entries=self.max_cache_entries,
            use_delta=self.use_delta,
            engine_core=self.engine_core,
            cache_store=self.cache_store,
            cache_path=self.cache_path,
        ) as evaluator:
            result = drive(
                self.search_program(spec, evaluator.compiled), evaluator
            )
            if result.valid:
                result.record_engine_stats(evaluator)
            return result

    _PHASES = ("probe", "walk", "polish", "polish-from-start")

    # ------------------------------------------------------------------
    def search_program(
        self,
        spec: DesignSpec,
        compiled,
        resume: Optional[MemberCheckpoint] = None,
    ):
        """The SA pipeline as one kernel program (portfolio-raceable).

        Phases, in order, sharing one seeded RNG stream: Initial
        Mapping + cold start evaluation, temperature-calibration probe
        (unless ``initial_temperature`` is set), Metropolis walk, and
        -- with ``polish`` -- steepest descents from the walk's best
        and from the start, reporting the better basin.

        ``resume`` continues a pipeline cut by the distributed race's
        steal protocol.  The Initial Mapping and its cold evaluation
        are recomputed deterministically (served as uncharged
        ``bookkeeping`` requests -- warm cache hits in practice),
        completed phases are skipped using the carried stats, and the
        cut phase resumes from its loop checkpoint, so the continued
        trajectory is byte-identical to the uninterrupted run: the
        probe carries its calibration deltas, the walk's temperature
        and RNG stream ride in the loop checkpoint, and the polish
        descents draw no random numbers at all.
        """
        from repro.core.metrics import evaluate_design

        phase: Optional[str] = None
        carry: dict = {}
        if resume is not None:
            if resume.phase not in self._PHASES:
                raise ValueError(
                    f"SA cannot resume from phase {resume.phase!r}"
                )
            phase = resume.phase
            carry = resume.carry

        rng = make_rng(self.seed)
        mapper = InitialMapper(spec.architecture)
        outcome = mapper.try_map_and_schedule(
            spec.current,
            base=spec.base_schedule,
            horizon=None if spec.base_schedule else spec.horizon,
            compiled=compiled,
        )
        if outcome is None:
            return DesignResult(self.name, valid=False, evaluations=1)
        im_mapping, im_schedule = outcome

        results = yield EvalRequest(
            designs=[
                CandidateDesign(im_mapping, dict(compiled.default_priorities))
            ],
            bookkeeping=resume is not None,
        )
        current = results[0]
        if current is None:
            metrics = evaluate_design(im_schedule, spec.future, spec.weights)
            return DesignResult(
                self.name,
                valid=True,
                mapping=im_mapping,
                priorities=dict(compiled.default_priorities),
                schedule=im_schedule,
                metrics=metrics,
            )
        start = current
        phases: List[SearchStats] = [
            SearchStats.from_dict(dict(d)) for d in carry.get("phases", [])
        ]
        winner_phase = int(carry.get("winner_phase", 0))

        temperature = self.initial_temperature
        if temperature is None and phase in (None, "probe"):
            # Calibration: walk `probe_moves` random accepted steps and
            # set T0 to twice the mean |objective delta| (classical rule
            # of thumb -- at T0 most uphill moves should be accepted),
            # with a floor for flat landscapes.  The probe walks a
            # throwaway copy; the annealing starts from `start`.
            deltas: List[float] = [
                float(d) for d in carry.get("deltas", [])
            ]

            def record_delta(event) -> None:
                if event.accepted is not None:
                    deltas.append(
                        abs(event.accepted.objective - event.previous.objective)
                    )

            probe = SearchLoop(
                proposer=RandomMoveProposer(),
                acceptor=AcceptAny(),
                budget=Budget.combine(
                    Budget(max_steps=self.probe_moves), self.budget
                ),
                name="SA-probe",
            )
            try:
                if phase == "probe":
                    probed = yield from probe.program(
                        spec,
                        checkpoint=resume.loop,
                        rng=rng,
                        observer=record_delta,
                    )
                else:
                    probed = yield from probe.program(
                        spec, start=current, rng=rng, observer=record_delta
                    )
            except MemberPaused as pause:
                pause.checkpoint.strategy = self.name
                pause.checkpoint.phase = "probe"
                pause.checkpoint.carry = {"deltas": list(deltas)}
                raise
            phases.append(probed.stats)
            phase = None
            if not deltas:
                temperature = 10.0
            else:
                temperature = max(1.0, 2.0 * float(np.mean(deltas)))

        if phase in (None, "walk"):
            walk = SearchLoop(
                proposer=RandomMoveProposer(),
                acceptor=MetropolisAcceptor(
                    # On resume the placeholder is overwritten by the
                    # checkpointed acceptor state (the live temperature).
                    temperature if temperature is not None else 1.0,
                    self.cooling,
                    self.min_temperature,
                ),
                budget=Budget.combine(
                    Budget(max_steps=self.iterations), self.budget
                ),
                name="SA-walk",
            )
            try:
                if phase == "walk":
                    annealed = yield from walk.program(
                        spec, checkpoint=resume.loop, rng=rng
                    )
                else:
                    annealed = yield from walk.program(
                        spec, start=current, rng=rng
                    )
            except MemberPaused as pause:
                pause.checkpoint.strategy = self.name
                pause.checkpoint.phase = "walk"
                pause.checkpoint.carry = {
                    "phases": [s.as_dict() for s in phases]
                }
                raise
            phases.append(annealed.stats)
            best = annealed.incumbent
            winner_phase = len(phases) - 1
            phase = None
        else:
            # Resuming inside a polish descent: the walk is history;
            # its stats arrived via carry and the descent state (or the
            # carried post-polish best) stands in for its incumbent.
            best = None

        if self.polish:
            # Walk to the bottom of the basin the annealing found, and
            # also descend from the IM start: the reference reports the
            # best design seen anywhere, so it dominates the plain
            # descent heuristic (MH) by construction.
            if phase in (None, "polish"):
                try:
                    if phase == "polish":
                        polish = yield from descent_loop(
                            budget=self.budget, name="SA-polish"
                        ).program(spec, checkpoint=resume.loop)
                    else:
                        polish = yield from descent_loop(
                            budget=self.budget, name="SA-polish"
                        ).program(spec, start=best)
                except MemberPaused as pause:
                    pause.checkpoint.strategy = self.name
                    pause.checkpoint.phase = "polish"
                    pause.checkpoint.carry = {
                        "phases": [s.as_dict() for s in phases],
                        "winner_phase": winner_phase,
                    }
                    raise
                phases.append(polish.stats)
                best = polish.incumbent
                if polish.stats.improvements > 0:
                    winner_phase = len(phases) - 1
                phase = None
            else:
                # Resuming inside polish-from-start: rebuild the
                # post-polish incumbent from the carried design point
                # (uncharged bookkeeping re-evaluation, like the loop's
                # own resume re-evaluations).
                results = yield EvalRequest(
                    designs=[design_from_dict(carry["best"], spec)],
                    bookkeeping=True,
                )
                best = results[0]
                if best is None:
                    raise ValueError(
                        "carried best design no longer evaluates as valid; "
                        "the member checkpoint does not match this spec"
                    )
            try:
                if phase == "polish-from-start":
                    from_start = yield from descent_loop(
                        budget=self.budget, name="SA-polish-from-start"
                    ).program(spec, checkpoint=resume.loop)
                else:
                    from_start = yield from descent_loop(
                        budget=self.budget, name="SA-polish-from-start"
                    ).program(spec, start=start)
            except MemberPaused as pause:
                pause.checkpoint.strategy = self.name
                pause.checkpoint.phase = "polish-from-start"
                pause.checkpoint.carry = {
                    "phases": [s.as_dict() for s in phases],
                    "winner_phase": winner_phase,
                    "best": design_to_dict(best.design),
                }
                raise
            phases.append(from_start.stats)
            if from_start.incumbent.objective < best.objective:
                best = from_start.incumbent
                winner_phase = len(phases) - 1

        return DesignResult(
            self.name,
            valid=True,
            mapping=best.mapping,
            priorities=best.priorities,
            message_delays=dict(best.design.message_delays),
            schedule=best.schedule,
            metrics=best.metrics,
            search=SearchStats.merged(phases, winner=winner_phase),
        )
