"""Simulated Annealing (SA) -- the paper's near-optimal reference.

Slide 14 uses SA to obtain "near optimal value for C": a slow but
thorough stochastic search whose result the faster strategies are
measured against (slide 15 reports AH's and MH's average percentage
deviation from SA).

The implementation is classical Metropolis annealing over the same
search space as MH -- :class:`repro.core.transformations.CandidateDesign`
points mutated by remap / priority-swap / message-delay moves -- with a
geometric cooling schedule and an automatically calibrated initial
temperature (mean uphill delta of a random probe walk).  Invalid
candidates (deadline misses) are always rejected, so requirement (a)
holds at every accepted state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import (
    DesignEvaluator,
    DesignResult,
    DesignSpec,
    EvaluatedDesign,
    timed,
)
from repro.core.transformations import (
    CandidateDesign,
    DelayMessage,
    RemapProcess,
    SwapPriorities,
    Transformation,
)
from repro.engine.cache import DEFAULT_MAX_ENTRIES
from repro.utils.rng import SeedLike, make_rng


@dataclass
class SimulatedAnnealing:
    """Metropolis annealing over candidate designs.

    Parameters
    ----------
    iterations:
        Total number of proposed moves (the dominant cost knob; the
        paper's SA ran for tens of minutes, this default is sized for
        laptop-scale scenarios).
    initial_temperature:
        Starting temperature; ``None`` calibrates it from a random
        probe of ``probe_moves`` deltas.
    cooling:
        Geometric cooling factor per step (applied so the temperature
        decays smoothly across ``iterations``).
    min_temperature:
        Floor below which the search becomes pure descent.
    probe_moves:
        Probe-walk length for temperature auto-calibration.
    seed:
        RNG seed; every run with the same seed and spec is identical.
    polish:
        When True (default) the best annealed design is finished with
        the exact steepest-descent pass of
        :mod:`repro.core.improvement`, walking to the bottom of the
        basin SA found.  This keeps the reference "near optimal" even
        with moderate iteration budgets.
    use_cache:
        Memoize candidate evaluations in the engine; annealing revisits
        rejected design points constantly, so hit rates are high.
    jobs:
        Worker processes for the polish phase's neighbourhood batches;
        the Metropolis walk itself is inherently sequential.  Results
        are identical for any value.
    max_cache_entries:
        LRU bound of the engine's cache (``None`` = unbounded).
    use_delta:
        Serve each proposed move through the incremental evaluation
        kernel (reschedule from the current state's checkpoints); the
        walk threads the accepted state as the parent of the next
        proposal.  Results are identical with it off.
    """

    iterations: int = 1500
    initial_temperature: Optional[float] = None
    cooling: float = 0.997
    min_temperature: float = 1e-3
    probe_moves: int = 24
    seed: SeedLike = 0
    polish: bool = True
    use_cache: bool = True
    jobs: int = 1
    max_cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES
    use_delta: bool = True

    name = "SA"

    # ------------------------------------------------------------------
    @timed
    def design(self, spec: DesignSpec) -> DesignResult:
        """Anneal from the Initial Mapping and return the best design seen."""
        with DesignEvaluator(
            spec,
            use_cache=self.use_cache,
            jobs=self.jobs,
            max_cache_entries=self.max_cache_entries,
            use_delta=self.use_delta,
        ) as evaluator:
            return self._design(spec, evaluator)

    def _design(
        self, spec: DesignSpec, evaluator: DesignEvaluator
    ) -> DesignResult:
        rng = make_rng(self.seed)
        mapper = InitialMapper(spec.architecture)
        outcome = mapper.try_map_and_schedule(
            spec.current,
            base=spec.base_schedule,
            horizon=None if spec.base_schedule else spec.horizon,
            compiled=evaluator.compiled,
        )
        if outcome is None:
            return DesignResult(self.name, valid=False, evaluations=1)
        im_mapping, im_schedule = outcome

        current = evaluator.evaluate(
            CandidateDesign(
                im_mapping, dict(evaluator.compiled.default_priorities)
            )
        )
        if current is None:
            metrics = evaluator.engine.price(im_schedule)
            return DesignResult(
                self.name,
                valid=True,
                mapping=im_mapping,
                priorities=dict(evaluator.compiled.default_priorities),
                schedule=im_schedule,
                metrics=metrics,
            ).record_engine_stats(evaluator)
        start = current
        best = current

        temperature = self.initial_temperature
        if temperature is None:
            temperature = self._calibrate(spec, evaluator, current, rng)

        for _ in range(self.iterations):
            move = self._random_move(spec, current, rng)
            if move is None:
                break
            proposal = evaluator.evaluate_move(current, move)
            if proposal is not None and self._accept(
                proposal.objective - current.objective, temperature, rng
            ):
                current = proposal
                if current.objective < best.objective:
                    best = current
            temperature = max(self.min_temperature, temperature * self.cooling)

        if self.polish:
            from repro.core.improvement import steepest_descent

            # Walk to the bottom of the basin the annealing found, and
            # also descend from the IM start: the reference reports the
            # best design seen anywhere, so it dominates the plain
            # descent heuristic (MH) by construction.
            best = steepest_descent(spec, evaluator, best)
            from_start = steepest_descent(spec, evaluator, start)
            if from_start.objective < best.objective:
                best = from_start

        return DesignResult(
            self.name,
            valid=True,
            mapping=best.mapping,
            priorities=best.priorities,
            message_delays=dict(best.design.message_delays),
            schedule=best.schedule,
            metrics=best.metrics,
        ).record_engine_stats(evaluator)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _calibrate(
        self,
        spec: DesignSpec,
        evaluator: DesignEvaluator,
        start: EvaluatedDesign,
        rng: np.random.Generator,
    ) -> float:
        """Initial temperature = mean |delta| over a short random probe.

        Classical rule of thumb: at T0 the Metropolis test should accept
        most uphill moves, so T0 is set to twice the mean magnitude of
        probed objective changes (with a floor for flat landscapes).
        """
        deltas: List[float] = []
        current = start
        for _ in range(self.probe_moves):
            move = self._random_move(spec, current, rng)
            if move is None:
                break
            proposal = evaluator.evaluate_move(current, move)
            if proposal is None:
                continue
            deltas.append(abs(proposal.objective - current.objective))
            current = proposal
        if not deltas:
            return 10.0
        return max(1.0, 2.0 * float(np.mean(deltas)))

    def _random_move(
        self,
        spec: DesignSpec,
        current: EvaluatedDesign,
        rng: np.random.Generator,
    ) -> Optional[Transformation]:
        """Draw one random transformation of the current design."""
        processes = spec.current.processes
        if not processes:
            return None
        roll = rng.random()
        if roll < 0.55:
            # Remap a random process to a random *other* allowed node.
            for _ in range(8):
                proc = processes[rng.integers(len(processes))]
                options = [
                    n
                    for n in proc.allowed_nodes
                    if n != current.mapping.node_of(proc.id)
                ]
                if options:
                    return RemapProcess(
                        proc.id, options[rng.integers(len(options))]
                    )
            return self._random_swap(processes, rng)
        if roll < 0.85 or not spec.current.messages:
            return self._random_swap(processes, rng)
        # Message-delay move on a random inter-node message.
        messages = spec.current.messages
        for _ in range(8):
            msg = messages[rng.integers(len(messages))]
            if current.mapping.node_of(msg.src) != current.mapping.node_of(
                msg.dst
            ):
                delay = current.design.message_delays.get(msg.id, 0)
                delta = +1 if delay == 0 or rng.random() < 0.5 else -1
                return DelayMessage(msg.id, delta)
        return self._random_swap(processes, rng)

    @staticmethod
    def _random_swap(processes, rng: np.random.Generator) -> Optional[Transformation]:
        if len(processes) < 2:
            return None
        i, j = rng.choice(len(processes), size=2, replace=False)
        return SwapPriorities(processes[int(i)].id, processes[int(j)].id)

    @staticmethod
    def _accept(delta: float, temperature: float, rng: np.random.Generator) -> bool:
        """Metropolis acceptance test."""
        if delta <= 0:
            return True
        if temperature <= 0:
            return False
        return rng.random() < math.exp(-delta / temperature)
