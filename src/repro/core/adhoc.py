"""The Ad-Hoc (AH) baseline strategy.

Slide 14 describes AH as providing "little support for incremental
design": it maps and schedules the current application for *validity
and performance only* -- the straightforward design flow a team would
use when ignoring future applications.  Concretely, AH is the Initial
Mapping step alone: HCP-seeded earliest-finish mapping and list
scheduling around the frozen existing reservations, with no
metric-driven improvement afterwards.

AH results are valid (requirement (a) holds) but typically score a poor
objective value, which is exactly the gap the paper's first and third
experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import (
    DesignEvaluator,
    DesignResult,
    DesignSpec,
    timed,
)
from repro.search.budget import Budget

@dataclass
class AdHocStrategy:
    """Validity-only design: Initial Mapping with no optimization.

    ``use_cache``, ``jobs``, ``use_delta``, ``cache_store``/
    ``cache_path`` and ``budget`` exist so every strategy shares one
    construction signature (the experiment runner passes them
    uniformly); AH performs a single evaluation, so none of them
    changes its behavior.
    """

    use_cache: bool = True
    jobs: int = 1
    use_delta: bool = True
    engine_core: str = "array"
    cache_store: str = "memory"
    cache_path: Optional[str] = None
    budget: Optional[Budget] = None

    name = "AH"
    #: AH finishes at priming (no evaluation yields), so there is
    #: nothing to steal or resume; shard drivers never checkpoint it.
    resumable = False

    @timed
    def design(self, spec: DesignSpec) -> DesignResult:
        """Run IM once and report its design as-is."""
        with DesignEvaluator(
            spec, use_cache=False, use_delta=False,
            engine_core=self.engine_core,
        ) as evaluator:
            return self._design(spec, evaluator.compiled)

    def _design(self, spec: DesignSpec, compiled) -> DesignResult:
        from repro.core.metrics import evaluate_design

        mapper = InitialMapper(spec.architecture)
        outcome = mapper.try_map_and_schedule(
            spec.current,
            base=spec.base_schedule,
            horizon=None if spec.base_schedule else spec.horizon,
            compiled=compiled,
        )
        if outcome is None:
            return DesignResult(self.name, valid=False, evaluations=1)
        mapping, schedule = outcome
        metrics = evaluate_design(schedule, spec.future, spec.weights)
        priorities = dict(compiled.default_priorities)
        return DesignResult(
            self.name,
            valid=True,
            mapping=mapping,
            priorities=priorities,
            schedule=schedule,
            metrics=metrics,
            evaluations=1,
        )

    def search_program(self, spec: DesignSpec, compiled):
        """AH as a (search-free) kernel program for the portfolio.

        Computes the Initial Mapping inline against the shared
        compiled spec and returns its priced design without consuming
        any of the racing budget.
        """
        return self._design(spec, compiled)
        yield  # pragma: no cover - unreachable; makes this a generator
