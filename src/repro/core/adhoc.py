"""The Ad-Hoc (AH) baseline strategy.

Slide 14 describes AH as providing "little support for incremental
design": it maps and schedules the current application for *validity
and performance only* -- the straightforward design flow a team would
use when ignoring future applications.  Concretely, AH is the Initial
Mapping step alone: HCP-seeded earliest-finish mapping and list
scheduling around the frozen existing reservations, with no
metric-driven improvement afterwards.

AH results are valid (requirement (a) holds) but typically score a poor
objective value, which is exactly the gap the paper's first and third
experiments measure.
"""

from __future__ import annotations

from repro.core.initial_mapping import InitialMapper
from repro.core.metrics import evaluate_design
from repro.core.strategy import DesignResult, DesignSpec, timed
from repro.sched.priorities import hcp_priorities


class AdHocStrategy:
    """Validity-only design: Initial Mapping with no optimization."""

    name = "AH"

    @timed
    def design(self, spec: DesignSpec) -> DesignResult:
        """Run IM once and report its design as-is."""
        mapper = InitialMapper(spec.architecture)
        outcome = mapper.try_map_and_schedule(
            spec.current,
            base=spec.base_schedule,
            horizon=None if spec.base_schedule else spec.horizon,
        )
        if outcome is None:
            return DesignResult(self.name, valid=False, evaluations=1)
        mapping, schedule = outcome
        metrics = evaluate_design(schedule, spec.future, spec.weights)
        priorities = hcp_priorities(spec.current, spec.architecture.bus)
        return DesignResult(
            self.name,
            valid=True,
            mapping=mapping,
            priorities=priorities,
            schedule=schedule,
            metrics=metrics,
            evaluations=1,
        )
