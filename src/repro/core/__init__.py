"""The paper's primary contribution: metric-driven incremental mapping.

Layers:

* :mod:`~repro.core.slack` -- extracting slack containers (processor
  gaps, bus slot residuals) from a system schedule.
* :mod:`~repro.core.future` -- the characterization of future
  applications (T_min, t_need, b_need, WCET and message-size
  distributions) from slide 10.
* :mod:`~repro.core.binpack` -- best-fit (plus first-fit / worst-fit
  for ablations) bin packing used by the first design criterion.
* :mod:`~repro.core.metrics` -- the four design metrics C1P, C1m, C2P,
  C2m and the objective function of slide 14.
* :mod:`~repro.core.initial_mapping` -- Initial Mapping (IM) seeded by
  the Heterogeneous Critical Path algorithm.
* :mod:`~repro.core.adhoc` -- the Ad-Hoc (AH) baseline strategy.
* :mod:`~repro.core.mapping_heuristic` -- the Mapping Heuristic (MH).
* :mod:`~repro.core.simulated_annealing` -- the SA reference.
* :mod:`~repro.core.strategy` -- the end-to-end design flow and the
  future-application fit check used by the third experiment.
"""

from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.core.binpack import PackResult, best_fit, first_fit, worst_fit
from repro.core.metrics import (
    DesignMetrics,
    ObjectiveWeights,
    evaluate_design,
    metric_c1m,
    metric_c1p,
    metric_c2m,
    metric_c2p,
)
from repro.core.slack import (
    bus_slack_containers,
    processor_slack_containers,
    slack_fragmentation,
)
from repro.core.initial_mapping import InitialMapper
from repro.core.adhoc import AdHocStrategy
from repro.core.mapping_heuristic import MappingHeuristic
from repro.core.simulated_annealing import SimulatedAnnealing
from repro.core.strategy import (
    DesignResult,
    DesignSpec,
    design_application,
    fits_future_application,
    make_strategy,
)
from repro.core.modification import (
    ExistingApplication,
    ModificationResult,
    design_with_modifications,
)

__all__ = [
    "DiscreteDistribution",
    "FutureCharacterization",
    "PackResult",
    "best_fit",
    "first_fit",
    "worst_fit",
    "DesignMetrics",
    "ObjectiveWeights",
    "evaluate_design",
    "metric_c1p",
    "metric_c1m",
    "metric_c2p",
    "metric_c2m",
    "processor_slack_containers",
    "bus_slack_containers",
    "slack_fragmentation",
    "InitialMapper",
    "AdHocStrategy",
    "MappingHeuristic",
    "SimulatedAnnealing",
    "DesignResult",
    "DesignSpec",
    "ExistingApplication",
    "ModificationResult",
    "design_with_modifications",
    "design_application",
    "fits_future_application",
    "make_strategy",
]
