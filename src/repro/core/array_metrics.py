"""Array-native metric kernel: the slide-14 objective on SoA columns.

The structure-of-arrays scheduler core finishes a candidate as an
:class:`~repro.sched.arrays.ArrayRunState` -- per-node sorted busy-run
columns plus one flat used-bytes vector over the TDMA slot
occurrences.  The historical metric path decoded that state back into
an object :class:`~repro.sched.schedule.SystemSchedule` solely to feed
:mod:`repro.core.metrics`, which made decode the Amdahl cap of every
candidate evaluation.  This module prices the state directly:

* **Node slack** is extracted from the ``runs_s``/``runs_e`` columns
  with the exact one-pass gap/window split of
  :func:`repro.core.metrics._node_slack_data` (the columns are kept in
  the same canonical merged form the object schedule's busy sets use).
* **Bus slack** never rebuilds a residual vector: the precompiled
  :class:`~repro.sched.arrays.ArrayMetricGeometry` carries the *base*
  occupancy's residual histogram and per-window free bytes, and a
  candidate is priced by patching those at the few occurrences where
  its flat used vector differs from the base (or from its delta
  parent) -- one vectorized compare plus a handful of dict updates.
* **Best-fit packing** runs over value histograms
  (:func:`repro.core.binpack.best_fit_unplaced_total_hist`); the
  ablation policies (first/worst-fit) rebuild the exact ordered
  container lists of the object kernel via the geometry's start-order
  permutation.

Byte-identity with the pinned object kernel is by construction: every
metric is computed from equal integer inputs with the same float
expressions, in the same order; the equivalence suite
(``tests/engine/test_array_metrics.py``) pins it across all scenario
families.  Delta evaluation chains :class:`ArrayMetricsMemo`
parent-to-child exactly the way :class:`repro.core.metrics.MetricsMemo`
does on the object side.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.binpack import POLICIES, best_fit_unplaced_total_hist
from repro.core.future import FutureCharacterization
from repro.core.metrics import (
    DesignMetrics,
    ObjectiveWeights,
    _packing_inputs,
)
from repro.sched.arrays import ArrayMetricGeometry, ArrayRunState, ArraySpec


class ArrayNodeData:
    """One node's metric inputs, extracted from its run columns.

    The array-core sibling of
    :class:`repro.core.metrics.NodeSlackData`: slack gap lengths in
    gap order (the node's C1P containers), the per-``T_min``-window
    free time, and its minimum (the node's C2P contribution).
    """

    __slots__ = ("containers", "window_slacks", "window_min")

    def __init__(
        self,
        containers: List[int],
        window_slacks: List[int],
        window_min: int,
    ) -> None:
        self.containers = containers
        self.window_slacks = window_slacks
        self.window_min = window_min


class ArrayMetricsMemo:
    """Per-resource metric inputs and values of one array-evaluated design.

    The array-core sibling of
    :class:`repro.core.metrics.MetricsMemo`, chained parent-to-child by
    the delta evaluator: a child whose run columns on a node equal the
    parent's reuses that node's :class:`ArrayNodeData`; a child whose
    flat bus vector equals the parent's reuses the bus inputs and the
    bus-derived metric values outright; a *dirty* bus is patched from
    the parent's residual histogram at the differing occurrences.

    ``bus_used`` is the evaluated state's flat used-bytes vector
    (shared, never mutated) -- the diff substrate for children;
    ``resid_hist`` maps residual value to occurrence count and
    ``window_free`` holds free bytes per ``T_min`` window.
    """

    __slots__ = (
        "nodes", "bus_used", "resid_hist", "window_free",
        "c1p", "c1m", "c2m",
    )

    def __init__(
        self,
        nodes: List[ArrayNodeData],
        bus_used: "np.ndarray",
        resid_hist: Dict[int, int],
        window_free: List[int],
        c1p: float,
        c1m: float,
        c2m: int,
    ) -> None:
        self.nodes = nodes
        self.bus_used = bus_used
        self.resid_hist = resid_hist
        self.window_free = window_free
        self.c1p = c1p
        self.c1m = c1m
        self.c2m = c2m


def _run_length(bag: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Run-length encode a descending-sorted bag as (size, count) pairs."""
    runs: List[Tuple[int, int]] = []
    i = 0
    n = len(bag)
    while i < n:
        size = bag[i]
        j = i + 1
        while j < n and bag[j] == size:
            j += 1
        runs.append((size, j - i))
        i = j
    return tuple(runs)


@lru_cache(maxsize=128)
def _packing_runs(
    future: FutureCharacterization, horizon: int
) -> Tuple[
    Tuple[int, ...], Tuple[Tuple[int, int], ...], int, int,
    Tuple[int, ...], Tuple[Tuple[int, int], ...], int, int,
]:
    """:func:`repro.core.metrics._packing_inputs` plus RLE encodings.

    Returns ``(process bag, its runs, total, min, message bag, its
    runs, total, min)``; the histogram best-fit kernel consumes the
    runs, the ablation policies the flat bags.  Cached per
    ``(future, horizon)`` like the object kernel's inputs.
    """
    (
        process_bag, process_total, process_min,
        message_bag, message_total, message_min,
    ) = _packing_inputs(future, horizon)
    return (
        process_bag, _run_length(process_bag), process_total, process_min,
        message_bag, _run_length(message_bag), message_total, message_min,
    )


def _node_data(
    runs_s: List[int], runs_e: List[int], geom: ArrayMetricGeometry
) -> ArrayNodeData:
    """Extract one node's metric inputs from its canonical run columns.

    The column twin of :func:`repro.core.metrics._node_slack_data`:
    one pass over the (sorted, merged) busy runs yields the gap
    lengths and the per-window busy split.  Identical arithmetic on
    identical integers -- the run columns are the canonical busy sets
    the decoded schedule would expose.
    """
    horizon = geom.horizon
    width = geom.window_width
    busy = [0] * geom.n_windows
    containers: List[int] = []
    cursor = 0
    for start, end in zip(runs_s, runs_e):
        if start > cursor:
            containers.append(start - cursor)
        cursor = end
        k = start // width
        while start < end:
            boundary = (k + 1) * width
            if boundary >= end:
                busy[k] += end - start
                break
            busy[k] += boundary - start
            start = boundary
            k += 1
    if cursor < horizon:
        containers.append(horizon - cursor)
    window_slacks = [
        length - used for length, used in zip(geom.window_lengths, busy)
    ]
    return ArrayNodeData(containers, window_slacks, min(window_slacks))


def _patch_bus(
    resid_hist: Dict[int, int],
    window_free: List[int],
    used: "np.ndarray",
    reference_used: "np.ndarray",
    geom: ArrayMetricGeometry,
) -> None:
    """Patch reference bus inputs to ``used`` at the differing occurrences.

    ``resid_hist``/``window_free`` must describe ``reference_used``
    (the base template or a delta parent) and are mutated in place to
    describe ``used``.  The diff is one vectorized compare; schedules
    one move apart -- and even cold candidates against the base --
    touch only a handful of occurrences.
    """
    caps = geom.caps_flat
    win = geom.win_flat
    for i in np.nonzero(used != reference_used)[0].tolist():
        cap = int(caps[i])
        before = int(reference_used[i])
        after = int(used[i])
        old_resid = cap - before
        count = resid_hist[old_resid] - 1
        if count:
            resid_hist[old_resid] = count
        else:
            del resid_hist[old_resid]
        new_resid = cap - after
        resid_hist[new_resid] = resid_hist.get(new_resid, 0) + 1
        w = int(win[i])
        if w >= 0:
            window_free[w] -= after - before


def evaluate_state(
    arrays: ArraySpec,
    state: ArrayRunState,
    future: FutureCharacterization,
    weights: Optional[ObjectiveWeights] = None,
) -> DesignMetrics:
    """Cold array-native evaluation (metrics only); see the delta form."""
    metrics, _ = evaluate_state_delta(arrays, state, future, weights)
    return metrics


def evaluate_state_delta(
    arrays: ArraySpec,
    state: ArrayRunState,
    future: FutureCharacterization,
    weights: Optional[ObjectiveWeights] = None,
    parent_memo: Optional[ArrayMetricsMemo] = None,
    clean_mask: Sequence[bool] = (),
    bus_clean: bool = False,
) -> Tuple[DesignMetrics, ArrayMetricsMemo]:
    """Price a finished array state; byte-identical to the object kernel.

    The array twin of
    :func:`repro.core.metrics.evaluate_design_delta`: cold evaluation
    passes no parent (every resource extracted from the state's
    columns, the bus patched from the precompiled base); delta
    evaluation passes the parent's memo plus
    :meth:`ArraySpec.clean_mask`'s verdict, and clean resources reuse
    the parent's inputs -- clean *everything* reuses the metric values
    themselves.  The mixing steps (packing, window minima, the
    objective) recompute from the per-resource inputs with the object
    kernel's exact expressions, so the returned metrics equal a cold
    object evaluation bit for bit.
    """
    if weights is None:
        weights = ObjectiveWeights()
    geom = arrays.metric_geometry(future.t_min)
    runs_s = state.runs_s
    runs_e = state.runs_e

    all_nodes_clean = parent_memo is not None
    nodes: List[ArrayNodeData] = []
    for n in range(len(runs_s)):
        if parent_memo is not None and clean_mask[n]:
            nodes.append(parent_memo.nodes[n])
        else:
            nodes.append(_node_data(runs_s[n], runs_e[n], geom))
            all_nodes_clean = False

    used = state.bus_used
    bus_clean = parent_memo is not None and bus_clean
    if bus_clean:
        assert parent_memo is not None
        resid_hist = parent_memo.resid_hist
        window_free = parent_memo.window_free
    elif parent_memo is not None:
        resid_hist = dict(parent_memo.resid_hist)
        window_free = list(parent_memo.window_free)
        _patch_bus(resid_hist, window_free, used, parent_memo.bus_used, geom)
    else:
        resid_hist = dict(geom.base_resid_hist)
        window_free = list(geom.base_window_free)
        _patch_bus(resid_hist, window_free, used, geom.base_used, geom)

    lean = weights.binpack_policy == "best-fit"
    pack = POLICIES[weights.binpack_policy]
    (
        process_bag, process_runs, process_total, process_min,
        message_bag, message_runs, message_total, message_min,
    ) = _packing_runs(future, arrays.horizon)

    if all_nodes_clean:
        assert parent_memo is not None
        c1p = parent_memo.c1p
    elif process_bag:
        if lean:
            container_hist: Dict[int, int] = {}
            for data in nodes:
                for length in data.containers:
                    if length >= process_min:
                        container_hist[length] = (
                            container_hist.get(length, 0) + 1
                        )
            unplaced_total = best_fit_unplaced_total_hist(
                process_runs, container_hist, consume=True
            )
        else:
            containers = [
                length
                for data in nodes
                for length in data.containers
                if length >= process_min
            ]
            unplaced_total = sum(
                pack(process_bag, containers, decreasing=False).unplaced
            )
        c1p = 100.0 * unplaced_total / process_total
    else:
        c1p = 0.0

    if bus_clean:
        assert parent_memo is not None
        c1m = parent_memo.c1m
        c2m = parent_memo.c2m
    else:
        if message_bag:
            if lean:
                unplaced_total = best_fit_unplaced_total_hist(
                    message_runs, resid_hist
                )
            else:
                residuals = (geom.caps_flat - used)[geom.start_order]
                eligible = residuals[residuals >= message_min]
                unplaced_total = sum(
                    pack(
                        message_bag, eligible.tolist(), decreasing=False
                    ).unplaced
                )
            c1m = 100.0 * unplaced_total / message_total
        else:
            c1m = 0.0
        c2m = min(window_free)

    c2p = sum(data.window_min for data in nodes)

    memo = ArrayMetricsMemo(
        nodes, used, resid_hist, window_free, c1p, c1m, c2m
    )

    pen2p = max(0.0, float(future.t_need - c2p))
    pen2m = max(0.0, float(future.b_need - c2m))
    if weights.normalize_second:
        if future.t_need > 0:
            pen2p = 100.0 * pen2p / future.t_need
        if future.b_need > 0:
            pen2m = 100.0 * pen2m / future.b_need

    objective = (
        weights.w1p * c1p
        + weights.w1m * c1m
        + weights.w2p * pen2p
        + weights.w2m * pen2m
    )
    return DesignMetrics(c1p, c1m, c2p, c2m, pen2p, pen2m, objective), memo
