"""Bin packing for the first design criterion.

Metric C1 asks how much of the hypothetical largest future application
*cannot* be packed into the slack of the current design: future
processes (objects sized by WCET) are packed into processor slack gaps
(bins sized by gap length); future messages into TDMA slot residuals.

The paper uses a **best-fit** policy (slide 12).  First-fit and
worst-fit are provided for the ablation benchmark
``benchmarks/bench_ablation_binpack.py``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class PackResult:
    """Outcome of packing objects into bins.

    Attributes
    ----------
    placed:
        (object size, bin index) for every packed object.
    unplaced:
        Sizes of the objects that fit in no bin.
    residuals:
        Remaining capacity per bin after packing.
    """

    placed: List[Tuple[int, int]] = field(default_factory=list)
    unplaced: List[int] = field(default_factory=list)
    residuals: List[int] = field(default_factory=list)

    @property
    def placed_total(self) -> int:
        """Total size successfully packed."""
        return sum(size for size, _ in self.placed)

    @property
    def unplaced_total(self) -> int:
        """Total size that could not be packed."""
        return sum(self.unplaced)

    @property
    def unplaced_fraction(self) -> float:
        """Unpacked share of the total demand, in [0, 1]."""
        total = self.placed_total + self.unplaced_total
        if total == 0:
            return 0.0
        return self.unplaced_total / total


def _pack(
    objects: Sequence[int],
    bins: Sequence[int],
    choose: Callable[[List[int], int], int],
    decreasing: bool = True,
) -> PackResult:
    """Shared packing loop.

    ``choose(residuals, size)`` returns the index of the chosen bin or
    ``-1`` when nothing fits.  Objects are processed in decreasing size
    order by default (the classical decreasing variants).
    """
    for size in objects:
        if size <= 0:
            raise ValueError(f"object sizes must be positive, got {size}")
    for cap in bins:
        if cap < 0:
            raise ValueError(f"bin capacities must be non-negative, got {cap}")
    order = sorted(objects, reverse=True) if decreasing else list(objects)
    residuals = list(bins)
    result = PackResult(residuals=residuals)
    for size in order:
        idx = choose(residuals, size)
        if idx < 0:
            result.unplaced.append(size)
        else:
            residuals[idx] -= size
            result.placed.append((size, idx))
    return result


def best_fit(
    objects: Sequence[int], bins: Sequence[int], decreasing: bool = True
) -> PackResult:
    """Best-fit (decreasing) packing: the tightest bin that still fits.

    This is the policy of the paper's first criterion: it preserves
    large gaps for large future processes by consuming the snuggest
    gap first.  Implemented over a sorted residual list (bisect), with
    runs of equal-size objects placed as a batch: while the tightest
    eligible bin keeps fitting the size, best fit provably keeps
    draining that same bin (its residual shrinks below every other
    eligible bin), so a run consumes ``floor(residual / size)`` objects
    per bin visit instead of paying one pool update per object.  The
    future bags of the design metrics draw from small size histograms,
    which makes packing cost scale with *distinct* sizes.
    """
    for size in objects:
        if size <= 0:
            raise ValueError(f"object sizes must be positive, got {size}")
    for cap in bins:
        if cap < 0:
            raise ValueError(f"bin capacities must be non-negative, got {cap}")
    order = sorted(objects, reverse=True) if decreasing else list(objects)
    # Sorted (residual, bin index) pairs; ties broken by bin index so the
    # packing is deterministic.
    pool: List[Tuple[int, int]] = sorted((cap, i) for i, cap in enumerate(bins))
    residuals = list(bins)
    result = PackResult(residuals=residuals)
    placed = result.placed
    unplaced = result.unplaced
    n = len(order)
    i = 0
    while i < n:
        size = order[i]
        run = i + 1
        while run < n and order[run] == size:
            run += 1
        count = run - i
        i = run
        while count:
            pos = bisect.bisect_left(pool, (size, -1))
            if pos == len(pool):
                unplaced.extend([size] * count)
                break
            res, idx = pool.pop(pos)
            # Drain: while the bin still fits the size it stays the
            # tightest eligible bin, so consecutive equal objects land
            # in it back to back -- exactly one object at a time in the
            # classical formulation, batched here.
            take = min(count, res // size)
            left = res - take * size
            residuals[idx] = left
            if left > 0:
                bisect.insort(pool, (left, idx))
            placed.extend([(size, idx)] * take)
            count -= take
    return result


def best_fit_unplaced_total(
    ordered_objects: Sequence[int], bins: Sequence[int]
) -> int:
    """Total size :func:`best_fit` leaves unplaced, computed lean.

    The metric hot path only consumes the unplaced total, which is a
    pure function of the bin-capacity *multiset* (tie-breaking between
    equal residuals swaps bins of identical value, leaving the residual
    multiset -- and hence every later fit decision -- unchanged) and of
    the object multiset.  ``ordered_objects`` must be pre-sorted in
    descending order (the caller caches the sorted bag).

    Within one run of equal-size objects, best fit drains the eligible
    bins in ascending residual order -- once the tightest eligible bin
    stops fitting, the next one is strictly larger -- so a whole size
    class reduces to a cumulative-capacity scan over the sorted
    residuals, vectorized here with numpy.  Exactly
    ``best_fit(objects, bins).unplaced_total`` for the same multisets.
    """
    pool = np.sort(np.asarray(bins, dtype=np.int64))
    unplaced = 0
    n = len(ordered_objects)
    i = 0
    while i < n:
        size = ordered_objects[i]
        run = i + 1
        while run < n and ordered_objects[run] == size:
            run += 1
        count = run - i
        i = run
        j = int(np.searchsorted(pool, size, side="left"))
        eligible = pool[j:]
        if not eligible.size:
            unplaced += size * count
            continue
        capacities = eligible // size
        cumulative = np.cumsum(capacities)
        if int(cumulative[-1]) <= count:
            # Every eligible bin is drained to its remainder.
            unplaced += size * (count - int(cumulative[-1]))
            pool = np.sort(np.concatenate([pool[:j], eligible % size]))
            continue
        k = int(np.searchsorted(cumulative, count, side="left"))
        taken_before = int(cumulative[k - 1]) if k else 0
        partial = int(eligible[k]) - (count - taken_before) * size
        pool = np.sort(
            np.concatenate(
                [pool[:j], eligible[:k] % size, [partial], eligible[k + 1 :]]
            )
        )
    return unplaced


def best_fit_unplaced_total_hist(
    size_runs: Sequence[Tuple[int, int]],
    hist: Dict[int, int],
    consume: bool = False,
) -> int:
    """:func:`best_fit_unplaced_total` over a bin-capacity *histogram*.

    ``hist`` maps a residual value to how many bins currently hold it;
    ``size_runs`` is the object bag run-length encoded as ``(size,
    count)`` pairs in descending size order (the callers cache the
    encoding per spec).  With ``consume`` the histogram is mutated in
    place (single-use histograms skip a defensive copy); otherwise the
    input is left untouched.  The unplaced total is a pure function of
    the two multisets, and within one run of equal-size objects best
    fit drains eligible bins in ascending residual order, each bin
    hosting ``floor(value / size)`` objects -- so whole *value
    classes* drain at once: all bins of one value go to ``value %
    size`` together, and at most one bin per run is left partially
    drained.  The metric workloads have few distinct object sizes and
    few distinct residual values, which makes this walk over the
    histogram far cheaper than sorting the flat residual vector.

    The sorted value list is built once and maintained incrementally:
    drained values are deleted lazily (skipped when no longer in the
    histogram) and new remainder values are insorted.  A value can
    appear twice in the list (a remainder recreating a lazily-deleted
    value); that is benign, because a run either deletes a value from
    the histogram before walking on (the duplicate is then skipped) or
    stops at it.

    Exactly ``best_fit(objects, bins).unplaced_total`` for the same
    multisets.
    """
    if not consume:
        hist = dict(hist)
    values = sorted(hist)
    insort = bisect.insort
    unplaced = 0
    for size, count in size_runs:
        # Remainders created below are always < the current size, so
        # they are insorted strictly below the walk cursor (shifting
        # it by one) and can never join this run's ascending walk.
        i = bisect.bisect_left(values, size)
        while count and i < len(values):
            value = values[i]
            i += 1
            bins = hist.get(value)
            if not bins:
                continue
            per = value // size
            capacity = per * bins
            if capacity <= count:
                # Every bin of this value drains to value % size.
                del hist[value]
                remainder = value % size
                if remainder:
                    if remainder in hist:
                        hist[remainder] += bins
                    else:
                        hist[remainder] = bins
                        insort(values, remainder)
                        i += 1
                count -= capacity
            else:
                full, rest = divmod(count, per)
                untouched = bins - full - (1 if rest else 0)
                if untouched:
                    hist[value] = untouched
                else:
                    del hist[value]
                remainder = value % size
                if full and remainder:
                    if remainder in hist:
                        hist[remainder] += full
                    else:
                        hist[remainder] = full
                        insort(values, remainder)
                if rest:
                    partial = value - rest * size
                    if partial:
                        if partial in hist:
                            hist[partial] += 1
                        else:
                            hist[partial] = 1
                            insort(values, partial)
                count = 0
                break
        unplaced += size * count
    return unplaced


def first_fit(
    objects: Sequence[int], bins: Sequence[int], decreasing: bool = True
) -> PackResult:
    """First-fit (decreasing) packing: the first bin that fits."""

    def choose(residuals: List[int], size: int) -> int:
        for i, res in enumerate(residuals):
            if res >= size:
                return i
        return -1

    return _pack(objects, bins, choose, decreasing)


def worst_fit(
    objects: Sequence[int], bins: Sequence[int], decreasing: bool = True
) -> PackResult:
    """Worst-fit (decreasing) packing: the emptiest bin that fits.

    Included as an intentionally slack-fragmenting policy for the
    ablation study.
    """

    def choose(residuals: List[int], size: int) -> int:
        best_idx = -1
        best_res = -1
        for i, res in enumerate(residuals):
            if res >= size and res > best_res:
                best_idx, best_res = i, res
        return best_idx

    return _pack(objects, bins, choose, decreasing)


POLICIES: Dict[str, Callable[..., PackResult]] = {
    "best-fit": best_fit,
    "first-fit": first_fit,
    "worst-fit": worst_fit,
}
