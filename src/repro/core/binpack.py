"""Bin packing for the first design criterion.

Metric C1 asks how much of the hypothetical largest future application
*cannot* be packed into the slack of the current design: future
processes (objects sized by WCET) are packed into processor slack gaps
(bins sized by gap length); future messages into TDMA slot residuals.

The paper uses a **best-fit** policy (slide 12).  First-fit and
worst-fit are provided for the ablation benchmark
``benchmarks/bench_ablation_binpack.py``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass
class PackResult:
    """Outcome of packing objects into bins.

    Attributes
    ----------
    placed:
        (object size, bin index) for every packed object.
    unplaced:
        Sizes of the objects that fit in no bin.
    residuals:
        Remaining capacity per bin after packing.
    """

    placed: List[Tuple[int, int]] = field(default_factory=list)
    unplaced: List[int] = field(default_factory=list)
    residuals: List[int] = field(default_factory=list)

    @property
    def placed_total(self) -> int:
        """Total size successfully packed."""
        return sum(size for size, _ in self.placed)

    @property
    def unplaced_total(self) -> int:
        """Total size that could not be packed."""
        return sum(self.unplaced)

    @property
    def unplaced_fraction(self) -> float:
        """Unpacked share of the total demand, in [0, 1]."""
        total = self.placed_total + self.unplaced_total
        if total == 0:
            return 0.0
        return self.unplaced_total / total


def _pack(
    objects: Sequence[int],
    bins: Sequence[int],
    choose: Callable[[List[int], int], int],
    decreasing: bool = True,
) -> PackResult:
    """Shared packing loop.

    ``choose(residuals, size)`` returns the index of the chosen bin or
    ``-1`` when nothing fits.  Objects are processed in decreasing size
    order by default (the classical decreasing variants).
    """
    for size in objects:
        if size <= 0:
            raise ValueError(f"object sizes must be positive, got {size}")
    for cap in bins:
        if cap < 0:
            raise ValueError(f"bin capacities must be non-negative, got {cap}")
    order = sorted(objects, reverse=True) if decreasing else list(objects)
    residuals = list(bins)
    result = PackResult(residuals=residuals)
    for size in order:
        idx = choose(residuals, size)
        if idx < 0:
            result.unplaced.append(size)
        else:
            residuals[idx] -= size
            result.placed.append((size, idx))
    return result


def best_fit(
    objects: Sequence[int], bins: Sequence[int], decreasing: bool = True
) -> PackResult:
    """Best-fit (decreasing) packing: the tightest bin that still fits.

    This is the policy of the paper's first criterion: it preserves
    large gaps for large future processes by consuming the snuggest
    gap first.  Implemented over a sorted residual list (bisect), so a
    metric evaluation with thousands of future objects stays cheap.
    """
    for size in objects:
        if size <= 0:
            raise ValueError(f"object sizes must be positive, got {size}")
    for cap in bins:
        if cap < 0:
            raise ValueError(f"bin capacities must be non-negative, got {cap}")
    order = sorted(objects, reverse=True) if decreasing else list(objects)
    # Sorted (residual, bin index) pairs; ties broken by bin index so the
    # packing is deterministic.
    pool: List[Tuple[int, int]] = sorted((cap, i) for i, cap in enumerate(bins))
    residuals = list(bins)
    result = PackResult(residuals=residuals)
    for size in order:
        pos = bisect.bisect_left(pool, (size, -1))
        if pos == len(pool):
            result.unplaced.append(size)
            continue
        res, idx = pool.pop(pos)
        left = res - size
        residuals[idx] = left
        if left > 0:
            bisect.insort(pool, (left, idx))
        result.placed.append((size, idx))
    return result


def first_fit(
    objects: Sequence[int], bins: Sequence[int], decreasing: bool = True
) -> PackResult:
    """First-fit (decreasing) packing: the first bin that fits."""

    def choose(residuals: List[int], size: int) -> int:
        for i, res in enumerate(residuals):
            if res >= size:
                return i
        return -1

    return _pack(objects, bins, choose, decreasing)


def worst_fit(
    objects: Sequence[int], bins: Sequence[int], decreasing: bool = True
) -> PackResult:
    """Worst-fit (decreasing) packing: the emptiest bin that fits.

    Included as an intentionally slack-fragmenting policy for the
    ablation study.
    """

    def choose(residuals: List[int], size: int) -> int:
        best_idx = -1
        best_res = -1
        for i, res in enumerate(residuals):
            if res >= size and res > best_res:
                best_idx, best_res = i, res
        return best_idx

    return _pack(objects, bins, choose, decreasing)


POLICIES: Dict[str, Callable[..., PackResult]] = {
    "best-fit": best_fit,
    "first-fit": first_fit,
    "worst-fit": worst_fit,
}
