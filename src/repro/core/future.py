"""Characterization of future applications (slide 10).

The designer does not know the future applications, but can estimate,
for the most demanding member of the expected family:

* ``T_min`` -- the smallest expected period,
* ``t_need`` -- the processor time needed inside every ``T_min``,
* ``b_need`` -- the bus bandwidth (bytes) needed inside every ``T_min``,
* the distribution of typical process WCETs, and
* the distribution of typical message sizes.

The two histograms of slide 10 (WCETs over {20, 50, 100, 150} time
units; message sizes over {2, 4, 6, 8} bytes) are the library
defaults.  The exact probabilities are not printed on the slides; the
defaults below are a documented reconstruction (see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple


from repro.utils.errors import InvalidModelError
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class DiscreteDistribution:
    """A discrete probability distribution over positive integer sizes.

    Used for both future-process WCETs and future-message sizes.  The
    design metrics need *deterministic* representative bags (the
    objective function must return the same value for the same design),
    which :meth:`deterministic_bag` provides via weighted round-robin;
    workload generators draw random samples via :meth:`sample`.
    """

    values: Tuple[int, ...]
    probabilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise InvalidModelError("distribution needs at least one value")
        if len(self.values) != len(self.probabilities):
            raise InvalidModelError(
                "values and probabilities must have equal length"
            )
        if any(v <= 0 for v in self.values):
            raise InvalidModelError("distribution values must be positive")
        if any(p < 0 for p in self.probabilities):
            raise InvalidModelError("probabilities must be non-negative")
        total = float(sum(self.probabilities))
        if total <= 0:
            raise InvalidModelError("probabilities must not all be zero")
        object.__setattr__(
            self,
            "probabilities",
            tuple(p / total for p in self.probabilities),
        )
        object.__setattr__(self, "values", tuple(int(v) for v in self.values))

    @property
    def mean(self) -> float:
        """Expected value of the distribution."""
        return float(
            sum(v * p for v, p in zip(self.values, self.probabilities))
        )

    def sample(self, rng: SeedLike, count: int) -> List[int]:
        """``count`` independent draws."""
        gen = make_rng(rng)
        if count < 0:
            raise ValueError("count must be non-negative")
        idx = gen.choice(len(self.values), size=count, p=self.probabilities)
        return [self.values[i] for i in idx]

    def deterministic_bag(self, total: int) -> List[int]:
        """A representative bag of sizes with sum >= ``total``.

        Weighted round-robin: each step adds the value whose running
        probability credit is largest, so the bag's composition tracks
        the distribution while remaining fully deterministic.  Returns
        an empty list when ``total <= 0``.  Results are cached (the
        design metrics request the same bag for every candidate design
        of a scenario).
        """
        return list(_cached_bag(self.values, self.probabilities, total))


@lru_cache(maxsize=256)
def _cached_bag(
    values: Tuple[int, ...], probabilities: Tuple[float, ...], total: int
) -> Tuple[int, ...]:
    """Memoized weighted-round-robin expansion for deterministic_bag."""
    if total <= 0:
        return ()
    credits = [0.0] * len(values)
    bag: List[int] = []
    acc = 0
    while acc < total:
        for i, p in enumerate(probabilities):
            credits[i] += p
        pick = max(range(len(credits)), key=lambda i: (credits[i], -i))
        credits[pick] -= 1.0
        bag.append(values[pick])
        acc += values[pick]
    return tuple(bag)


#: Default future-process WCET distribution (slide 10, left histogram).
DEFAULT_WCET_DISTRIBUTION = DiscreteDistribution(
    values=(20, 50, 100, 150),
    probabilities=(0.15, 0.40, 0.30, 0.15),
)

#: Default future-message size distribution (slide 10, right histogram).
DEFAULT_MESSAGE_SIZE_DISTRIBUTION = DiscreteDistribution(
    values=(2, 4, 6, 8),
    probabilities=(0.20, 0.40, 0.25, 0.15),
)


@dataclass(frozen=True)
class FutureCharacterization:
    """What is known about the family of future applications.

    Attributes
    ----------
    t_min:
        Smallest expected period of a future application (time units).
    t_need:
        Processor time (time units) the most demanding future
        application needs inside every ``t_min`` window.
    b_need:
        Bus bandwidth (bytes) needed inside every ``t_min`` window.
    wcet_distribution:
        Distribution of typical future-process WCETs.
    message_size_distribution:
        Distribution of typical future-message sizes.
    """

    t_min: int
    t_need: int
    b_need: int
    wcet_distribution: DiscreteDistribution = DEFAULT_WCET_DISTRIBUTION
    message_size_distribution: DiscreteDistribution = (
        DEFAULT_MESSAGE_SIZE_DISTRIBUTION
    )

    def __post_init__(self) -> None:
        if self.t_min <= 0:
            raise InvalidModelError(f"t_min must be positive, got {self.t_min}")
        if self.t_need < 0:
            raise InvalidModelError(
                f"t_need must be non-negative, got {self.t_need}"
            )
        if self.b_need < 0:
            raise InvalidModelError(
                f"b_need must be non-negative, got {self.b_need}"
            )
        # NOTE: t_need may legitimately exceed t_min -- it is the *total*
        # processor time over all nodes inside a t_min window (metric C2P
        # sums per-processor slack), so a parallel future application on
        # an n-node platform can need up to n * t_min.

    # ------------------------------------------------------------------
    # the "largest future application" of the first criterion
    # ------------------------------------------------------------------
    def total_process_demand(self, horizon: int) -> int:
        """Processor time the future family claims inside ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.t_need * (horizon // self.t_min)

    def total_message_demand(self, horizon: int) -> int:
        """Bus bytes the future family claims inside ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.b_need * (horizon // self.t_min)

    def future_process_bag(self, horizon: int) -> List[int]:
        """WCETs of the hypothetical largest future application.

        Deterministic, so the design metrics are stable across repeated
        evaluations of the same design (see metric C1P).
        """
        return self.wcet_distribution.deterministic_bag(
            self.total_process_demand(horizon)
        )

    def future_message_bag(self, horizon: int) -> List[int]:
        """Message sizes of the hypothetical largest future application."""
        return self.message_size_distribution.deterministic_bag(
            self.total_message_demand(horizon)
        )
