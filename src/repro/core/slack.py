"""Slack extraction and fragmentation statistics.

The design criteria consume a schedule through its *slack*: the free
gaps on each processor and the residual bytes of each TDMA slot
occurrence.  This module turns a :class:`repro.sched.SystemSchedule`
into the container lists the bin-packing metric needs, and computes the
fragmentation statistics the Mapping Heuristic uses to pick
high-potential transformation candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sched.schedule import SystemSchedule


def processor_slack_containers(
    schedule: SystemSchedule, min_size: int = 1
) -> List[int]:
    """Lengths of all free gaps across all processors.

    Parameters
    ----------
    schedule:
        The schedule whose slack is extracted.
    min_size:
        Gaps shorter than this are dropped (they cannot host any future
        process; the metric's bin packing would ignore them anyway, so
        dropping them is purely an optimization).
    """
    containers: List[int] = []
    for node_id in schedule.architecture.node_ids:
        for gap in schedule.slack_gaps(node_id):
            if gap.length >= min_size:
                containers.append(gap.length)
    return containers


def bus_slack_containers(schedule: SystemSchedule, min_size: int = 1) -> List[int]:
    """Residual byte capacities of all TDMA slot occurrences."""
    return [
        free
        for _, free in schedule.bus.residuals()
        if free >= min_size
    ]


@dataclass(frozen=True)
class FragmentationStats:
    """Per-node slack shape statistics used by MH candidate selection.

    Attributes
    ----------
    total_slack:
        Free time units on the node over the horizon.
    gap_count:
        Number of distinct free gaps.
    largest_gap:
        Length of the largest gap (0 when fully busy).
    fragmentation:
        ``1 - largest_gap / total_slack`` in [0, 1]; 0 means all slack
        is one contiguous chunk (the paper's ideal, slide 12), values
        near 1 mean the slack is shattered into many small gaps.
    """

    total_slack: int
    gap_count: int
    largest_gap: int

    @property
    def fragmentation(self) -> float:
        if self.total_slack == 0:
            return 0.0
        return 1.0 - self.largest_gap / self.total_slack


def slack_fragmentation(schedule: SystemSchedule) -> Dict[str, FragmentationStats]:
    """Fragmentation statistics for every node of the schedule."""
    out: Dict[str, FragmentationStats] = {}
    for node_id in schedule.architecture.node_ids:
        gaps = schedule.slack_gaps(node_id)
        total = sum(g.length for g in gaps)
        largest = max((g.length for g in gaps), default=0)
        out[node_id] = FragmentationStats(total, len(gaps), largest)
    return out


def window_slack_profile(
    schedule: SystemSchedule, window_length: int
) -> Dict[str, List[int]]:
    """Per-node slack inside each consecutive window of the horizon.

    The second criterion's raw data: ``profile[node][w]`` is the free
    time of ``node`` inside window ``w``.  MH uses the argmin windows
    to find processes whose displacement would relieve the worst
    window.
    """
    from repro.utils.timemath import periodic_windows

    windows = periodic_windows(schedule.horizon, window_length)
    return {
        node_id: [schedule.slack_within(node_id, w) for w in windows]
        for node_id in schedule.architecture.node_ids
    }
