"""The paper's design metrics and objective function (slides 12-14).

**First criterion -- slack sizes.**  How much of the hypothetical
largest future application cannot be mapped on the current design?
Future processes (WCET bag) are best-fit packed into processor slack
gaps, future messages (size bag) into TDMA slot residuals:

* ``C1P`` = percentage of future process demand left unpacked,
* ``C1m`` = percentage of future message demand left unpacked.

Both are 0 when the whole bag fits (slide 12's C1=0% cases) and grow
toward 100 as slack becomes scarce or fragmented.

**Second criterion -- slack distribution.**  The future application
returns every ``T_min``; the design must keep ``t_need`` processor time
and ``b_need`` bus bandwidth available in *every* ``T_min`` window:

* ``C2P`` = sum over processors of the minimum per-window slack,
* ``C2m`` = minimum per-window residual bus capacity.

**Objective function (slide 14, verbatim structure).**

``C = w1P*C1P + w1m*C1m + w2P*max(0, t_need - C2P) + w2m*max(0, b_need - C2m)``

With ``ObjectiveWeights.normalize_second`` (the default) the two
second-criterion penalty terms are expressed as percentages of
``t_need`` / ``b_need`` so all four terms share the 0-100 scale; the
slides do not specify the scaling, see DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.binpack import POLICIES, PackResult, best_fit
from repro.core.future import FutureCharacterization
from repro.core.slack import bus_slack_containers, processor_slack_containers
from repro.sched.schedule import SystemSchedule
from repro.utils.timemath import periodic_windows


# ----------------------------------------------------------------------
# first criterion
# ----------------------------------------------------------------------
def metric_c1p(
    schedule: SystemSchedule,
    future: FutureCharacterization,
    policy: str = "best-fit",
) -> float:
    """C1P: % of future *process* demand that does not fit in the slack.

    Parameters
    ----------
    schedule:
        The candidate design (current + existing applications).
    future:
        The future-application characterization.
    policy:
        Bin-packing policy name (``best-fit`` is the paper's choice).
    """
    bag = future.future_process_bag(schedule.horizon)
    if not bag:
        return 0.0
    containers = processor_slack_containers(schedule)
    result = POLICIES[policy](bag, containers)
    return 100.0 * result.unplaced_fraction


def metric_c1m(
    schedule: SystemSchedule,
    future: FutureCharacterization,
    policy: str = "best-fit",
) -> float:
    """C1m: % of future *message* demand that does not fit on the bus."""
    bag = future.future_message_bag(schedule.horizon)
    if not bag:
        return 0.0
    containers = bus_slack_containers(schedule)
    result = POLICIES[policy](bag, containers)
    return 100.0 * result.unplaced_fraction


# ----------------------------------------------------------------------
# second criterion
# ----------------------------------------------------------------------
def metric_c2p(schedule: SystemSchedule, future: FutureCharacterization) -> int:
    """C2P: sum over processors of the minimum per-T_min-window slack.

    Slide 13: the guaranteed processor time a future application of
    period ``T_min`` can count on in *every* one of its periods.
    """
    windows = periodic_windows(schedule.horizon, future.t_min)
    total = 0
    for node_id in schedule.architecture.node_ids:
        total += min(schedule.slack_within(node_id, w) for w in windows)
    return total


def metric_c2m(schedule: SystemSchedule, future: FutureCharacterization) -> int:
    """C2m: minimum per-T_min-window residual bus capacity (bytes)."""
    windows = periodic_windows(schedule.horizon, future.t_min)
    return min(schedule.bus.free_bytes_within(w) for w in windows)


# ----------------------------------------------------------------------
# objective
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectiveWeights:
    """Weights of the slide-14 objective function.

    Attributes
    ----------
    w1p, w1m:
        Weights of the first-criterion metrics (percentages).
    w2p, w2m:
        Weights of the second-criterion penalty terms.
    normalize_second:
        When True (default) the penalties ``max(0, t_need - C2P)`` and
        ``max(0, b_need - C2m)`` are scaled to percentages of
        ``t_need`` / ``b_need`` so all terms are commensurate.
    binpack_policy:
        Bin-packing policy used by the first criterion.
    """

    w1p: float = 1.0
    w1m: float = 1.0
    w2p: float = 1.0
    w2m: float = 1.0
    normalize_second: bool = True
    binpack_policy: str = "best-fit"

    def __post_init__(self) -> None:
        for name in ("w1p", "w1m", "w2p", "w2m"):
            if getattr(self, name) < 0:
                raise ValueError(f"weight {name} must be non-negative")
        if self.binpack_policy not in POLICIES:
            raise ValueError(
                f"unknown bin-packing policy {self.binpack_policy!r}; "
                f"choose from {sorted(POLICIES)}"
            )


@dataclass(frozen=True)
class DesignMetrics:
    """The four metric values plus the combined objective for a design."""

    c1p: float
    c1m: float
    c2p: int
    c2m: int
    penalty_2p: float
    penalty_2m: float
    objective: float

    def summary(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"C1P={self.c1p:.1f}% C1m={self.c1m:.1f}% "
            f"C2P={self.c2p} C2m={self.c2m} "
            f"pen2P={self.penalty_2p:.1f} pen2m={self.penalty_2m:.1f} "
            f"C={self.objective:.2f}"
        )


def evaluate_design(
    schedule: SystemSchedule,
    future: FutureCharacterization,
    weights: Optional[ObjectiveWeights] = None,
) -> DesignMetrics:
    """Compute all four metrics and the combined objective ``C``.

    Smaller is better; 0 means the design leaves ideal room for the
    characterized future family.
    """
    if weights is None:
        weights = ObjectiveWeights()
    c1p = metric_c1p(schedule, future, weights.binpack_policy)
    c1m = metric_c1m(schedule, future, weights.binpack_policy)
    c2p = metric_c2p(schedule, future)
    c2m = metric_c2m(schedule, future)

    pen2p = max(0.0, float(future.t_need - c2p))
    pen2m = max(0.0, float(future.b_need - c2m))
    if weights.normalize_second:
        if future.t_need > 0:
            pen2p = 100.0 * pen2p / future.t_need
        if future.b_need > 0:
            pen2m = 100.0 * pen2m / future.b_need

    objective = (
        weights.w1p * c1p
        + weights.w1m * c1m
        + weights.w2p * pen2p
        + weights.w2m * pen2m
    )
    return DesignMetrics(c1p, c1m, c2p, c2m, pen2p, pen2m, objective)
