"""The paper's design metrics and objective function (slides 12-14).

**First criterion -- slack sizes.**  How much of the hypothetical
largest future application cannot be mapped on the current design?
Future processes (WCET bag) are best-fit packed into processor slack
gaps, future messages (size bag) into TDMA slot residuals:

* ``C1P`` = percentage of future process demand left unpacked,
* ``C1m`` = percentage of future message demand left unpacked.

Both are 0 when the whole bag fits (slide 12's C1=0% cases) and grow
toward 100 as slack becomes scarce or fragmented.

**Second criterion -- slack distribution.**  The future application
returns every ``T_min``; the design must keep ``t_need`` processor time
and ``b_need`` bus bandwidth available in *every* ``T_min`` window:

* ``C2P`` = sum over processors of the minimum per-window slack,
* ``C2m`` = minimum per-window residual bus capacity.

**Objective function (slide 14, verbatim structure).**

``C = w1P*C1P + w1m*C1m + w2P*max(0, t_need - C2P) + w2m*max(0, b_need - C2m)``

With ``ObjectiveWeights.normalize_second`` (the default) the two
second-criterion penalty terms are expressed as percentages of
``t_need`` / ``b_need`` so all four terms share the 0-100 scale; the
slides do not specify the scaling, see DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Collection, Dict, List, Optional, Tuple

import numpy as np

from repro.core.binpack import POLICIES, best_fit_unplaced_total
from repro.core.future import FutureCharacterization
from repro.core.slack import bus_slack_containers, processor_slack_containers
from repro.sched.schedule import SystemSchedule
from repro.utils.timemath import periodic_windows


# ----------------------------------------------------------------------
# first criterion
# ----------------------------------------------------------------------
def metric_c1p(
    schedule: SystemSchedule,
    future: FutureCharacterization,
    policy: str = "best-fit",
) -> float:
    """C1P: % of future *process* demand that does not fit in the slack.

    Parameters
    ----------
    schedule:
        The candidate design (current + existing applications).
    future:
        The future-application characterization.
    policy:
        Bin-packing policy name (``best-fit`` is the paper's choice).
    """
    bag = future.future_process_bag(schedule.horizon)
    if not bag:
        return 0.0
    containers = processor_slack_containers(schedule)
    result = POLICIES[policy](bag, containers)
    return 100.0 * result.unplaced_fraction


def metric_c1m(
    schedule: SystemSchedule,
    future: FutureCharacterization,
    policy: str = "best-fit",
) -> float:
    """C1m: % of future *message* demand that does not fit on the bus."""
    bag = future.future_message_bag(schedule.horizon)
    if not bag:
        return 0.0
    containers = bus_slack_containers(schedule)
    result = POLICIES[policy](bag, containers)
    return 100.0 * result.unplaced_fraction


# ----------------------------------------------------------------------
# second criterion
# ----------------------------------------------------------------------
def metric_c2p(schedule: SystemSchedule, future: FutureCharacterization) -> int:
    """C2P: sum over processors of the minimum per-T_min-window slack.

    Slide 13: the guaranteed processor time a future application of
    period ``T_min`` can count on in *every* one of its periods.
    """
    windows = periodic_windows(schedule.horizon, future.t_min)
    total = 0
    for node_id in schedule.architecture.node_ids:
        total += min(schedule.slack_within(node_id, w) for w in windows)
    return total


def metric_c2m(schedule: SystemSchedule, future: FutureCharacterization) -> int:
    """C2m: minimum per-T_min-window residual bus capacity (bytes)."""
    windows = periodic_windows(schedule.horizon, future.t_min)
    return min(schedule.bus.free_bytes_within(w) for w in windows)


# ----------------------------------------------------------------------
# objective
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectiveWeights:
    """Weights of the slide-14 objective function.

    Attributes
    ----------
    w1p, w1m:
        Weights of the first-criterion metrics (percentages).
    w2p, w2m:
        Weights of the second-criterion penalty terms.
    normalize_second:
        When True (default) the penalties ``max(0, t_need - C2P)`` and
        ``max(0, b_need - C2m)`` are scaled to percentages of
        ``t_need`` / ``b_need`` so all terms are commensurate.
    binpack_policy:
        Bin-packing policy used by the first criterion.
    """

    w1p: float = 1.0
    w1m: float = 1.0
    w2p: float = 1.0
    w2m: float = 1.0
    normalize_second: bool = True
    binpack_policy: str = "best-fit"

    def __post_init__(self) -> None:
        for name in ("w1p", "w1m", "w2p", "w2m"):
            if getattr(self, name) < 0:
                raise ValueError(f"weight {name} must be non-negative")
        if self.binpack_policy not in POLICIES:
            raise ValueError(
                f"unknown bin-packing policy {self.binpack_policy!r}; "
                f"choose from {sorted(POLICIES)}"
            )


@dataclass
class NodeSlackData:
    """Per-node slack inputs of the metrics, cacheable across designs.

    Attributes
    ----------
    containers:
        Gap lengths of the node's slack (the node's contribution to the
        C1P bin-packing containers, in gap order).
    window_slacks:
        Free time of the node inside each consecutive ``T_min`` window
        (the node's C2P column).
    window_min:
        ``min(window_slacks)`` -- the node's C2P contribution.
    """

    containers: List[int]
    window_slacks: List[int]
    window_min: int


@dataclass
class MetricsMemo:
    """Per-resource metric inputs and values of one evaluated design.

    Delta evaluation stores this next to the schedule: a child design
    whose timeline on a node (or the bus) is byte-identical to its
    parent's reuses the parent's slack data -- and, when *every*
    resource a metric depends on is unchanged, the metric value itself
    -- instead of re-extracting gaps, window profiles and bin
    packings.  A dirty bus is patched sparsely: the child's residual
    vector is the parent's plus the (tiny) per-occurrence occupancy
    diff.  Reuse is exact by construction: a resource only counts as
    clean when its busy time (or the bus's byte occupancy) equals the
    parent's, and each metric is a pure function of those inputs.

    ``bus_residuals`` is the *unfiltered* free-byte vector over all
    slot occurrences in window-start order (a numpy array, shared
    never mutated).
    """

    nodes: Dict[str, NodeSlackData]
    bus_residuals: "np.ndarray"
    bus_window_free: List[int]
    c1p: float
    c1m: float
    c2m: int


def _node_slack_data(
    schedule: SystemSchedule, node_id: str, windows: List
) -> NodeSlackData:
    """Extract one node's metric inputs (gaps >= 1 and window slacks).

    One pass over the node's canonical busy runs yields both the gap
    lengths (the complement inside the horizon) and the per-window
    busy time; equivalent to :meth:`SystemSchedule.slack_gaps` plus
    per-window :meth:`SystemSchedule.slack_within`, without building
    interval objects per evaluation.
    """
    horizon = schedule.horizon
    width = windows[0].length
    busy = [0] * len(windows)
    containers: List[int] = []
    cursor = 0
    for start, end in schedule.busy_pairs(node_id):
        if start > cursor:
            containers.append(start - cursor)
        cursor = end
        k = start // width
        while start < end:
            boundary = (k + 1) * width
            if boundary >= end:
                busy[k] += end - start
                break
            busy[k] += boundary - start
            start = boundary
            k += 1
    if cursor < horizon:
        containers.append(horizon - cursor)
    window_slacks = [
        window.length - used for window, used in zip(windows, busy)
    ]
    return NodeSlackData(
        containers=containers,
        window_slacks=window_slacks,
        window_min=min(window_slacks),
    )


@lru_cache(maxsize=64)
def _bus_geometry(bus, horizon: int, t_min: int):
    """Static occurrence geometry of one bus/horizon/window setup.

    Returns ``(capacities, position index, window index, static
    per-window capacity)``: numpy capacity vector over all usable slot
    occurrences in window-start order, the ``(node, round) -> vector
    position`` map, the ``T_min`` window each occurrence lies fully
    inside (-1 when it straddles a boundary), and the total capacity
    per window.  Pure function of immutable inputs, cached across all
    evaluations of a spec.
    """
    from repro.tdma.schedule import occurrence_order

    order = occurrence_order(bus, horizon)
    capacities = np.array([cap for _, _, cap in order], dtype=np.int64)
    position = {
        (node_id, r): i for i, (node_id, r, _) in enumerate(order)
    }
    window_index = np.full(len(order), -1, dtype=np.int64)
    round_length = bus.round_length
    for i, (node_id, r, _) in enumerate(order):
        start = r * round_length + bus.slot_offset(node_id)
        length = bus.slot_of(node_id).length
        k = start // t_min
        if start + length <= min((k + 1) * t_min, horizon):
            window_index[i] = k
    n_windows = -(-horizon // t_min)
    static = np.zeros(n_windows, dtype=np.int64)
    inside = window_index >= 0
    np.add.at(static, window_index[inside], capacities[inside])
    return capacities, position, window_index, static


def _bus_slack_data(
    schedule: SystemSchedule, t_min: int
) -> Tuple["np.ndarray", List[int]]:
    """Extract the bus metric inputs (residual vector, window bytes).

    Equivalent to per-occurrence ``capacity - used`` in window-start
    order plus :meth:`BusSchedule.free_bytes_within` per window,
    computed from the cached geometry in one sparse pass over the
    used-bytes map.
    """
    capacities, position, window_index, static = _bus_geometry(
        schedule.bus.bus, schedule.horizon, t_min
    )
    residuals = capacities.copy()
    window_used = [0] * len(static)
    for key, used in schedule.bus.used_map().items():
        i = position[key]
        residuals[i] -= used
        w = window_index[i]
        if w >= 0:
            window_used[w] += used
    window_free = [
        int(cap) - used for cap, used in zip(static, window_used)
    ]
    return residuals, window_free


@lru_cache(maxsize=128)
def _packing_inputs(
    future: FutureCharacterization, horizon: int
) -> Tuple[Tuple[int, ...], int, int, Tuple[int, ...], int, int]:
    """Pre-sorted future bags for the C1 bin packings, cached per spec.

    Returns ``(process bag descending, its total, its min, message bag
    descending, its total, its min)``.  The bags are deterministic
    functions of ``(future, horizon)``, which never change inside a
    search run, so every evaluation reuses one sorted copy.  The
    minimum sizes drive an exact container prefilter: a slack gap (or
    slot residual) smaller than the smallest future object can never
    host anything, never influences any fit decision of the packing
    policies, and is dropped before packing.
    """
    process_bag = tuple(
        sorted(future.future_process_bag(horizon), reverse=True)
    )
    message_bag = tuple(
        sorted(future.future_message_bag(horizon), reverse=True)
    )
    return (
        process_bag,
        sum(process_bag),
        process_bag[-1] if process_bag else 1,
        message_bag,
        sum(message_bag),
        message_bag[-1] if message_bag else 1,
    )


@dataclass(frozen=True)
class DesignMetrics:
    """The four metric values plus the combined objective for a design."""

    c1p: float
    c1m: float
    c2p: int
    c2m: int
    penalty_2p: float
    penalty_2m: float
    objective: float

    def summary(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"C1P={self.c1p:.1f}% C1m={self.c1m:.1f}% "
            f"C2P={self.c2p} C2m={self.c2m} "
            f"pen2P={self.penalty_2p:.1f} pen2m={self.penalty_2m:.1f} "
            f"C={self.objective:.2f}"
        )


def evaluate_design(
    schedule: SystemSchedule,
    future: FutureCharacterization,
    weights: Optional[ObjectiveWeights] = None,
) -> DesignMetrics:
    """Compute all four metrics and the combined objective ``C``.

    Smaller is better; 0 means the design leaves ideal room for the
    characterized future family.
    """
    metrics, _ = evaluate_design_delta(schedule, future, weights)
    return metrics


def evaluate_design_delta(
    schedule: SystemSchedule,
    future: FutureCharacterization,
    weights: Optional[ObjectiveWeights] = None,
    parent_memo: Optional[MetricsMemo] = None,
    clean_nodes: Collection[str] = (),
    bus_clean: bool = False,
    parent_bus=None,
) -> Tuple[DesignMetrics, MetricsMemo]:
    """:func:`evaluate_design` with per-resource slack-input reuse.

    The single metric core every evaluation path shares: cold
    evaluation calls it with no parent (every resource recomputed);
    delta evaluation passes the parent's :class:`MetricsMemo` plus the
    set of *clean* resources -- nodes (and the bus) whose timeline is
    byte-identical to the parent's -- whose slack extraction is then
    skipped.  A dirty bus with a known parent (``parent_bus``) is
    patched sparsely from the occupancy diff instead of re-extracted.
    The mixing steps (bin packing, window minima, the objective)
    always recompute from the per-resource inputs, so the returned
    metrics are exactly those of a cold evaluation.

    Returns the metrics together with the design's own memo (for use
    as a parent later).
    """
    if weights is None:
        weights = ObjectiveWeights()
    windows = periodic_windows(schedule.horizon, future.t_min)
    node_ids = schedule.architecture.node_ids

    all_nodes_clean = parent_memo is not None
    node_data: Dict[str, NodeSlackData] = {}
    for node_id in node_ids:
        if parent_memo is not None and node_id in clean_nodes:
            node_data[node_id] = parent_memo.nodes[node_id]
        else:
            node_data[node_id] = _node_slack_data(schedule, node_id, windows)
            all_nodes_clean = False
    bus_clean = parent_memo is not None and bus_clean
    if bus_clean:
        bus_residuals = parent_memo.bus_residuals
        bus_window_free = parent_memo.bus_window_free
    elif parent_memo is not None and parent_bus is not None:
        # Sparse patch: start from the parent's residual vector and
        # apply the per-occurrence occupancy differences.
        _, position, window_index, _ = _bus_geometry(
            schedule.bus.bus, schedule.horizon, future.t_min
        )
        bus_residuals = parent_memo.bus_residuals.copy()
        bus_window_free = list(parent_memo.bus_window_free)
        for key, delta_used in schedule.bus.occupancy_diff(parent_bus):
            i = position[key]
            bus_residuals[i] -= delta_used
            w = window_index[i]
            if w >= 0:
                bus_window_free[w] -= delta_used
    else:
        bus_residuals, bus_window_free = _bus_slack_data(
            schedule, future.t_min
        )

    # First criterion: bin-pack the future bags into the slack.  The
    # packed value is a pure function of the container lists, so it is
    # reused verbatim when every contributing resource is clean.  The
    # default best-fit policy goes through the lean unplaced-total
    # kernel; the ablation policies take the generic packer.
    lean = weights.binpack_policy == "best-fit"
    pack = POLICIES[weights.binpack_policy]
    (
        process_bag,
        process_total,
        process_min,
        message_bag,
        message_total,
        message_min,
    ) = _packing_inputs(future, schedule.horizon)
    if all_nodes_clean:
        c1p = parent_memo.c1p
    elif process_bag:
        containers = [
            length
            for node_id in node_ids
            for length in node_data[node_id].containers
            if length >= process_min
        ]
        if lean:
            unplaced_total = best_fit_unplaced_total(process_bag, containers)
        else:
            unplaced_total = sum(
                pack(process_bag, containers, decreasing=False).unplaced
            )
        c1p = 100.0 * unplaced_total / process_total
    else:
        c1p = 0.0
    if bus_clean:
        c1m = parent_memo.c1m
        c2m = parent_memo.c2m
    else:
        if message_bag:
            eligible = bus_residuals[bus_residuals >= message_min]
            if lean:
                unplaced_total = best_fit_unplaced_total(message_bag, eligible)
            else:
                unplaced_total = sum(
                    pack(
                        message_bag, eligible.tolist(), decreasing=False
                    ).unplaced
                )
            c1m = 100.0 * unplaced_total / message_total
        else:
            c1m = 0.0
        c2m = int(min(bus_window_free))

    # Second criterion: worst-window slack per node, summed.
    c2p = sum(node_data[n].window_min for n in node_ids)

    memo = MetricsMemo(
        node_data, bus_residuals, bus_window_free, c1p, c1m, c2m
    )

    pen2p = max(0.0, float(future.t_need - c2p))
    pen2m = max(0.0, float(future.b_need - c2m))
    if weights.normalize_second:
        if future.t_need > 0:
            pen2p = 100.0 * pen2p / future.t_need
        if future.b_need > 0:
            pen2m = 100.0 * pen2m / future.b_need

    objective = (
        weights.w1p * c1p
        + weights.w1m * c1m
        + weights.w2p * pen2p
        + weights.w2m * pen2m
    )
    return DesignMetrics(c1p, c1m, c2p, c2m, pen2p, pen2m, objective), memo
