"""Extension: incremental design with modification of existing applications.

The paper's stated future work (slide 18, developed in the authors'
CODES 2001 follow-up) drops the hard form of requirement (a): when the
current application cannot be mapped without touching anything -- or
only with a poor design -- a *subset* of the existing applications may
be remapped and rescheduled, at a per-application **modification cost**
capturing the re-design and re-testing effort.  The goal is a valid,
metric-optimized design whose total modification cost is minimal.

This module implements the subset-selection flow:

1. try the pure incremental design (nothing modified);
2. otherwise unfreeze existing applications in ascending cost order
   (cheapest-first greedy, the natural "minimize modification cost"
   heuristic) -- the still-frozen remainder is rebuilt into a base
   schedule, and the unfrozen applications are redesigned *together
   with* the current application by the chosen strategy;
3. return the first valid design found, with the modified subset and
   its total cost.

The unfrozen applications participate fully in the optimization: their
processes may move to different nodes and different slacks, exactly
like current-application processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.future import FutureCharacterization
from repro.core.initial_mapping import InitialMapper
from repro.core.metrics import ObjectiveWeights
from repro.core.strategy import DesignResult, DesignSpec, make_strategy
from repro.model.application import Application, merge_applications
from repro.model.architecture import Architecture
from repro.sched.schedule import SystemSchedule
from repro.search.budget import Budget
from repro.search.portfolio import first_valid
from repro.utils.errors import InvalidModelError
from repro.utils.timemath import hyperperiod


@dataclass(frozen=True)
class ExistingApplication:
    """An already-running application with its modification cost.

    Attributes
    ----------
    application:
        The application as originally designed.
    modification_cost:
        Engineering cost of remapping/rescheduling it (re-validation,
        re-testing); non-negative, in arbitrary consistent units.
    """

    application: Application
    modification_cost: float

    def __post_init__(self) -> None:
        if self.modification_cost < 0:
            raise InvalidModelError(
                f"modification cost of {self.application.name!r} must be "
                f"non-negative, got {self.modification_cost}"
            )

    @property
    def name(self) -> str:
        return self.application.name


@dataclass
class ModificationResult:
    """Outcome of the modification-aware design flow.

    Attributes
    ----------
    valid:
        Whether any subset yielded a valid design.
    modified:
        Names of the existing applications that were remapped.
    total_cost:
        Sum of their modification costs (0.0 when nothing moved).
    design:
        The strategy's result for the movable set (current application
        plus the modified existing applications).
    attempts:
        Number of subsets tried.
    """

    valid: bool
    modified: List[str] = field(default_factory=list)
    total_cost: float = 0.0
    design: Optional[DesignResult] = None
    attempts: int = 0
    #: Why the subset scan ended: ``valid``, ``exhausted``, or the
    #: budget reason that cut it (``budget:steps``/``budget:seconds``).
    stop_reason: str = ""


def design_with_modifications(
    architecture: Architecture,
    existing: Sequence[ExistingApplication],
    current: Application,
    future: FutureCharacterization,
    weights: Optional[ObjectiveWeights] = None,
    strategy: str = "MH",
    horizon: Optional[int] = None,
    max_modified: Optional[int] = None,
    jobs: int = 1,
    use_delta: bool = True,
    engine_core: str = "array",
    cache_store: str = "memory",
    cache_path: Optional[str] = None,
    budget: Optional[Budget] = None,
    attempt_budget: Optional[Budget] = None,
    **strategy_kwargs,
) -> ModificationResult:
    """Design ``current``, modifying existing applications only if needed.

    Parameters
    ----------
    architecture:
        The platform.
    existing:
        The running applications with their modification costs.
    current:
        The application to integrate now.
    future:
        Future-family characterization driving the objective.
    weights:
        Objective weights (defaults to the balanced slide-14 weights).
    strategy:
        Which mapping strategy redesigns the movable set (``MH`` by
        default; ``AH``/``SA`` accepted).
    horizon:
        Schedule horizon; defaults to the hyperperiod of all
        applications involved.
    max_modified:
        Upper bound on how many existing applications may be modified
        (``None`` = all of them, i.e. full redesign as last resort).
    jobs:
        Worker processes for the strategy's evaluation engine; each
        subset attempt redesigns a larger movable application, which is
        exactly where parallel batch evaluation pays off.
    use_delta:
        Incremental (move-aware) evaluation inside each subset
        attempt's strategy run; the movable application only grows
        with ``k``, so the delta kernel's checkpoint resumes pay off
        more the deeper the greedy search goes.  Results are identical
        with it off.
    engine_core:
        Scheduler core (``"array"`` or ``"object"``) of every subset
        attempt's evaluation engine; results are byte-identical.
    cache_store / cache_path:
        Result-store backend of every subset attempt's evaluation
        engine (``"memory"`` or ``"sqlite"`` at ``cache_path``); the
        attempts share one database, so a re-run of the scan is served
        warm.
    budget:
        Per-strategy search budget, forwarded to every subset
        attempt's strategy run (see the strategies' ``budget`` field).
    attempt_budget:
        Budget of the subset scan itself: ``max_steps`` caps how many
        subsets are tried, ``max_seconds`` the total wall-clock across
        attempts.  A cut scan returns ``valid=False`` with the budget
        reason in ``stop_reason``.
    strategy_kwargs:
        Forwarded to the strategy constructor (e.g. SA iterations).

    Returns
    -------
    ModificationResult
        The cheapest-first greedy outcome; ``valid`` is False only when
        even modifying every allowed application fails.
    """
    if weights is None:
        weights = ObjectiveWeights()
    if horizon is None:
        periods: List[int] = list(current.periods)
        for item in existing:
            periods.extend(item.application.periods)
        horizon = hyperperiod(periods)
    if max_modified is None:
        max_modified = len(existing)
    strategy_kwargs.setdefault("jobs", jobs)
    strategy_kwargs.setdefault("use_delta", use_delta)
    strategy_kwargs.setdefault("engine_core", engine_core)
    strategy_kwargs.setdefault("cache_store", cache_store)
    strategy_kwargs.setdefault("cache_path", cache_path)
    if budget is not None:
        strategy_kwargs.setdefault("budget", budget)

    by_cost = sorted(existing, key=lambda e: (e.modification_cost, e.name))
    mapper = InitialMapper(architecture)

    def attempt_for(k: int):
        """Thunk trying the cheapest-k unfrozen subset."""

        def attempt() -> ModificationResult:
            unfrozen = by_cost[:k]
            frozen = by_cost[k:]
            base = _frozen_base(mapper, architecture, frozen, horizon)
            if base is None:
                return ModificationResult(valid=False)
            movable = _movable_application(current, unfrozen)
            spec = DesignSpec(
                architecture=architecture,
                current=movable,
                future=future,
                base_schedule=base,
                weights=weights,
            )
            result = make_strategy(strategy, **strategy_kwargs).design(spec)
            return ModificationResult(
                valid=result.valid,
                modified=[e.name for e in unfrozen],
                total_cost=sum(e.modification_cost for e in unfrozen),
                design=result,
            )

        return attempt

    outcome, attempts, stop_reason = first_valid(
        (attempt_for(k) for k in range(0, max_modified + 1)),
        budget=attempt_budget,
    )
    if outcome is None:
        return ModificationResult(
            valid=False, attempts=attempts, stop_reason=stop_reason
        )
    outcome.attempts = attempts
    outcome.stop_reason = stop_reason
    return outcome


def _frozen_base(
    mapper: InitialMapper,
    architecture: Architecture,
    frozen: Sequence[ExistingApplication],
    horizon: int,
) -> Optional[SystemSchedule]:
    """Schedule the still-frozen applications into a frozen base."""
    if not frozen:
        return SystemSchedule(architecture, horizon)
    merged = merge_applications(
        "frozen", [item.application for item in frozen]
    )
    outcome = mapper.try_map_and_schedule(
        merged, horizon=horizon, frozen=True
    )
    if outcome is None:
        return None
    return outcome[1]


def _movable_application(
    current: Application, unfrozen: Sequence[ExistingApplication]
) -> Application:
    """The joint application the strategy redesigns.

    When nothing is unfrozen this is the current application itself,
    so the k=0 iteration is exactly the paper's original flow.
    """
    if not unfrozen:
        return current
    return merge_applications(
        "movable", [item.application for item in unfrozen] + [current]
    )
