"""Process priority functions for list scheduling.

The paper's Initial Mapping starts from the Heterogeneous Critical Path
(HCP) algorithm of Jorgensen & Madsen (CODES'97): list scheduling where
each ready process's priority is the length of its longest path to a
sink, with execution times averaged over the heterogeneous candidate
nodes and communication charged at the message's bus transmission
estimate.  Higher priority = more critical = scheduled first.

Priorities are plain ``{process_id: float}`` maps, so the search
strategies (SA, MH) can perturb them to steer a process into a
different slack -- the paper's "move a process to a different slack on
the same processor" transformation.
"""

from __future__ import annotations

from typing import Dict, Mapping as TMapping

from repro.model.application import Application
from repro.model.process_graph import ProcessGraph
from repro.tdma.bus import TdmaBus

PriorityMap = Dict[str, float]


def _bus_time_estimate(size: int, bus: TdmaBus) -> float:
    """Average time for ``size`` bytes to traverse the TDMA bus.

    A message waits on average half a round for its sender's slot and
    is delivered at the slot end; large messages need several rounds.
    The estimate charges ``ceil(size / avg_capacity)`` rounds of delay,
    which is what HCP needs: a node-independent communication weight.
    """
    avg_capacity = sum(s.capacity for s in bus.slots) / len(bus.slots)
    rounds_needed = max(1, -(-size // int(avg_capacity)))
    return rounds_needed * bus.round_length

    # NOTE: deliberately coarse -- priorities only order the ready list;
    # exact message timing is resolved by the list scheduler itself.


def graph_hcp_priorities(graph: ProcessGraph, bus: TdmaBus) -> PriorityMap:
    """HCP priority (bottom level) for every process of one graph.

    ``priority(p) = avg_wcet(p) + max over successors s of
    (bus_estimate(msg(p, s)) + priority(s))``, i.e. the longest
    remaining path to a sink counting average execution times and
    estimated communication delays.
    """
    priorities: PriorityMap = {}
    for pid in reversed(graph.topological_order()):
        proc = graph.process(pid)
        best_tail = 0.0
        for msg in graph.out_messages(pid):
            tail = _bus_time_estimate(msg.size, bus) + priorities[msg.dst]
            best_tail = max(best_tail, tail)
        priorities[pid] = proc.average_wcet + best_tail
    return priorities


def hcp_priorities(application: Application, bus: TdmaBus) -> PriorityMap:
    """HCP priorities for every process of ``application``.

    Graphs are independent, so priorities are computed per graph; the
    list scheduler additionally orders by release time and deadline, so
    cross-graph comparability of the raw values is not required.
    """
    priorities: PriorityMap = {}
    for graph in application.graphs:
        priorities.update(graph_hcp_priorities(graph, bus))
    return priorities


def topological_priorities(application: Application) -> PriorityMap:
    """A structure-only fallback: depth from the sinks, ignoring time.

    Used by tests and as a deliberately weak priority for ablations.
    """
    priorities: PriorityMap = {}
    for graph in application.graphs:
        for pid in reversed(graph.topological_order()):
            succ = graph.successors(pid)
            priorities[pid] = 1.0 + max(
                (priorities[s] for s in succ), default=0.0
            )
    return priorities


def normalized(priorities: TMapping[str, float]) -> PriorityMap:
    """Scale priorities into [0, 1] (max becomes 1); empty map passes through."""
    if not priorities:
        return {}
    top = max(priorities.values())
    if top <= 0:
        return {k: 0.0 for k in priorities}
    return {k: v / top for k, v in priorities.items()}
