"""Scheduling traces: the checkpoint substrate of incremental evaluation.

A :class:`ScheduleTrace` records the *decision sequence* of one
successful list-scheduling pass: the order process instances were
popped from the ready heap, where each one was placed, and how each of
its outgoing messages was delivered.  Together with the per-job
bookkeeping (`ready_at`, `pop_index`) this is a complete set of
timeline checkpoints: scheduling can be restarted from *any* event
index ``d`` by replaying events ``[0, d)`` -- which needs no heap, no
gap search and no TDMA slot search -- and resuming the normal algorithm
from there.

The delta evaluator (:mod:`repro.engine.delta`) uses traces in two
ways:

* **divergence analysis** -- given a move's footprint, the earliest
  event whose decision could differ from the parent run is derived
  from ``pop_index`` (mapping / message-delay changes matter when the
  affected process is popped) and ``ready_at`` plus the recorded heap
  keys (priority changes matter from the moment the re-keyed job sits
  in the ready heap and could win a pop);
* **prefix replay** -- events before the divergence are re-applied
  verbatim; per-node timelines whose last recorded touch lies before
  the divergence are structurally shared from the parent schedule
  instead of being replayed at all.

Traces are recorded only when the caller asks for them (the evaluation
engine's delta mode); plain scheduling pays nothing.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro.sched.jobs import Job, JobKey

#: The ready-heap key of one job: ``(urgency, release, pid, instance)``.
HeapKey = Tuple[float, int, str, int]


def heap_key(job: Job, priorities: Mapping[str, float]) -> HeapKey:
    """Min-heap key: most urgent ready job first.

    Urgency is the job's *latest start time*: absolute deadline minus
    its priority value, where the default (HCP) priority is the length
    of the remaining critical path.  Within one graph (shared deadline)
    this reduces to classic highest-priority-first HCP ordering; across
    graphs it folds the deadline in, so an urgent short application is
    not starved by a long relaxed one.  Ties break on release time,
    then ids.

    The single definition shared by the object kernel
    (:mod:`repro.sched.list_scheduler`), the delta evaluator's
    divergence analysis, and the array kernel's rank construction
    (:mod:`repro.sched.arrays`), so tie-breaking can never drift
    between them.
    """
    return (
        job.abs_deadline - priorities.get(job.process_id, 0.0),
        job.release,
        job.process_id,
        job.instance,
    )


class MessageEvent(NamedTuple):
    """One message delivery performed while processing a trace event.

    ``round_index`` is ``None`` for intra-node messages (delivered
    instantly, nothing placed on the bus).  ``succ_key`` is the
    receiving job, stored so replay needs no graph lookups.
    """

    message_id: str
    instance: int
    src_node: str
    round_index: Optional[int]
    arrival: int
    size: int
    succ_key: JobKey


class TraceEvent(NamedTuple):
    """One ready-heap pop: a job placement plus its message deliveries.

    ``heap_key`` is the key the job was popped with; divergence
    analysis compares re-keyed dirty jobs against it to find the first
    pop a priority move could steal.
    """

    key: JobKey
    node_id: str
    start: int
    end: int
    heap_key: HeapKey
    messages: Tuple[MessageEvent, ...]


class ScheduleTrace:
    """Decision sequence and checkpoint bookkeeping of one pass.

    Attributes
    ----------
    horizon:
        Horizon of the schedule the trace belongs to.
    events:
        One :class:`TraceEvent` per ready-heap pop, in pop order.
    ready_at:
        Per job, the earliest event index at which the job sat in the
        ready heap: sources are ready from event 0, a job pushed while
        event ``i`` was processed is in the heap from event ``i + 1``.
    pop_index:
        Per job, the event index at which it was popped (every job of
        a *successful* pass has one).
    node_last:
        Per node, the index of the last event placed on it (absent =
        never touched).  A node whose last touch lies before a
        divergence point can be structurally shared from the parent.
    bus_last:
        Index of the last event that placed a message on the bus
        (``-1`` when the pass used the bus not at all).
    """

    __slots__ = ("horizon", "events", "ready_at", "pop_index", "node_last", "bus_last")

    def __init__(
        self,
        horizon: int,
        events: Optional[List[TraceEvent]] = None,
        ready_at: Optional[Dict[JobKey, int]] = None,
        pop_index: Optional[Dict[JobKey, int]] = None,
        node_last: Optional[Dict[str, int]] = None,
        bus_last: int = -1,
    ):
        self.horizon = horizon
        self.events: List[TraceEvent] = [] if events is None else events
        self.ready_at: Dict[JobKey, int] = {} if ready_at is None else ready_at
        self.pop_index: Dict[JobKey, int] = {} if pop_index is None else pop_index
        self.node_last: Dict[str, int] = {} if node_last is None else node_last
        self.bus_last = bus_last

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # recording (called by the list scheduler's pass loop)
    # ------------------------------------------------------------------
    def mark_source(self, key: JobKey) -> None:
        """Record a job that is in the ready heap before any event."""
        self.ready_at[key] = 0

    def mark_ready(self, key: JobKey) -> None:
        """Record a job pushed while the current event is processed."""
        self.ready_at[key] = len(self.events) + 1

    def record_event(
        self,
        key: JobKey,
        node_id: str,
        start: int,
        end: int,
        heap_key: HeapKey,
        messages: Tuple[MessageEvent, ...],
        bus_touched: bool,
    ) -> None:
        """Append one completed pop (placement + deliveries)."""
        index = len(self.events)
        self.pop_index[key] = index
        self.node_last[node_id] = index
        if bus_touched:
            self.bus_last = index
        self.events.append(
            TraceEvent(key, node_id, start, end, heap_key, messages)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduleTrace(events={len(self.events)}, "
            f"horizon={self.horizon})"
        )
