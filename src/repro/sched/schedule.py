"""The system schedule table.

A :class:`SystemSchedule` records, over one hyperperiod:

* per processing node, the non-overlapping reservations of process
  instances (a :class:`repro.utils.intervals.IntervalSet` of busy time
  plus the individual :class:`ScheduledProcess` entries), and
* the bus occupancy (a :class:`repro.tdma.schedule.BusSchedule`).

Entries can be *frozen*: they belong to existing applications and the
incremental design process is forbidden from touching them (the
paper's requirement (a)).  The design metrics consume the schedule
through :meth:`SystemSchedule.slack_gaps` (processor slack) and the bus
schedule's residual queries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.model.architecture import Architecture
from repro.tdma.schedule import BusSchedule
from repro.utils.errors import SchedulingError
from repro.utils.intervals import Interval, IntervalSet


@dataclass(frozen=True)
class ScheduledProcess:
    """One scheduled instance of a process.

    Attributes
    ----------
    process_id:
        The process this entry executes.
    instance:
        Periodic instance index (0-based within the hyperperiod).
    node_id:
        The node the instance runs on.
    start, end:
        Half-open execution window ``[start, end)`` in time units.
    frozen:
        True for entries of existing applications (must not move).
    """

    process_id: str
    instance: int
    node_id: str
    start: int
    end: int
    frozen: bool = False

    @property
    def interval(self) -> Interval:
        """The execution window as an interval."""
        return Interval(self.start, self.end)

    @property
    def duration(self) -> int:
        return self.end - self.start


class SystemSchedule:
    """Processor and bus schedule tables over one hyperperiod.

    Parameters
    ----------
    architecture:
        The platform (nodes + TDMA bus).
    horizon:
        Schedule length in time units; normally the hyperperiod of all
        applications in the scenario.
    """

    def __init__(self, architecture: Architecture, horizon: int):
        if horizon <= 0:
            raise SchedulingError(
                f"schedule horizon must be positive, got {horizon}"
            )
        self.architecture = architecture
        self.horizon = horizon
        self._busy: Dict[str, IntervalSet] = {
            node_id: IntervalSet() for node_id in architecture.node_ids
        }
        self._entries: Dict[str, List[ScheduledProcess]] = {
            node_id: [] for node_id in architecture.node_ids
        }
        self._by_process: Dict[Tuple[str, int], ScheduledProcess] = {}
        self.bus = BusSchedule(architecture.bus, horizon)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def place_process(
        self,
        process_id: str,
        instance: int,
        node_id: str,
        start: int,
        duration: int,
        frozen: bool = False,
    ) -> ScheduledProcess:
        """Reserve ``[start, start+duration)`` on ``node_id``.

        Raises
        ------
        repro.utils.errors.SchedulingError
            On overlap with an existing reservation, an out-of-horizon
            window, or a duplicate (process, instance).
        """
        if node_id not in self._busy:
            raise SchedulingError(f"unknown node {node_id!r}")
        if duration <= 0:
            raise SchedulingError(
                f"process {process_id!r} has non-positive duration {duration}"
            )
        if start < 0 or start + duration > self.horizon:
            raise SchedulingError(
                f"process {process_id!r} instance {instance} window "
                f"[{start}, {start + duration}) leaves the horizon "
                f"[0, {self.horizon})"
            )
        key = (process_id, instance)
        if key in self._by_process:
            raise SchedulingError(
                f"process {process_id!r} instance {instance} already scheduled"
            )
        window = Interval(start, start + duration)
        try:
            self._busy[node_id].add_busy(window)
        except ValueError:
            raise SchedulingError(
                f"process {process_id!r} instance {instance} overlaps busy "
                f"time on node {node_id!r} at {window}"
            ) from None
        entry = ScheduledProcess(process_id, instance, node_id, start, start + duration, frozen)
        self._entries[node_id].append(entry)
        self._by_process[key] = entry
        return entry

    def remove_process(self, process_id: str, instance: int) -> None:
        """Remove a non-frozen process instance and free its time.

        Raises
        ------
        repro.utils.errors.SchedulingError
            If the instance is unknown or frozen.
        """
        key = (process_id, instance)
        entry = self._by_process.get(key)
        if entry is None:
            raise SchedulingError(
                f"process {process_id!r} instance {instance} is not scheduled"
            )
        if entry.frozen:
            raise SchedulingError(
                f"process {process_id!r} instance {instance} belongs to an "
                f"existing application and cannot be removed"
            )
        self._entries[entry.node_id].remove(entry)
        del self._by_process[key]
        # Rebuild the busy set of the affected node (removal from an
        # IntervalSet with merged adjacency needs the entry list anyway).
        rebuilt = IntervalSet()
        for other in self._entries[entry.node_id]:
            rebuilt.add_busy(other.interval)
        self._busy[entry.node_id] = rebuilt

    def freeze_all(self) -> None:
        """Mark every current entry (processes and messages) frozen.

        Called once after the existing applications are scheduled, so
        the incremental design process cannot modify them.
        """
        for node_id, entries in self._entries.items():
            self._entries[node_id] = [replace(e, frozen=True) for e in entries]
        self._by_process = {
            (e.process_id, e.instance): e
            for entries in self._entries.values()
            for e in entries
        }
        frozen_bus = BusSchedule(self.bus.bus, self.horizon)
        for occ in self.bus.all_entries():
            frozen_bus.place(
                occ.message_id,
                occ.instance,
                occ.node_id,
                occ.round_index,
                occ.size,
                frozen=True,
            )
        self.bus = frozen_bus

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def entries_on(self, node_id: str) -> List[ScheduledProcess]:
        """Entries on ``node_id`` sorted by start time."""
        if node_id not in self._entries:
            raise SchedulingError(f"unknown node {node_id!r}")
        return sorted(self._entries[node_id], key=lambda e: (e.start, e.end))

    def all_entries(self) -> Iterator[ScheduledProcess]:
        """Every process entry in the schedule."""
        for entries in self._entries.values():
            yield from entries

    def entry_of(self, process_id: str, instance: int) -> Optional[ScheduledProcess]:
        """The entry of a process instance, or None if unscheduled."""
        return self._by_process.get((process_id, instance))

    def busy_pairs(self, node_id: str) -> List[Tuple[int, int]]:
        """The node's busy runs as plain ``(start, end)`` tuples.

        Allocation-free view for the metric extraction hot path.
        """
        if node_id not in self._busy:
            raise SchedulingError(f"unknown node {node_id!r}")
        return self._busy[node_id].as_pairs()

    def busy_equals(self, other: "SystemSchedule", node_id: str) -> bool:
        """Whether ``node_id`` has identical busy time in both schedules.

        Busy-time equality is exactly what the processor-side metrics
        (slack gaps, window slacks) depend on; the delta evaluator uses
        this to detect nodes whose resumed timeline re-derived the
        parent's layout and whose metric inputs can therefore be
        reused.
        """
        return self._busy[node_id] == other._busy[node_id]

    def busy_set(self, node_id: str) -> IntervalSet:
        """A copy of the busy-time set of ``node_id``."""
        if node_id not in self._busy:
            raise SchedulingError(f"unknown node {node_id!r}")
        return self._busy[node_id].copy()

    def earliest_fit(self, node_id: str, duration: int, not_before: int) -> int:
        """Earliest start of a gap of ``duration`` on ``node_id``.

        The returned start may leave insufficient room before the
        horizon; the caller (the list scheduler) checks deadlines and
        the horizon bound.
        """
        if node_id not in self._busy:
            raise SchedulingError(f"unknown node {node_id!r}")
        fit = self._busy[node_id].earliest_fit(duration, not_before)
        assert fit is not None  # earliest_fit only returns None for dur<0
        return fit

    def slack_gaps(self, node_id: str) -> List[Interval]:
        """Free gaps on ``node_id`` within the horizon (the slack).

        This is the raw material of both design criteria: metric C1P
        bin-packs future processes into these gaps; metric C2P measures
        their distribution across T_min windows.
        """
        if node_id not in self._busy:
            raise SchedulingError(f"unknown node {node_id!r}")
        return self._busy[node_id].complement(Interval(0, self.horizon)).intervals()

    def slack_within(self, node_id: str, window: Interval) -> int:
        """Free time units of ``node_id`` inside ``window``."""
        if node_id not in self._busy:
            raise SchedulingError(f"unknown node {node_id!r}")
        busy = self._busy[node_id].length_within(window)
        return window.length - busy

    def total_slack(self, node_id: str) -> int:
        """Free time of ``node_id`` over the whole horizon."""
        return self.horizon - self._busy[node_id].total_length

    def utilization(self, node_id: str) -> float:
        """Fraction of the horizon ``node_id`` is busy."""
        return self._busy[node_id].total_length / self.horizon

    def node_entries(self, node_id: str) -> List[ScheduledProcess]:
        """The raw (unsorted) entry list of ``node_id`` -- a copy."""
        if node_id not in self._entries:
            raise SchedulingError(f"unknown node {node_id!r}")
        return list(self._entries[node_id])

    # ------------------------------------------------------------------
    # incremental reconstruction (delta evaluation)
    # ------------------------------------------------------------------
    def clone_node_from(self, other: "SystemSchedule", node_id: str) -> None:
        """Adopt ``other``'s state of one node wholesale.

        The structural-sharing primitive of delta evaluation: when a
        parent run never touches ``node_id`` after the divergence
        point, the child's timeline of that node is byte-identical to
        the parent's final one and is copied in bulk (two list copies)
        instead of being replayed placement by placement.  Both
        schedules must share architecture and horizon.
        """
        self._busy[node_id] = other._busy[node_id].copy()
        entries = list(other._entries[node_id])
        self._entries[node_id] = entries
        by_process = self._by_process
        for entry in entries:
            by_process[(entry.process_id, entry.instance)] = entry

    def load_node(
        self, node_id: str, entries: Iterable[ScheduledProcess]
    ) -> None:
        """Replace ``node_id``'s timeline with ``entries`` in bulk.

        The replay primitive of delta evaluation: the prefix
        reservations of a dirty node (frozen base entries plus replayed
        parent placements) are installed in one pass -- the busy set is
        rebuilt with :meth:`IntervalSet.from_busy_runs` instead of one
        checked insertion per entry.  Overlapping entries raise (the
        inputs come from a valid parent schedule, so this is a
        defensive invariant, not an expected path).
        """
        if node_id not in self._busy:
            raise SchedulingError(f"unknown node {node_id!r}")
        entries = list(entries)
        try:
            busy = IntervalSet.from_busy_runs(
                (e.start, e.end) for e in entries
            )
        except ValueError as exc:
            raise SchedulingError(
                f"replayed entries overlap on node {node_id!r}: {exc}"
            ) from None
        self._busy[node_id] = busy
        self._entries[node_id] = entries
        by_process = self._by_process
        for entry in entries:
            by_process[(entry.process_id, entry.instance)] = entry

    def prune_jobs(self, keys: Iterable[Tuple[str, int]]) -> None:
        """Drop jobs from the lookup index during delta reconstruction.

        Companion of :meth:`load_node`: the delta evaluator copies the
        parent schedule wholesale, prunes every job scheduled at or
        after the divergence point, and bulk-reloads the affected node
        timelines.  Between the prune and the reload the schedule is
        internally inconsistent, so this is strictly a reconstruction
        primitive -- not for general use.
        """
        by_process = self._by_process
        for key in keys:
            del by_process[key]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def copy(self) -> "SystemSchedule":
        """A deep, independent copy (entries are immutable records)."""
        out = SystemSchedule(self.architecture, self.horizon)
        out._busy = {k: v.copy() for k, v in self._busy.items()}
        out._entries = {k: list(v) for k, v in self._entries.items()}
        out._by_process = dict(self._by_process)
        out.bus = self.bus.copy()
        return out

    def validate(self) -> None:
        """Re-check structural invariants (no overlap, inside horizon).

        The mutation API maintains these; ``validate`` exists as a
        defensive cross-check for tests and after deserialization.
        """
        for node_id, entries in self._entries.items():
            ordered = sorted(entries, key=lambda e: e.start)
            for i, entry in enumerate(ordered):
                if entry.start < 0 or entry.end > self.horizon:
                    raise SchedulingError(
                        f"entry {entry} leaves horizon [0, {self.horizon})"
                    )
                if i > 0 and ordered[i - 1].end > entry.start:
                    raise SchedulingError(
                        f"entries {ordered[i - 1]} and {entry} overlap on "
                        f"node {node_id!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = sum(len(v) for v in self._entries.values())
        return (
            f"SystemSchedule(horizon={self.horizon}, processes={n}, "
            f"bus={self.bus!r})"
        )
