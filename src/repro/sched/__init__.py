"""Static cyclic scheduling substrate.

The paper assumes non-preemptive static cyclic scheduling of processes
on nodes and of messages in TDMA slots.  This subpackage provides:

* :class:`~repro.sched.schedule.SystemSchedule` -- the schedule table:
  per-node process reservations plus the bus schedule, over one
  hyperperiod, with *frozen* entries representing existing
  applications that must not be modified (requirement (a)).
* :class:`~repro.sched.list_scheduler.ListScheduler` -- priority-driven
  list scheduling of an application (expanded to all its periodic
  instances) around the frozen reservations, packing inter-node
  messages into TDMA slot occurrences.
* :mod:`~repro.sched.priorities` -- priority functions, including the
  Heterogeneous Critical Path (HCP) priority of Jorgensen & Madsen
  (CODES'97) that seeds the paper's Initial Mapping.
* :mod:`~repro.sched.render` -- ASCII Gantt charts of schedules for
  examples and debugging.
"""

from repro.sched.schedule import ScheduledProcess, SystemSchedule
from repro.sched.list_scheduler import ListScheduler, ScheduleResult
from repro.sched.priorities import (
    hcp_priorities,
    topological_priorities,
    PriorityMap,
)
from repro.sched.render import render_gantt
from repro.sched.asap_alap import TimeBounds, alap_schedule, asap_schedule, time_bounds
from repro.sched.verify import verify_design

__all__ = [
    "ScheduledProcess",
    "SystemSchedule",
    "ListScheduler",
    "ScheduleResult",
    "hcp_priorities",
    "topological_priorities",
    "PriorityMap",
    "render_gantt",
    "TimeBounds",
    "asap_schedule",
    "alap_schedule",
    "time_bounds",
    "verify_design",
]
