"""ASCII rendering of system schedules.

Produces Gantt-style charts like slide 5 of the paper: one row per
processing node, one row for the bus (slot occurrences with their
payloads), with slack shown as dots.  Meant for examples, debugging and
documentation; no terminal tricks, plain text only.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sched.schedule import SystemSchedule


def _scaled(t: int, scale: int) -> int:
    return t // scale


def render_gantt(
    schedule: SystemSchedule,
    scale: int = 1,
    width_limit: int = 200,
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render ``schedule`` as a multi-line ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        The schedule to draw.
    scale:
        Time units per character column.  The function raises the scale
        automatically when the chart would exceed ``width_limit``.
    width_limit:
        Maximum number of chart columns.
    labels:
        Optional mapping from process id to a short display label; by
        default the last ``.``-separated component of the id is used.

    Returns
    -------
    str
        The chart, one row per node plus a bus row and a time ruler.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    while schedule.horizon // scale > width_limit:
        scale *= 2
    columns = max(1, -(-schedule.horizon // scale))

    def label_of(item_id: str) -> str:
        if labels and item_id in labels:
            return labels[item_id]
        return item_id.rsplit(".", 1)[-1]

    lines: List[str] = []
    name_width = max(
        [len(node_id) for node_id in schedule.architecture.node_ids] + [3]
    )

    for node_id in schedule.architecture.node_ids:
        row = ["."] * columns
        for entry in schedule.entries_on(node_id):
            text = label_of(entry.process_id)
            lo = _scaled(entry.start, scale)
            hi = max(lo + 1, _scaled(entry.end + scale - 1, scale))
            hi = min(hi, columns)
            span = hi - lo
            fill = (text[:span]).ljust(span, "#" if entry.frozen else "=")
            for i, ch in enumerate(fill):
                row[lo + i] = ch
        lines.append(f"{node_id:<{name_width}} |{''.join(row)}|")

    bus_row = ["."] * columns
    for occ in schedule.bus.all_entries():
        window = schedule.bus.bus.occurrence_window(occ.node_id, occ.round_index)
        text = label_of(occ.message_id)
        lo = _scaled(window.start, scale)
        hi = max(lo + 1, _scaled(window.end + scale - 1, scale))
        hi = min(hi, columns)
        span = hi - lo
        fill = (text[:span]).ljust(span, "#" if occ.frozen else "~")
        for i, ch in enumerate(fill):
            if bus_row[lo + i] == ".":
                bus_row[lo + i] = ch
    lines.append(f"{'bus':<{name_width}} |{''.join(bus_row)}|")

    ruler = [" "] * columns
    step = max(1, columns // 8)
    for col in range(0, columns, step):
        mark = str(col * scale)
        for i, ch in enumerate(mark):
            if col + i < columns:
                ruler[col + i] = ch
    lines.append(f"{'':<{name_width}}  {''.join(ruler)}")
    lines.append(
        f"{'':<{name_width}}  (1 column = {scale} tu; '#' frozen, "
        f"'=' current, '~' message, '.' slack)"
    )
    return "\n".join(lines)


def render_slack_summary(schedule: SystemSchedule) -> str:
    """A compact per-node slack listing (gap start/end/length)."""
    lines: List[str] = []
    for node_id in schedule.architecture.node_ids:
        gaps = schedule.slack_gaps(node_id)
        total = sum(g.length for g in gaps)
        parts = ", ".join(f"[{g.start},{g.end})" for g in gaps) or "none"
        lines.append(f"{node_id}: total slack {total} tu in gaps {parts}")
    lines.append(f"bus: total free {schedule.bus.total_free_bytes()} B")
    return "\n".join(lines)
