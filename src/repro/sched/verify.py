"""Independent design verifier.

Re-checks a finished :class:`~repro.sched.schedule.SystemSchedule`
against the applications it claims to implement, using none of the
scheduler's own bookkeeping -- a second, slower opinion that every
constraint of the model holds:

* every process instance of every application is placed exactly once,
  on an allowed node, inside its release/deadline window;
* reservations on each node never overlap;
* every inter-node message instance rides exactly one occurrence of
  its sender's TDMA slot, after the sender finishes, and its receiver
  starts only after the slot ends;
* intra-node receivers start after their senders finish;
* no slot occurrence's byte capacity is exceeded.

Strategies never call this (they maintain the invariants
structurally); tests and downstream users do, via
:func:`verify_design`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import SchedulingError


def verify_design(
    schedule: SystemSchedule,
    applications: Iterable[Application],
    mappings: Optional[Dict[str, Mapping]] = None,
) -> None:
    """Raise :class:`SchedulingError` on the first violated constraint.

    Parameters
    ----------
    schedule:
        The finished schedule table.
    applications:
        Every application the schedule is supposed to implement.
    mappings:
        Optional per-application mappings (keyed by application name);
        when given, each entry's node is additionally checked against
        the mapping, not just the process's allowed set.
    """
    apps = list(applications)
    _verify_processor_exclusivity(schedule)
    for app in apps:
        mapping = (mappings or {}).get(app.name)
        _verify_application(schedule, app, mapping)
    _verify_bus_capacity(schedule)


def _verify_processor_exclusivity(schedule: SystemSchedule) -> None:
    """No two reservations overlap on any node."""
    for node_id in schedule.architecture.node_ids:
        ordered = schedule.entries_on(node_id)
        for prev, cur in zip(ordered, ordered[1:]):
            if prev.end > cur.start:
                raise SchedulingError(
                    f"overlap on node {node_id!r}: {prev} and {cur}"
                )


def _verify_application(
    schedule: SystemSchedule,
    app: Application,
    mapping: Optional[Mapping],
) -> None:
    horizon = schedule.horizon
    for graph in app.graphs:
        if horizon % graph.period != 0:
            raise SchedulingError(
                f"graph {graph.name!r} period {graph.period} does not divide "
                f"the horizon {horizon}"
            )
        instances = horizon // graph.period
        for k in range(instances):
            release = k * graph.period
            abs_deadline = release + graph.deadline
            placed_node: Dict[str, str] = {}
            for proc in graph.processes:
                entry = schedule.entry_of(proc.id, k)
                if entry is None:
                    raise SchedulingError(
                        f"process {proc.id!r} instance {k} is missing"
                    )
                if entry.node_id not in proc.wcet:
                    raise SchedulingError(
                        f"process {proc.id!r} placed on disallowed node "
                        f"{entry.node_id!r}"
                    )
                if mapping is not None and mapping.get(proc.id) not in (
                    None,
                    entry.node_id,
                ):
                    raise SchedulingError(
                        f"process {proc.id!r} placed on {entry.node_id!r} "
                        f"but mapped to {mapping.get(proc.id)!r}"
                    )
                if entry.duration != proc.wcet_on(entry.node_id):
                    raise SchedulingError(
                        f"process {proc.id!r} instance {k} reserved "
                        f"{entry.duration} tu, WCET is "
                        f"{proc.wcet_on(entry.node_id)}"
                    )
                if entry.start < release:
                    raise SchedulingError(
                        f"process {proc.id!r} instance {k} starts at "
                        f"{entry.start}, before its release {release}"
                    )
                if entry.end > abs_deadline:
                    raise SchedulingError(
                        f"process {proc.id!r} instance {k} ends at "
                        f"{entry.end}, after its deadline {abs_deadline}"
                    )
                placed_node[proc.id] = entry.node_id
            _verify_messages(schedule, graph, k, placed_node)


def _verify_messages(
    schedule: SystemSchedule,
    graph,
    instance: int,
    placed_node: Dict[str, str],
) -> None:
    for msg in graph.messages:
        src = schedule.entry_of(msg.src, instance)
        dst = schedule.entry_of(msg.dst, instance)
        src_node = placed_node[msg.src]
        dst_node = placed_node[msg.dst]
        if src_node == dst_node:
            if dst.start < src.end:
                raise SchedulingError(
                    f"intra-node message {msg.id!r} instance {instance}: "
                    f"receiver starts at {dst.start} before sender ends at "
                    f"{src.end}"
                )
            continue
        occ = schedule.bus.occupancy_of(msg.id, instance)
        if occ is None:
            raise SchedulingError(
                f"inter-node message {msg.id!r} instance {instance} is not "
                f"on the bus"
            )
        if occ.node_id != src_node:
            raise SchedulingError(
                f"message {msg.id!r} instance {instance} travels in "
                f"{occ.node_id!r}'s slot but its sender runs on "
                f"{src_node!r}"
            )
        if occ.size != msg.size:
            raise SchedulingError(
                f"message {msg.id!r} instance {instance} reserved "
                f"{occ.size} bytes, size is {msg.size}"
            )
        window = schedule.bus.bus.occurrence_window(occ.node_id, occ.round_index)
        if window.start < src.end:
            raise SchedulingError(
                f"message {msg.id!r} instance {instance} departs at "
                f"{window.start} before its sender ends at {src.end}"
            )
        if dst.start < window.end:
            raise SchedulingError(
                f"message {msg.id!r} instance {instance}: receiver starts "
                f"at {dst.start} before delivery at {window.end}"
            )


def _verify_bus_capacity(schedule: SystemSchedule) -> None:
    used: Dict[Tuple[str, int], int] = {}
    for occ in schedule.bus.all_entries():
        key = (occ.node_id, occ.round_index)
        used[key] = used.get(key, 0) + occ.size
    for (node_id, round_index), total in used.items():
        capacity = schedule.bus.bus.slot_of(node_id).capacity
        if total > capacity:
            raise SchedulingError(
                f"slot occurrence ({node_id!r}, round {round_index}) carries "
                f"{total} bytes, capacity is {capacity}"
            )
