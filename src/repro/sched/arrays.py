"""Structure-of-arrays compiled scheduler core (the ``array`` engine core).

:class:`ArraySpec` lowers a :class:`~repro.engine.compiled_spec.CompiledSpec`
one level further: processes, jobs, nodes, messages and precedence
edges get dense integer ids assigned once, and everything the pass
loop reads -- durations, deadlines, releases, predecessor counts, the
out-edge CSR adjacency, TDMA slot geometry, the frozen base occupancy
-- is materialised as flat arrays.  :meth:`ArraySpec.run_kernel` is
then an index-based rewrite of :meth:`ListScheduler.run_pass`: integer
heap keys, per-node busy-run lists, per-slot used-byte lists, and a
trace recorded as parallel columns instead of per-event objects.

The kernel is *decision-identical* to the object core by construction:

* **Heap order.**  The legacy ready-heap key is the tuple
  ``(urgency, release, process_id, instance)`` (see
  :func:`repro.sched.trace.heap_key`).  The lowering precomputes a
  *static rank* -- the rank of each job under the priority-independent
  tail ``(release, process_id, instance)`` -- and each candidate sorts
  jobs by ``(urgency, static_rank)`` via one ``np.lexsort``.  Because
  the tail makes every legacy key distinct, the map from job to its
  sort position is a bijection that preserves the legacy order
  exactly, so a heap of these *rank integers* pops in the identical
  sequence a heap of legacy tuples would.
* **Placement.**  The gap search inlines
  :meth:`IntervalSet.earliest_fit` over plain start/end lists and
  inserts runs in the same canonical (adjacency-merged) form, so busy
  sets decode byte-identical to the object core's.
* **Bus.**  Slot math inlines
  :meth:`TdmaBus.first_occurrence_not_before` /
  :meth:`BusSchedule.earliest_round_with_room` over per-node used-byte
  lists, including the message-delay re-scan from ``window.start + 1``.
* **Failures.**  Failure strings are formatted with the same templates
  in the same check order, so invalid candidates report identical
  reasons.

At the boundary, :meth:`decode_schedule` rebuilds a plain
:class:`SystemSchedule` (same entry/occupancy insertion orders as the
object kernel) so the metric, verify and serialize layers are
untouched, and :meth:`to_schedule_trace` decodes the column trace into
a legacy :class:`ScheduleTrace` for tests and inspection.

Delta evaluation over array states slice-copies the trace columns: the
divergence scan compares ``(urgency, static_rank)`` pairs (isomorphic
to legacy heap-key comparisons) and checkpoint reconstruction rebuilds
``earliest``/``preds`` with two ``np.ufunc.at`` scatters plus a short
prefix replay of placements -- no object-graph surgery.

numpy is optional: :func:`resolve_engine_core` degrades ``array`` to
``object`` with a warning when it is missing, so the package works
(slower) without it.
"""

from __future__ import annotations

import heapq
import warnings
from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sched.jobs import JobKey
from repro.sched.schedule import ScheduledProcess, SystemSchedule
from repro.sched.trace import MessageEvent, ScheduleTrace
from repro.tdma.schedule import SlotOccupancy
from repro.utils.intervals import IntervalSet

try:  # pragma: no cover - exercised via tests that stub HAVE_NUMPY
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is baked into the toolchain
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transformations import CandidateDesign, MoveFootprint
    from repro.engine.compiled_spec import CompiledSpec
    from repro.sched.priorities import PriorityMap

#: The selectable scheduler cores (the CLI's ``--engine-core`` values).
ENGINE_CORES = ("array", "object")

#: Default core of the strategy/experiment layer.  The engine layer
#: itself defaults to ``object`` (the pinned reference) so low-level
#: tests keep exercising the legacy path unless they opt in.
DEFAULT_ENGINE_CORE = "array"


def resolve_engine_core(requested: str) -> str:
    """Validate ``requested`` and degrade ``array`` when numpy is absent.

    Returns the core that will actually run.  The degradation warns --
    silently falling back would hide a 3x+ performance regression.
    """
    if requested not in ENGINE_CORES:
        raise ValueError(
            f"unknown engine core {requested!r}; expected one of "
            f"{ENGINE_CORES}"
        )
    if requested == "array" and not HAVE_NUMPY:
        warnings.warn(
            "numpy is not available; the array scheduler core degrades to "
            "the (slower) object core",
            RuntimeWarning,
            stacklevel=2,
        )
        return "object"
    return requested


class ArrayRunState:
    """Loop state and column trace of one array-kernel pass.

    Plays the role :class:`ScheduleTrace` plus the ``run_pass``
    argument bundle play for the object core: a successful state is
    stored on :class:`~repro.engine.evaluation.EvaluatedDesign.trace`
    and parents later delta evaluations.  All fields are plain lists /
    ints (numpy views are cached lazily by :meth:`as_numpy`), so
    states pickle cheaply across the batch-evaluator pool.
    """

    __slots__ = (
        # candidate lowering
        "node_of", "delays", "urg", "rank_of_job", "job_of_rank", "rank_np",
        # mutable loop state (bus_used is one flat numpy vector over all
        # slot occurrences, node-contiguous -- see ArraySpec.occ_base)
        "runs_s", "runs_e", "bus_used", "earliest", "preds", "ready",
        "scheduled", "total",
        # column trace (skipped when ``columns`` is False: the lazy
        # metric path needs only the final occupancy, so non-delta
        # passes -- including failing ones -- pay no trace bookkeeping)
        "columns",
        "ev_job", "ev_node", "ev_start", "ev_end", "ev_mptr",
        "mv_edge", "mv_round", "mv_arrival",
        # checkpoint bookkeeping (recorded only in delta mode)
        "record", "ready_at", "pop",
        # outcome
        "success", "failure_reason",
        "_np",
    )

    def __init__(self) -> None:
        self.success = False
        self.failure_reason: Optional[str] = None
        self._np: Optional[dict] = None

    def __getstate__(self):
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "_np" and name != "rank_np"
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._np = None
        self.rank_np = None

    def as_numpy(self) -> dict:
        """Cached numpy views of the trace columns (the resume substrate)."""
        if self._np is None:
            self._np = {
                "ev_job": np.array(self.ev_job, dtype=np.int64),
                "ev_node": np.array(self.ev_node, dtype=np.int64),
                "ev_start": np.array(self.ev_start, dtype=np.int64),
                "ev_end": np.array(self.ev_end, dtype=np.int64),
                "ev_mptr": np.array(self.ev_mptr, dtype=np.int64),
                "mv_edge": np.array(self.mv_edge, dtype=np.int64),
                "mv_round": np.array(self.mv_round, dtype=np.int64),
                "mv_arrival": np.array(self.mv_arrival, dtype=np.int64),
                "ready_at": np.array(self.ready_at, dtype=np.int64),
                "pop": np.array(self.pop, dtype=np.int64),
            }
        return self._np

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayRunState(events={len(self.ev_job)}, "
            f"scheduled={self.scheduled}/{self.total}, "
            f"success={self.success})"
        )


class _Candidate:
    """Per-candidate lowering: mapping, delays and the rank bijection."""

    __slots__ = ("node_of", "delays", "urg", "rank_of_job", "job_of_rank",
                 "rank_np")

    def __init__(self, node_of, delays, urg, rank_of_job, job_of_rank,
                 rank_np) -> None:
        self.node_of = node_of
        self.delays = delays
        self.urg = urg
        self.rank_of_job = rank_of_job
        self.job_of_rank = job_of_rank
        self.rank_np = rank_np


class ArrayMetricGeometry:
    """Precompiled metric inputs of one ``(ArraySpec, T_min)`` pair.

    Everything the array metric kernel needs that does not depend on
    the candidate: the periodic-window partition, per-occurrence bus
    capacities and window membership over the flat (node-contiguous)
    occurrence layout, the *base* occupancy's residual histogram and
    per-window free bytes (so a candidate is priced by patching the
    base at its few touched occurrences), and the start-order
    permutation that reproduces the object kernel's occurrence order
    for the order-sensitive ablation packing policies.

    Pure integers derived from the immutable lowering -- built once per
    ``T_min`` (one per spec in practice) and shared by every candidate.
    """

    __slots__ = (
        "horizon", "t_min", "n_windows", "window_width", "window_lengths",
        "caps_flat", "win_flat", "base_used", "base_resid_hist",
        "base_window_free", "start_order",
    )

    def __init__(self, spec: "ArraySpec", t_min: int) -> None:
        horizon = spec.horizon
        self.horizon = horizon
        self.t_min = t_min
        n_windows = -(-horizon // t_min)
        self.n_windows = n_windows
        # periodic_windows semantics: consecutive T_min windows, the
        # last truncated at the horizon.  windows[0].length is the
        # splitting width the node-slack pass uses.
        self.window_lengths = [
            min((w + 1) * t_min, horizon) - w * t_min
            for w in range(n_windows)
        ]
        self.window_width = self.window_lengths[0]

        n_occ = spec.n_occ
        caps_flat = np.empty(n_occ, dtype=np.int64)
        win_flat = np.full(n_occ, -1, dtype=np.int64)
        starts: List[Tuple[int, int]] = []
        round_length = spec.round_length
        static_cap = [0] * n_windows
        for n in range(len(spec.node_ids)):
            base = spec.occ_base[n]
            offset = spec.slot_offset[n]
            length = spec.slot_length[n]
            cap = spec.slot_capacity[n]
            for r in range(spec.occ_count[n]):
                i = base + r
                caps_flat[i] = cap
                start = r * round_length + offset
                starts.append((start, i))
                k = start // t_min
                if start + length <= min((k + 1) * t_min, horizon):
                    win_flat[i] = k
                    static_cap[k] += cap
        starts.sort()
        self.caps_flat = caps_flat
        self.win_flat = win_flat
        self.start_order = np.array(
            [i for _, i in starts], dtype=np.int64
        )
        base_used = spec.base_bus_used_flat
        self.base_used = base_used
        base_resid = caps_flat - base_used
        values, counts = np.unique(base_resid, return_counts=True)
        self.base_resid_hist: Dict[int, int] = {
            int(v): int(c) for v, c in zip(values, counts)
        }
        window_used = [0] * n_windows
        for i in np.nonzero(base_used)[0].tolist():
            w = win_flat[i]
            if w >= 0:
                window_used[w] += int(base_used[i])
        self.base_window_free = [
            cap - used for cap, used in zip(static_cap, window_used)
        ]


def _insert_run(ss: List[int], ee: List[int], start: int, end: int) -> None:
    """Insert a non-overlapping busy run in canonical (merged) form.

    Replicates :meth:`IntervalSet.add` for the no-overlap case the
    scheduler guarantees: merge with an adjacent left/right neighbour,
    otherwise splice.  Keeping runs canonical is what makes decoded
    busy sets compare equal to the object core's.
    """
    i = bisect_right(ss, start)
    left = i > 0 and ee[i - 1] == start
    right = i < len(ss) and ss[i] == end
    if left:
        if right:
            ee[i - 1] = ee[i]
            del ss[i]
            del ee[i]
        else:
            ee[i - 1] = end
    elif right:
        ss[i] = start
    else:
        ss.insert(i, start)
        ee.insert(i, end)


class ArraySpec:
    """The structure-of-arrays lowering of one compiled design problem.

    Built lazily (and exactly once) by
    :attr:`CompiledSpec.arrays <repro.engine.compiled_spec.CompiledSpec>`;
    immutable after construction, so one lowering serves every
    candidate of a search run.  Dense id assignment:

    * ``pids`` -- process ids, sorted lexicographically (so the pid
      index doubles as the pid tie-break rank of the legacy heap key);
    * ``node_ids`` -- architecture node order (also the TDMA geometry
      index);
    * jobs -- :class:`JobTable` insertion order (graph x instance x
      process, the order the object kernel iterates);
    * messages / edges -- first-encounter order while walking each
      job's ``out_messages`` (the object kernel's delivery order).
    """

    def __init__(self, compiled: "CompiledSpec") -> None:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "ArraySpec requires numpy; resolve_engine_core() should "
                "have degraded to the object core"
            )
        self.compiled = compiled
        self.horizon = compiled.horizon
        self.architecture = compiled.architecture
        application = compiled.application
        table = compiled.job_table

        # --- dense ids -----------------------------------------------
        self.node_ids: List[str] = list(self.architecture.node_ids)
        self.node_index: Dict[str, int] = {
            nid: i for i, nid in enumerate(self.node_ids)
        }
        self.pids: List[str] = sorted(
            {proc.id for proc in application.processes}
        )
        self.pid_index: Dict[str, int] = {
            pid: i for i, pid in enumerate(self.pids)
        }
        self.job_keys: List[JobKey] = list(table.jobs)
        self.job_index: Dict[JobKey, int] = {
            key: i for i, key in enumerate(self.job_keys)
        }
        n_jobs = len(self.job_keys)
        self.n_jobs = n_jobs

        # --- per-job columns -----------------------------------------
        jobs = table.jobs
        self.job_pid: List[int] = []
        self.job_instance: List[int] = []
        self.job_release: List[int] = []
        self.job_deadline: List[int] = []
        for key in self.job_keys:
            job = jobs[key]
            self.job_pid.append(self.pid_index[job.process_id])
            self.job_instance.append(job.instance)
            self.job_release.append(job.release)
            self.job_deadline.append(job.abs_deadline)
        self.job_pid_np = np.array(self.job_pid, dtype=np.int64)
        self.job_release_np = np.array(self.job_release, dtype=np.int64)
        self.job_deadline_f = np.array(self.job_deadline, dtype=np.float64)

        # Static rank: position under the priority-independent key tail
        # (release, process_id, instance).  Urgency + static rank is
        # order-isomorphic to the full legacy heap key.
        tail_order = sorted(
            range(n_jobs),
            key=lambda j: (
                self.job_release[j],
                self.job_keys[j][0],
                self.job_instance[j],
            ),
        )
        static_rank = [0] * n_jobs
        for rank, j in enumerate(tail_order):
            static_rank[j] = rank
        self.static_rank: List[int] = static_rank
        self.static_rank_np = np.array(static_rank, dtype=np.int64)

        self.preds0: List[int] = [
            table.preds_template[key] for key in self.job_keys
        ]
        self.preds0_np = np.array(self.preds0, dtype=np.int64)
        self.sources: List[int] = [
            self.job_index[key] for key in table.sources
        ]

        jobs_by_pid: Dict[str, List[int]] = {}
        for j, key in enumerate(self.job_keys):
            jobs_by_pid.setdefault(key[0], []).append(j)
        self._jobs_by_pid = jobs_by_pid

        # --- WCET table ----------------------------------------------
        n_nodes = len(self.node_ids)
        self.wcet: List[List[int]] = []
        for pid in self.pids:
            row = application.process(pid).wcet
            self.wcet.append(
                [row.get(nid, -1) for nid in self.node_ids]
            )

        # --- out-edge CSR (per job, in out_messages order) -----------
        self.message_ids: List[str] = []
        self.msg_index: Dict[str, int] = {}
        out_ptr: List[int] = [0]
        edge_msg: List[int] = []
        edge_dst: List[int] = []
        edge_dst_pid: List[int] = []
        edge_size: List[int] = []
        for key in self.job_keys:
            pid, instance = key
            graph = application.graph_of(pid)
            for msg in graph.out_messages(pid):
                m = self.msg_index.get(msg.id)
                if m is None:
                    m = len(self.message_ids)
                    self.msg_index[msg.id] = m
                    self.message_ids.append(msg.id)
                edge_msg.append(m)
                edge_dst.append(self.job_index[(msg.dst, instance)])
                edge_dst_pid.append(self.pid_index[msg.dst])
                edge_size.append(msg.size)
            out_ptr.append(len(edge_msg))
        self.out_ptr = out_ptr
        self.edge_msg = edge_msg
        self.edge_dst = edge_dst
        self.edge_dst_pid = edge_dst_pid
        self.edge_size = edge_size
        self.edge_dst_np = np.array(edge_dst, dtype=np.int64)
        self.n_messages = len(self.message_ids)

        # --- TDMA slot geometry (indexed like node_ids) --------------
        bus = self.architecture.bus
        self.round_length: int = bus.round_length
        self.slot_offset: List[int] = []
        self.slot_length: List[int] = []
        self.slot_capacity: List[int] = []
        self.occ_count: List[int] = []
        for nid in self.node_ids:
            slot = bus.slot_of(nid)
            self.slot_offset.append(bus.slot_offset(nid))
            self.slot_length.append(slot.length)
            self.slot_capacity.append(slot.capacity)
            self.occ_count.append(
                bus.occurrence_count_within(nid, self.horizon)
            )

        # --- frozen base occupancy and decode templates --------------
        # The private schedule maps are read directly (and only here,
        # once per compilation): the decode step must reproduce the
        # exact insertion orders SystemSchedule.copy() would, and the
        # public accessors re-sort or re-copy.
        base = compiled.base_template
        self.base_runs_s: List[List[int]] = []
        self.base_runs_e: List[List[int]] = []
        self.base_entries: List[List[ScheduledProcess]] = []
        if base is not None:
            for nid in self.node_ids:
                pairs = base.busy_pairs(nid)
                self.base_runs_s.append([p[0] for p in pairs])
                self.base_runs_e.append([p[1] for p in pairs])
                self.base_entries.append(base._entries[nid])
            self.base_by_process = base._by_process
            bus_sched = base.bus
            self.base_bus_used_map = bus_sched._used
            self.base_bus_entries = bus_sched._entries
            self.base_bus_by_message = bus_sched._by_message
        else:
            for _ in self.node_ids:
                self.base_runs_s.append([])
                self.base_runs_e.append([])
                self.base_entries.append([])
            self.base_by_process = {}
            self.base_bus_used_map = {}
            self.base_bus_entries = {}
            self.base_bus_by_message = {}
        # Flat (node-contiguous) used-byte vector over every usable slot
        # occurrence: occurrence ``r`` of node ``n`` lives at index
        # ``occ_base[n] + r``.  One numpy copy per candidate replaces
        # the per-node list copies, and the metric layer diffs final
        # states against ``base_bus_used_flat`` with one vector compare.
        occ_base: List[int] = []
        total_occ = 0
        for n in range(len(self.node_ids)):
            occ_base.append(total_occ)
            total_occ += self.occ_count[n]
        self.occ_base = occ_base
        self.n_occ = total_occ
        base_used_flat = np.zeros(total_occ, dtype=np.int64)
        for (node_id, r), value in self.base_bus_used_map.items():
            base_used_flat[occ_base[self.node_index[node_id]] + r] = value
        self.base_bus_used_flat = base_used_flat

        # Per-T_min metric geometry, built lazily by metric_geometry().
        self._metric_geometry: Dict[int, "ArrayMetricGeometry"] = {}

    def metric_geometry(self, t_min: int) -> ArrayMetricGeometry:
        """Precompiled metric geometry for one ``T_min`` (cached).

        Real runs use a single ``T_min`` per spec; the cache keys on it
        so weight sweeps stay correct without rebuilding per candidate.
        """
        geom = self._metric_geometry.get(t_min)
        if geom is None:
            geom = ArrayMetricGeometry(self, t_min)
            self._metric_geometry[t_min] = geom
        return geom

    # ------------------------------------------------------------------
    # per-candidate lowering
    # ------------------------------------------------------------------
    def jobs_of(self, pid: str) -> List[int]:
        """Dense job indices of one process id (delta footprint lookup)."""
        return self._jobs_by_pid.get(pid, [])

    def lower_candidate(self, design: "CandidateDesign") -> _Candidate:
        """Mapping/priorities/delays of one candidate, in index form.

        The rank bijection is the heart of the integer heap: jobs
        sorted by ``(urgency, static_rank)`` -- the legacy heap-key
        order -- and ``rank_of_job`` maps each job to its position.
        """
        assignment = design.mapping.as_dict()
        node_index = self.node_index
        node_of = [node_index[assignment[pid]] for pid in self.pids]
        priorities = design.priorities
        prio = np.array(
            [priorities.get(pid, 0.0) for pid in self.pids],
            dtype=np.float64,
        )
        urg = self.job_deadline_f - prio[self.job_pid_np]
        order = np.lexsort((self.static_rank_np, urg))
        rank_np = np.empty(self.n_jobs, dtype=np.int64)
        rank_np[order] = np.arange(self.n_jobs, dtype=np.int64)
        delays = [0] * self.n_messages
        msg_index = self.msg_index
        for mid, value in design.message_delays.items():
            m = msg_index.get(mid)
            if m is not None:
                delays[m] = value
        return _Candidate(
            node_of,
            delays,
            urg.tolist(),
            rank_np.tolist(),
            order.tolist(),
            rank_np,
        )

    def fresh_state(
        self, cand: _Candidate, record: bool, columns: Optional[bool] = None
    ) -> ArrayRunState:
        """Cold-pass loop state: base occupancy, sources ready.

        ``columns`` controls whether the pass appends the ev_*/mv_*
        trace columns; delta-capable (``record``) states always keep
        them (the resume machinery reads them), while pure hot-path
        states skip the bookkeeping -- the array metric kernel reads
        only the final occupancy, and :meth:`decode_schedule` re-runs
        the deterministic pass on demand when a columnless state must
        be decoded after all.
        """
        st = ArrayRunState()
        st.node_of = cand.node_of
        st.delays = cand.delays
        st.urg = cand.urg
        st.rank_of_job = cand.rank_of_job
        st.job_of_rank = cand.job_of_rank
        st.rank_np = cand.rank_np
        st.runs_s = [list(runs) for runs in self.base_runs_s]
        st.runs_e = [list(runs) for runs in self.base_runs_e]
        st.bus_used = self.base_bus_used_flat.copy()
        st.earliest = list(self.job_release)
        st.preds = list(self.preds0)
        rank_of_job = cand.rank_of_job
        ready = [rank_of_job[j] for j in self.sources]
        heapq.heapify(ready)
        st.ready = ready
        st.scheduled = 0
        st.total = self.n_jobs
        st.columns = record if columns is None else (columns or record)
        st.ev_job = []
        st.ev_node = []
        st.ev_start = []
        st.ev_end = []
        st.ev_mptr = [0]
        st.mv_edge = []
        st.mv_round = []
        st.mv_arrival = []
        st.record = record
        if record:
            ready_at = [-1] * self.n_jobs
            for j in self.sources:
                ready_at[j] = 0
            st.ready_at = ready_at
            st.pop = [-1] * self.n_jobs
        else:
            st.ready_at = None
            st.pop = None
        return st

    def schedule_design(
        self,
        design: "CandidateDesign",
        record: bool = False,
        columns: Optional[bool] = None,
    ) -> ArrayRunState:
        """Run one cold pass; the array analogue of ``try_schedule``."""
        design.mapping.validate_complete()
        st = self.fresh_state(self.lower_candidate(design), record, columns)
        self.run_kernel(st)
        return st

    # ------------------------------------------------------------------
    # the kernel
    # ------------------------------------------------------------------
    def run_kernel(self, st: ArrayRunState) -> None:
        """The resumable pass loop over index state; mutates ``st``.

        Pop order, gap search, TDMA packing, delay handling, failure
        checks and checkpoint marks replicate ``ListScheduler.run_pass``
        decision for decision -- see the module docstring for the
        order-isomorphism argument.  On return either ``st.success`` is
        True or ``st.failure_reason`` carries the object core's exact
        failure string.
        """
        pids = self.pids
        node_ids = self.node_ids
        job_pid = self.job_pid
        job_instance = self.job_instance
        deadline = self.job_deadline
        wcet = self.wcet
        out_ptr = self.out_ptr
        edge_msg = self.edge_msg
        edge_dst = self.edge_dst
        edge_dst_pid = self.edge_dst_pid
        edge_size = self.edge_size
        mids = self.message_ids
        slot_off = self.slot_offset
        slot_len = self.slot_length
        slot_cap = self.slot_capacity
        occ_count = self.occ_count
        occ_base = self.occ_base
        round_length = self.round_length
        horizon = self.horizon

        node_of = st.node_of
        delays = st.delays
        job_of_rank = st.job_of_rank
        rank_of_job = st.rank_of_job
        runs_s = st.runs_s
        runs_e = st.runs_e
        bus_used = st.bus_used
        earliest = st.earliest
        preds = st.preds
        ready = st.ready
        record = st.record
        columns = st.columns
        ready_at = st.ready_at
        pop = st.pop
        ev_job = st.ev_job
        ev_node = st.ev_node
        ev_start = st.ev_start
        ev_end = st.ev_end
        ev_mptr = st.ev_mptr
        mv_edge = st.mv_edge
        mv_round = st.mv_round
        mv_arrival = st.mv_arrival
        heappop = heapq.heappop
        heappush = heapq.heappush
        bisect = bisect_right
        scheduled = st.scheduled

        while ready:
            j = job_of_rank[heappop(ready)]
            p = job_pid[j]
            n = node_of[p]
            w = wcet[p][n]
            if w < 0:
                # Unreachable behind Mapping's allowed-node validation;
                # delegate so the error matches the object core's.
                self.compiled.application.process(pids[p]).wcet_on(
                    node_ids[n]
                )
            instance = job_instance[j]

            # Inlined IntervalSet.earliest_fit over the run lists.
            ss = runs_s[n]
            ee = runs_e[n]
            cursor = earliest[j]
            idx = bisect(ss, cursor) - 1
            if idx >= 0 and ee[idx] > cursor:
                cursor = ee[idx]
            idx += 1
            n_runs = len(ss)
            while idx < n_runs:
                if ss[idx] - cursor >= w:
                    break
                nxt = ee[idx]
                if nxt > cursor:
                    cursor = nxt
                idx += 1
            start = cursor
            end = start + w
            if end > horizon:
                st.scheduled = scheduled
                st.failure_reason = (
                    f"process {pids[p]!r} instance {instance} does not fit "
                    f"inside the horizon on node {node_ids[n]!r}"
                )
                return
            if end > deadline[j]:
                st.scheduled = scheduled
                st.failure_reason = (
                    f"process {pids[p]!r} instance {instance} misses its "
                    f"deadline ({end} > {deadline[j]}) on node "
                    f"{node_ids[n]!r}"
                )
                return
            # Canonical insertion at idx: the fit search guarantees
            # ee[idx-1] <= start and ss[idx] >= end, so only adjacency
            # can merge.
            if idx > 0 and ee[idx - 1] == start:
                if idx < n_runs and ss[idx] == end:
                    ee[idx - 1] = ee[idx]
                    del ss[idx]
                    del ee[idx]
                else:
                    ee[idx - 1] = end
            elif idx < n_runs and ss[idx] == end:
                ss[idx] = start
            else:
                ss.insert(idx, start)
                ee.insert(idx, end)
            i_ev = scheduled
            scheduled += 1

            for t in range(out_ptr[j], out_ptr[j + 1]):
                dj = edge_dst[t]
                if node_of[edge_dst_pid[t]] == n:
                    arrival = end
                    r = -1
                else:
                    size = edge_size[t]
                    threshold = slot_cap[n] - size
                    offset = slot_off[n]
                    count = occ_count[n]
                    base = occ_base[n]
                    if threshold < 0:
                        r = count
                    else:
                        # first_occurrence_not_before(n, end), then scan.
                        if end <= offset:
                            r = 0
                        else:
                            r = -(-(end - offset) // round_length)
                        while r < count and bus_used[base + r] > threshold:
                            r += 1
                        # Message delay: re-scan from window.start + 1,
                        # i.e. from the next occurrence index.
                        delay = delays[edge_msg[t]]
                        while delay > 0 and r < count:
                            r += 1
                            while r < count and bus_used[base + r] > threshold:
                                r += 1
                            delay -= 1
                    if r >= count:
                        st.scheduled = scheduled
                        st.failure_reason = (
                            f"message {mids[edge_msg[t]]!r} instance "
                            f"{instance} cannot be placed on the bus "
                            f"before the horizon"
                        )
                        return
                    bus_used[base + r] += size
                    arrival = r * round_length + offset + slot_len[n]
                if arrival > earliest[dj]:
                    earliest[dj] = arrival
                left = preds[dj] - 1
                preds[dj] = left
                if left == 0:
                    heappush(ready, rank_of_job[dj])
                    if record:
                        ready_at[dj] = i_ev + 1
                if columns:
                    mv_edge.append(t)
                    mv_round.append(r)
                    mv_arrival.append(arrival)

            if columns:
                ev_job.append(j)
                ev_node.append(n)
                ev_start.append(start)
                ev_end.append(end)
                ev_mptr.append(len(mv_edge))
            if record:
                pop[j] = i_ev

        st.scheduled = scheduled
        if scheduled != st.total:
            # Unreachable with a DAG, kept as a defensive invariant.
            st.failure_reason = (
                "precedence cycle left process instances unscheduled"
            )
            return
        st.success = True

    # ------------------------------------------------------------------
    # delta evaluation over array states
    # ------------------------------------------------------------------
    def divergence(
        self,
        parent: ArrayRunState,
        fp: "MoveFootprint",
        old_priorities: "PriorityMap",
        new_priorities: "PriorityMap",
        new_urg: List[float],
    ) -> int:
        """First parent event index the move can change (see
        :meth:`DeltaEvaluator._divergence`; same logic over columns).

        ``(urgency, static_rank)`` comparisons stand in for legacy
        heap-key comparisons -- the bijection of
        :meth:`lower_candidate` makes them order-identical.
        """
        pop = parent.pop
        d = len(parent.ev_job)
        # repro: allow[DET003] min-accumulation: d only ever decreases, so the scan order over the footprint set cannot change the result
        for pid in fp.processes:
            for j in self._jobs_by_pid.get(pid, ()):
                index = pop[j]
                if index < d:
                    d = index
        if not fp.reprioritized:
            return d

        old_urg = parent.urg
        ready_at = parent.ready_at
        ev_job = parent.ev_job
        static_rank = self.static_rank
        # repro: allow[DET003] min-accumulation: each pid's first-beating index is order-independent; d only shrinks and truncated scans can only skip indexes >= d
        for pid in fp.reprioritized:
            # repro: allow[DET006] both sides are the same stored dict values (copied by moves, never recomputed), so exact equality is sound
            if old_priorities.get(pid, 0.0) == new_priorities.get(pid, 0.0):
                continue
            for j in self._jobs_by_pid.get(pid, ()):
                u_new = new_urg[j]
                u_old = old_urg[j]
                if u_new == u_old:
                    continue
                popped_at = pop[j]
                if u_new > u_old:
                    if popped_at < d:
                        d = popped_at
                    continue
                rank_j = static_rank[j]
                for index in range(ready_at[j], min(popped_at, d)):
                    ev = ev_job[index]
                    u_ev = old_urg[ev]
                    if u_new < u_ev or (
                        u_new == u_ev and rank_j < static_rank[ev]
                    ):
                        d = index
                        break
        return d

    def resume_state(
        self, parent: ArrayRunState, cand: _Candidate, d: int
    ) -> ArrayRunState:
        """Child loop state at checkpoint ``d`` of ``parent``'s pass.

        Trace columns are slice-copied; ``earliest``/``preds`` are
        rebuilt with vectorized scatters over the delivery prefix; the
        ready heap is the parent's ready-but-unpopped set re-keyed with
        the child's ranks.  Recorded event urgencies need no patching:
        heap keys are derived from the *child's* urgency array, which
        is exactly the re-keying the object core performs on its
        prefix.
        """
        st = self.fresh_state(cand, record=True)
        arrays = parent.as_numpy()
        k = int(arrays["ev_mptr"][d])
        if k:
            dst = self.edge_dst_np[arrays["mv_edge"][:k]]
            earliest = self.job_release_np.copy()
            np.maximum.at(earliest, dst, arrays["mv_arrival"][:k])
            preds = self.preds0_np.copy()
            np.add.at(preds, dst, -1)
            st.earliest = earliest.tolist()
            st.preds = preds.tolist()
        ready_at = arrays["ready_at"]
        pop = arrays["pop"]
        in_prefix = ready_at <= d
        st.ready = cand.rank_np[in_prefix & (pop >= d)].tolist()
        heapq.heapify(st.ready)
        st.ready_at = np.where(in_prefix, ready_at, -1).tolist()
        st.pop = np.where(pop < d, pop, -1).tolist()
        st.ev_job = arrays["ev_job"][:d].tolist()
        st.ev_node = arrays["ev_node"][:d].tolist()
        st.ev_start = arrays["ev_start"][:d].tolist()
        st.ev_end = arrays["ev_end"][:d].tolist()
        st.ev_mptr = arrays["ev_mptr"][: d + 1].tolist()
        st.mv_edge = arrays["mv_edge"][:k].tolist()
        st.mv_round = arrays["mv_round"][:k].tolist()
        st.mv_arrival = arrays["mv_arrival"][:k].tolist()
        st.scheduled = d

        # Replay the placement prefix into the run lists / used vector.
        runs_s = st.runs_s
        runs_e = st.runs_e
        bus_used = st.bus_used
        occ_base = self.occ_base
        ev_node = st.ev_node
        ev_mptr = st.ev_mptr
        mv_round = st.mv_round
        mv_edge = st.mv_edge
        edge_size = self.edge_size
        for i in range(d):
            n = ev_node[i]
            _insert_run(runs_s[n], runs_e[n], st.ev_start[i], st.ev_end[i])
            for t in range(ev_mptr[i], ev_mptr[i + 1]):
                r = mv_round[t]
                if r >= 0:
                    bus_used[occ_base[n] + r] += edge_size[mv_edge[t]]
        return st

    def clean_mask(
        self, child: ArrayRunState, parent: ArrayRunState
    ) -> Tuple[List[bool], bool]:
        """Per-node clean flags (dense node order) plus the bus flag.

        Run-list / used-vector equality is exactly the busy-set /
        byte-occupancy equality the object core checks, so the metric
        layer can reuse the parent's inputs for these resources.
        """
        mask = [
            child.runs_s[n] == parent.runs_s[n]
            and child.runs_e[n] == parent.runs_e[n]
            for n in range(len(self.node_ids))
        ]
        return mask, bool(np.array_equal(child.bus_used, parent.bus_used))

    def clean_resources(
        self, child: ArrayRunState, parent: ArrayRunState
    ) -> Tuple[set, bool]:
        """:meth:`clean_mask` with nodes as an id set (object-memo form)."""
        mask, bus_clean = self.clean_mask(child, parent)
        return (
            {nid for n, nid in enumerate(self.node_ids) if mask[n]},
            bus_clean,
        )

    # ------------------------------------------------------------------
    # decode boundary
    # ------------------------------------------------------------------
    def decode_schedule(self, st: ArrayRunState) -> SystemSchedule:
        """Rebuild the :class:`SystemSchedule` of a successful pass.

        Entry lists, the process index and the bus maps are filled in
        the object kernel's insertion orders (base first, then events
        in pop order, deliveries in delivery order), so the decoded
        schedule is indistinguishable from an object-core one -- the
        metric, verify, serialize and proposer layers consume it
        unchanged.

        Requires a state run with ``columns`` (the default metric path
        runs without them); decoding a columnless state would silently
        reproduce only the base template.
        """
        if not st.columns:
            raise ValueError(
                "cannot decode a columnless ArrayRunState; re-run the "
                "pass with columns=True (EvaluatedDesign.schedule does "
                "this on demand)"
            )
        out = SystemSchedule(self.architecture, self.horizon)
        node_ids = self.node_ids
        entry_lists: List[List[ScheduledProcess]] = []
        for n, nid in enumerate(node_ids):
            busy = IntervalSet()
            busy._starts = list(st.runs_s[n])
            busy._ends = list(st.runs_e[n])
            out._busy[nid] = busy
            entries = list(self.base_entries[n])
            out._entries[nid] = entries
            entry_lists.append(entries)
        by_process = dict(self.base_by_process)
        out._by_process = by_process
        bus = out.bus
        used = dict(self.base_bus_used_map)
        bus._used = used
        bus_entries = {
            key: list(value) for key, value in self.base_bus_entries.items()
        }
        bus._entries = bus_entries
        by_message = dict(self.base_bus_by_message)
        bus._by_message = by_message

        pids = self.pids
        mids = self.message_ids
        job_pid = self.job_pid
        job_instance = self.job_instance
        edge_msg = self.edge_msg
        edge_size = self.edge_size
        ev_job = st.ev_job
        ev_node = st.ev_node
        ev_start = st.ev_start
        ev_end = st.ev_end
        ev_mptr = st.ev_mptr
        mv_edge = st.mv_edge
        mv_round = st.mv_round
        for i in range(len(ev_job)):
            j = ev_job[i]
            n = ev_node[i]
            pid = pids[job_pid[j]]
            instance = job_instance[j]
            entry = ScheduledProcess(
                pid, instance, node_ids[n], ev_start[i], ev_end[i], False
            )
            entry_lists[n].append(entry)
            by_process[(pid, instance)] = entry
            for t in range(ev_mptr[i], ev_mptr[i + 1]):
                r = mv_round[t]
                if r < 0:
                    continue
                e = mv_edge[t]
                mid = mids[edge_msg[e]]
                occ = SlotOccupancy(
                    mid, instance, node_ids[n], r, edge_size[e], False
                )
                slot_key = (node_ids[n], r)
                used[slot_key] = used.get(slot_key, 0) + edge_size[e]
                entries = bus_entries.get(slot_key)
                if entries is None:
                    bus_entries[slot_key] = [occ]
                else:
                    entries.append(occ)
                by_message[(mid, instance)] = occ
        return out

    def to_schedule_trace(self, st: ArrayRunState) -> ScheduleTrace:
        """Decode the column trace into a legacy :class:`ScheduleTrace`.

        Test/inspection boundary only -- the hot paths never build
        per-event objects.  Heap keys are reconstructed from the
        candidate's urgency array (recorded keys equal the candidate's
        own urgencies by the re-keying invariant).
        """
        trace = ScheduleTrace(self.horizon)
        pids = self.pids
        mids = self.message_ids
        node_ids = self.node_ids
        job_pid = self.job_pid
        job_instance = self.job_instance
        job_release = self.job_release
        job_keys = self.job_keys
        if st.record:
            for j, at in enumerate(st.ready_at):
                if at >= 0:
                    trace.ready_at[job_keys[j]] = int(at)
        for i in range(len(st.ev_job)):
            j = st.ev_job[i]
            n = st.ev_node[i]
            key = job_keys[j]
            heap_key = (
                st.urg[j],
                job_release[j],
                pids[job_pid[j]],
                int(job_instance[j]),
            )
            messages = []
            bus_touched = False
            for t in range(st.ev_mptr[i], st.ev_mptr[i + 1]):
                e = st.mv_edge[t]
                r = st.mv_round[t]
                if r >= 0:
                    bus_touched = True
                messages.append(
                    MessageEvent(
                        mids[self.edge_msg[e]],
                        int(job_instance[j]),
                        node_ids[n],
                        int(r) if r >= 0 else None,
                        int(st.mv_arrival[t]),
                        int(self.edge_size[e]),
                        job_keys[self.edge_dst[e]],
                    )
                )
            trace.record_event(
                key,
                node_ids[n],
                int(st.ev_start[i]),
                int(st.ev_end[i]),
                heap_key,
                tuple(messages),
                bus_touched,
            )
        return trace
