"""Periodic job expansion shared by every scheduling pass.

Expanding an application into its periodic process instances (jobs)
inside a horizon used to be done inline by both the list scheduler and
the initial mapper, once per *candidate evaluation*.  The expansion
only depends on ``(application, horizon)``, so it is factored out here
and precomputed once by :class:`repro.engine.compiled_spec.CompiledSpec`;
search loops then reuse the same :class:`JobTable` for thousands of
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.model.application import Application

#: A job is identified by ``(process_id, instance)``.
JobKey = Tuple[str, int]


@dataclass(frozen=True)
class Job:
    """One periodic instance of one process, as seen by a scheduler."""

    process_id: str
    instance: int
    graph_name: str
    release: int
    abs_deadline: int


@dataclass(frozen=True)
class JobTable:
    """The instance-expanded view of one application over one horizon.

    Attributes
    ----------
    horizon:
        The horizon the expansion covers.
    jobs:
        Every job keyed by ``(process_id, instance)``.
    preds_template:
        Unscheduled-predecessor counts per job at the start of a pass.
        Schedulers must not mutate it; take :meth:`fresh_preds`.
    succ_edges:
        Successor adjacency: job -> same-instance successor jobs.
    sources:
        Jobs with no predecessors (the initial ready set), in insertion
        order.
    release_template:
        Per-job release times; the seed of every pass's earliest-start
        map.  Schedulers must not mutate it; take
        :meth:`fresh_earliest`.
    """

    horizon: int
    jobs: Dict[JobKey, Job]
    preds_template: Dict[JobKey, int]
    succ_edges: Dict[JobKey, List[JobKey]]
    sources: Tuple[JobKey, ...]
    release_template: Dict[JobKey, int]

    def fresh_preds(self) -> Dict[JobKey, int]:
        """A mutable copy of the predecessor counts for one pass."""
        return dict(self.preds_template)

    def fresh_earliest(self) -> Dict[JobKey, int]:
        """A mutable earliest-start map seeded with the release times.

        The list scheduler raises these bounds as message arrivals
        resolve; every pass (cold or resumed) starts from this map.
        """
        return dict(self.release_template)

    def __len__(self) -> int:
        return len(self.jobs)


def expand_jobs(application: Application, horizon: int) -> JobTable:
    """Instance-expand ``application``'s process graphs over ``horizon``.

    Every graph contributes ``horizon // period`` instances; instance
    ``k`` is released at ``k * period`` with absolute deadline
    ``k * period + deadline``.  The caller is responsible for checking
    that every period divides the horizon.
    """
    jobs: Dict[JobKey, Job] = {}
    preds_template: Dict[JobKey, int] = {}
    succ_edges: Dict[JobKey, List[JobKey]] = {}
    sources: List[JobKey] = []
    for graph in application.graphs:
        instances = horizon // graph.period
        for k in range(instances):
            release = k * graph.period
            abs_deadline = release + graph.deadline
            for proc in graph.processes:
                key = (proc.id, k)
                jobs[key] = Job(proc.id, k, graph.name, release, abs_deadline)
                n_preds = len(graph.predecessors(proc.id))
                preds_template[key] = n_preds
                succ_edges[key] = [
                    (succ, k) for succ in graph.successors(proc.id)
                ]
                if n_preds == 0:
                    sources.append(key)
    return JobTable(
        horizon=horizon,
        jobs=jobs,
        preds_template=preds_template,
        succ_edges=succ_edges,
        sources=tuple(sources),
        release_template={key: job.release for key, job in jobs.items()},
    )
