"""Priority-driven static cyclic list scheduling.

The scheduler expands an application into all its periodic instances
within the horizon, then repeatedly picks the highest-priority ready
process instance and places it at the earliest gap of its mapped node
that respects release time and message arrivals.  Inter-node messages
are packed into the earliest TDMA slot occurrence of the sender's node
with enough residual capacity (TTP semantics: the frame rides the first
slot opening at or after the sender finishes, and is delivered at the
slot end).

Existing applications appear as frozen reservations in the *base
schedule*; the scheduler simply cannot use their time, which enforces
the paper's requirement (a) structurally.

The pass itself is a *resumable core*: :meth:`ListScheduler.run_pass`
takes explicit loop state (schedule, earliest-start constraints,
predecessor counts, ready heap, pop count) and runs the algorithm to
completion.  ``try_schedule`` builds that state from scratch; the delta
evaluator (:mod:`repro.engine.delta`) rebuilds it at an arbitrary
checkpoint of a parent run's :class:`~repro.sched.trace.ScheduleTrace`
and resumes from there -- both paths execute the identical loop, which
is what makes incremental evaluation bit-identical to cold evaluation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping as TMapping, Optional, Tuple

from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.model.architecture import Architecture
from repro.sched.jobs import JobKey, JobTable, expand_jobs
from repro.sched.priorities import hcp_priorities
from repro.sched.schedule import SystemSchedule
from repro.sched.trace import HeapKey, MessageEvent, ScheduleTrace, heap_key
from repro.utils.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> sched)
    from repro.engine.compiled_spec import CompiledSpec


@dataclass
class ScheduleResult:
    """Outcome of a scheduling attempt.

    Attributes
    ----------
    schedule:
        The (possibly partial) schedule produced.  Only meaningful for
        inspection when ``success`` is False; complete when True.
    success:
        Whether every process instance and message was placed within
        its deadline and the horizon.
    failure_reason:
        Human-readable description of the first failure, or ``None``.
    scheduled_jobs:
        Number of process instances successfully placed.
    total_jobs:
        Number of process instances that had to be placed.
    trace:
        The pass's :class:`~repro.sched.trace.ScheduleTrace` when trace
        recording was requested and the pass succeeded; ``None``
        otherwise (failed passes have no complete decision sequence to
        resume from).
    """

    schedule: SystemSchedule
    success: bool
    failure_reason: Optional[str] = None
    scheduled_jobs: int = 0
    total_jobs: int = 0
    trace: Optional[ScheduleTrace] = None


class ListScheduler:
    """List scheduler for one application over a (possibly busy) system.

    Parameters
    ----------
    architecture:
        The platform; must match the base schedule's architecture when
        one is supplied.
    """

    def __init__(self, architecture: Architecture):
        self.architecture = architecture

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def schedule(
        self,
        application: Application,
        mapping: Mapping,
        base: Optional[SystemSchedule] = None,
        priorities: Optional[TMapping[str, float]] = None,
        horizon: Optional[int] = None,
        frozen: bool = False,
        message_delays: Optional[TMapping[str, int]] = None,
        compiled: Optional["CompiledSpec"] = None,
    ) -> SystemSchedule:
        """Schedule ``application`` and return the resulting schedule.

        Raises
        ------
        repro.utils.errors.SchedulingError
            On the first deadline miss or unplaceable message.
        """
        result = self.try_schedule(
            application, mapping, base, priorities, horizon, frozen,
            message_delays, compiled,
        )
        if not result.success:
            raise SchedulingError(result.failure_reason or "scheduling failed")
        return result.schedule

    def try_schedule(
        self,
        application: Application,
        mapping: Mapping,
        base: Optional[SystemSchedule] = None,
        priorities: Optional[TMapping[str, float]] = None,
        horizon: Optional[int] = None,
        frozen: bool = False,
        message_delays: Optional[TMapping[str, int]] = None,
        compiled: Optional["CompiledSpec"] = None,
        record_trace: bool = False,
    ) -> ScheduleResult:
        """Like :meth:`schedule` but reports failure instead of raising.

        Parameters
        ----------
        application:
            The application to place.
        mapping:
            A complete mapping of the application's processes.
        base:
            Schedule containing frozen reservations of already-designed
            applications; the new application is placed around them.
            When omitted an empty schedule is created.
        priorities:
            Per-process priorities (higher first).  Defaults to HCP.
        horizon:
            Schedule length; defaults to the base schedule's horizon or
            to the application's hyperperiod.  Every graph period must
            divide it.
        frozen:
            When True the new entries are themselves frozen (used when
            constructing the existing applications' schedule).
        message_delays:
            Optional per-message round delays: message ``m`` skips that
            many feasible slot occurrences before being placed.  This
            is the paper's "move a message to a different slack on the
            bus" transformation; strategies propose delays and the
            scheduler realizes them.
        compiled:
            A :class:`repro.engine.compiled_spec.CompiledSpec` for this
            exact ``(application, base, horizon)`` problem.  When given,
            the precomputed job table, base-schedule template and
            default priorities are reused instead of re-derived -- the
            per-candidate fast path of the evaluation engine.
        record_trace:
            When True, successful passes carry a
            :class:`~repro.sched.trace.ScheduleTrace` in the result so
            they can serve as parents of incremental evaluations.
        """
        mapping.validate_complete()
        if message_delays is None:
            message_delays = {}
        if compiled is not None:
            compiled.validate_against(application, base, horizon)
            schedule = compiled.fresh_schedule()
            if priorities is None:
                priorities = compiled.default_priorities
            table = compiled.job_table
        else:
            schedule = self._prepare_schedule(application, base, horizon)
            if priorities is None:
                priorities = hcp_priorities(application, self.architecture.bus)
            table = expand_jobs(application, schedule.horizon)

        jobs = table.jobs
        preds_left = table.fresh_preds()
        earliest = table.fresh_earliest()

        trace = ScheduleTrace(schedule.horizon) if record_trace else None
        ready: List[HeapKey] = []
        for key in table.sources:
            heapq.heappush(ready, heap_key(jobs[key], priorities))
            if trace is not None:
                trace.mark_source(key)

        return self.run_pass(
            application,
            mapping,
            priorities,
            message_delays,
            schedule,
            table,
            earliest,
            preds_left,
            ready,
            scheduled=0,
            frozen=frozen,
            trace=trace,
        )

    def run_pass(
        self,
        application: Application,
        mapping: Mapping,
        priorities: TMapping[str, float],
        message_delays: TMapping[str, int],
        schedule: SystemSchedule,
        table: JobTable,
        earliest: Dict[JobKey, int],
        preds_left: Dict[JobKey, int],
        ready: List[HeapKey],
        scheduled: int,
        frozen: bool = False,
        trace: Optional[ScheduleTrace] = None,
    ) -> ScheduleResult:
        """The resumable scheduling core: run the pass loop to the end.

        The caller owns the loop state and may hand over a *partial*
        pass: ``schedule`` already holding the placements of the first
        ``scheduled`` pops, ``earliest``/``preds_left`` reflecting the
        message deliveries performed so far, and ``ready`` the heap
        content at that point (a valid heap, e.g. via ``heapify``).
        ``try_schedule`` calls this with fresh state; the delta
        evaluator calls it with state reconstructed at a checkpoint of
        a parent trace.  Both runs execute this exact loop, so a
        resumed pass is indistinguishable from a cold one.

        When ``trace`` is given it must already contain the decision
        prefix matching ``scheduled`` (empty for a cold pass); the loop
        appends every further decision to it and attaches it to
        successful results.
        """
        jobs = table.jobs
        total_jobs = len(jobs)

        while ready:
            popped = heapq.heappop(ready)
            _, _, pid, instance = popped
            key = (pid, instance)
            job = jobs[key]
            node_id = mapping.node_of(pid)
            wcet = application.process(pid).wcet_on(node_id)

            start = schedule.earliest_fit(node_id, wcet, earliest[key])
            end = start + wcet
            if end > schedule.horizon:
                return ScheduleResult(
                    schedule,
                    False,
                    f"process {pid!r} instance {instance} does not fit inside "
                    f"the horizon on node {node_id!r}",
                    scheduled,
                    total_jobs,
                )
            if end > job.abs_deadline:
                return ScheduleResult(
                    schedule,
                    False,
                    f"process {pid!r} instance {instance} misses its deadline "
                    f"({end} > {job.abs_deadline}) on node {node_id!r}",
                    scheduled,
                    total_jobs,
                )
            schedule.place_process(pid, instance, node_id, start, wcet, frozen)
            scheduled += 1

            # Resolve outgoing messages and release successors.
            graph = application.graph_of(pid)
            message_events: Optional[List[MessageEvent]] = (
                [] if trace is not None else None
            )
            bus_touched = False
            for msg in graph.out_messages(pid):
                succ_key = (msg.dst, instance)
                arrival, round_index = self._deliver_message(
                    schedule,
                    mapping,
                    msg,
                    instance,
                    end,
                    frozen,
                    message_delays.get(msg.id, 0),
                )
                if arrival is None:
                    return ScheduleResult(
                        schedule,
                        False,
                        f"message {msg.id!r} instance {instance} cannot be "
                        f"placed on the bus before the horizon",
                        scheduled,
                        total_jobs,
                    )
                if arrival > earliest[succ_key]:
                    earliest[succ_key] = arrival
                preds_left[succ_key] -= 1
                if preds_left[succ_key] == 0:
                    heapq.heappush(
                        ready, heap_key(jobs[succ_key], priorities)
                    )
                    if trace is not None:
                        trace.mark_ready(succ_key)
                if message_events is not None:
                    if round_index is not None:
                        bus_touched = True
                    message_events.append(
                        MessageEvent(
                            msg.id,
                            instance,
                            mapping.node_of(msg.src),
                            round_index,
                            arrival,
                            msg.size,
                            succ_key,
                        )
                    )
            if trace is not None:
                trace.record_event(
                    key,
                    node_id,
                    start,
                    end,
                    popped,
                    tuple(message_events),
                    bus_touched,
                )

        if scheduled != total_jobs:
            # Unreachable with a DAG, kept as a defensive invariant.
            return ScheduleResult(
                schedule,
                False,
                "precedence cycle left process instances unscheduled",
                scheduled,
                total_jobs,
            )
        return ScheduleResult(schedule, True, None, scheduled, total_jobs, trace)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prepare_schedule(
        self,
        application: Application,
        base: Optional[SystemSchedule],
        horizon: Optional[int],
    ) -> SystemSchedule:
        """Copy the base (or create an empty schedule) with a checked horizon."""
        if base is not None:
            if horizon is not None and horizon != base.horizon:
                raise SchedulingError(
                    f"requested horizon {horizon} differs from base schedule "
                    f"horizon {base.horizon}"
                )
            horizon = base.horizon
        if horizon is None:
            horizon = application.hyperperiod()
        for graph in application.graphs:
            if horizon % graph.period != 0:
                raise SchedulingError(
                    f"graph {graph.name!r} period {graph.period} does not "
                    f"divide the horizon {horizon}"
                )
        if base is not None:
            return base.copy()
        return SystemSchedule(self.architecture, horizon)

    def _deliver_message(
        self,
        schedule: SystemSchedule,
        mapping: Mapping,
        msg,
        instance: int,
        sender_finish: int,
        frozen: bool,
        delay_rounds: int = 0,
    ) -> Tuple[Optional[int], Optional[int]]:
        """Schedule one message instance; return ``(arrival, round)``.

        Intra-node messages arrive instantly at the sender's finish
        (round is ``None``).  Inter-node messages are packed into the
        earliest slot occurrence of the sender's node -- skipping
        ``delay_rounds`` feasible occurrences first -- and arrive at
        the occurrence's end.  Returns ``(None, None)`` when no
        occurrence fits inside the horizon.
        """
        src_node = mapping.node_of(msg.src)
        dst_node = mapping.node_of(msg.dst)
        if src_node == dst_node:
            return sender_finish, None
        ready = sender_finish
        round_index = schedule.bus.earliest_round_with_room(
            src_node, msg.size, ready
        )
        for _ in range(max(0, delay_rounds)):
            if round_index is None:
                break
            window = schedule.bus.bus.occurrence_window(src_node, round_index)
            round_index = schedule.bus.earliest_round_with_room(
                src_node, msg.size, window.start + 1
            )
        if round_index is None:
            return None, None
        occ = schedule.bus.place(
            msg.id, instance, src_node, round_index, msg.size, frozen
        )
        return schedule.bus.arrival_time(occ), round_index
