"""ASAP / ALAP time bounds for process-graph instances.

Contention-free bounds used for analysis and slack reasoning:

* **ASAP** (as soon as possible): the earliest a process could start if
  its node were free, respecting precedence and (an estimate of) bus
  latency for inter-node messages.
* **ALAP** (as late as possible): the latest a process may start while
  the graph can still meet its deadline.

The difference ``alap - asap`` is the process's *mobility*: processes
with zero mobility are on the (mapped) critical path.  The bounds are
per-graph and per-instance-relative (add ``k * period`` for instance
``k``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.model.mapping import Mapping
from repro.model.process_graph import ProcessGraph
from repro.tdma.bus import TdmaBus
from repro.utils.errors import SchedulingError


@dataclass(frozen=True)
class TimeBounds:
    """Contention-free start-time bounds of one process (instance 0).

    Attributes
    ----------
    asap:
        Earliest possible start relative to the graph's release.
    alap:
        Latest start that still allows the deadline to be met.
    """

    asap: int
    alap: int

    @property
    def mobility(self) -> int:
        """Scheduling freedom; 0 marks the mapped critical path."""
        return self.alap - self.asap


def _message_latency(size: int, src_node: str, dst_node: str, bus: TdmaBus) -> int:
    """Contention-free bus latency estimate for one message.

    Intra-node messages are free.  An inter-node message waits for the
    sender's next slot occurrence (at worst one full round away) and is
    delivered at the slot end; the contention-free *optimistic* bound
    used here is one slot length (frame ready exactly at slot start),
    which keeps ASAP a true lower bound.
    """
    if src_node == dst_node:
        return 0
    return bus.slot_of(src_node).length


def asap_schedule(
    graph: ProcessGraph, mapping: Mapping, bus: TdmaBus
) -> Dict[str, int]:
    """Earliest contention-free start time per process (relative)."""
    asap: Dict[str, int] = {}
    for pid in graph.topological_order():
        start = 0
        node = mapping.node_of(pid)
        for msg in graph.in_messages(pid):
            pred_node = mapping.node_of(msg.src)
            pred_end = asap[msg.src] + graph.process(msg.src).wcet_on(pred_node)
            start = max(
                start,
                pred_end + _message_latency(msg.size, pred_node, node, bus),
            )
        asap[pid] = start
    return asap


def alap_schedule(
    graph: ProcessGraph,
    mapping: Mapping,
    bus: TdmaBus,
    deadline: Optional[int] = None,
) -> Dict[str, int]:
    """Latest deadline-feasible start time per process (relative).

    Raises
    ------
    repro.utils.errors.SchedulingError
        If even the contention-free critical path exceeds the deadline
        (some ALAP would be negative: the graph is unschedulable under
        this mapping regardless of the platform's load).
    """
    if deadline is None:
        deadline = graph.deadline
    alap: Dict[str, int] = {}
    for pid in reversed(graph.topological_order()):
        node = mapping.node_of(pid)
        wcet = graph.process(pid).wcet_on(node)
        latest = deadline - wcet
        for msg in graph.out_messages(pid):
            succ_node = mapping.node_of(msg.dst)
            latency = _message_latency(msg.size, node, succ_node, bus)
            latest = min(latest, alap[msg.dst] - latency - wcet)
        if latest < 0:
            raise SchedulingError(
                f"process {pid!r} cannot meet deadline {deadline} under "
                f"this mapping (contention-free critical path too long)"
            )
        alap[pid] = latest
    return alap


def time_bounds(
    graph: ProcessGraph,
    mapping: Mapping,
    bus: TdmaBus,
    deadline: Optional[int] = None,
) -> Dict[str, TimeBounds]:
    """ASAP/ALAP bounds (and mobility) for every process of ``graph``."""
    asap = asap_schedule(graph, mapping, bus)
    alap = alap_schedule(graph, mapping, bus, deadline)
    return {
        pid: TimeBounds(asap[pid], alap[pid]) for pid in graph.process_ids
    }


def critical_processes(
    graph: ProcessGraph,
    mapping: Mapping,
    bus: TdmaBus,
    slack_threshold: int = 0,
) -> Dict[str, TimeBounds]:
    """Processes whose mobility is at most ``slack_threshold``."""
    bounds = time_bounds(graph, mapping, bus)
    return {
        pid: b for pid, b in bounds.items() if b.mobility <= slack_threshold
    }
