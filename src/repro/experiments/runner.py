"""Shared experiment machinery.

:func:`run_comparison` executes the three strategies (AH, MH, SA) on
the same generated scenarios -- one scenario per (current-size, seed)
pair -- and returns per-run records that the figure harnesses aggregate
in their own ways (quality deviations, runtimes, future mappability).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import ObjectiveWeights
from repro.core.strategy import DesignResult, make_strategy
from repro.engine.cache import CacheStats
from repro.gen.scenario import Scenario, ScenarioParams, build_scenario
from repro.utils.errors import MappingError


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by all experiment harnesses.

    The defaults run the full suite in minutes on a laptop; the
    ``paper_scale`` preset (see :meth:`paper`) restores the paper's
    workload sizes at the cost of hours of SA runtime.
    """

    current_sizes: Tuple[int, ...] = (10, 20, 30)
    n_existing: int = 60
    seeds: Tuple[int, ...] = (1, 2, 3)
    sa_iterations: int = 1200
    #: Worker processes per strategy run (the evaluation engine's batch
    #: evaluator); ``1`` stays serial.  Results are identical either way.
    jobs: int = 1
    scenario_params: ScenarioParams = field(default_factory=ScenarioParams)
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    # fig-future only.  ``n_future_processes=None`` sizes each future
    # application from the scenario's characterized t_need (a typical
    # family member claiming ``future_demand_fraction * t_need``); the
    # paper preset pins it to 80 processes instead.
    n_future_processes: Optional[int] = None
    future_apps_per_scenario: int = 10
    future_demand_fraction: float = 0.4

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper's scale: existing 400, current 40-320, future 80."""
        return cls(
            current_sizes=(40, 80, 160, 240, 320),
            n_existing=400,
            seeds=tuple(range(1, 11)),
            sa_iterations=6000,
            scenario_params=ScenarioParams(n_nodes=10, hyperperiod=4800,
                                           slot_length=4, slot_capacity=16),
            n_future_processes=80,
            future_apps_per_scenario=20,
        )

    def scenario_for(self, size: int, seed: int) -> Scenario:
        """Build the scenario of one (current-size, seed) cell."""
        params = replace(
            self.scenario_params,
            n_existing=self.n_existing,
            n_current=size,
        )
        return build_scenario(params, seed=seed)


@dataclass
class ComparisonRecord:
    """All three strategies' results on one scenario."""

    size: int
    seed: int
    scenario: Scenario
    results: Dict[str, DesignResult]

    def objective(self, strategy: str) -> float:
        return self.results[strategy].objective

    def runtime(self, strategy: str) -> float:
        return self.results[strategy].runtime_seconds

    def all_valid(self) -> bool:
        return all(r.valid for r in self.results.values())

    def cache_line(self, strategy: str) -> str:
        """Human-readable engine statistics of one strategy's run."""
        r = self.results[strategy]
        return (
            f"{r.evaluations} evals, {r.cache_hits} hits, "
            f"{r.cache_misses} misses"
        )


def run_comparison(
    config: ExperimentConfig,
    strategies: Sequence[str] = ("AH", "MH", "SA"),
    verbose: bool = False,
) -> List[ComparisonRecord]:
    """Run every strategy on every (size, seed) scenario.

    Scenarios whose existing application cannot be scheduled are
    skipped (the generator retries internally first); scenarios where a
    strategy finds no valid design are kept -- their records report
    ``objective == inf`` and the aggregators decide how to treat them.
    """
    records: List[ComparisonRecord] = []
    for size in config.current_sizes:
        for seed in config.seeds:
            try:
                scenario = config.scenario_for(size, seed)
            except MappingError:
                if verbose:
                    print(f"size={size} seed={seed}: unschedulable, skipped")
                continue
            results: Dict[str, DesignResult] = {}
            for name in strategies:
                strategy = _build(name, config, seed)
                results[name] = strategy.design(scenario.spec(config.weights))
            record = ComparisonRecord(size, seed, scenario, results)
            records.append(record)
            if verbose:
                line = " ".join(
                    f"{n}={results[n].objective:.1f}" for n in strategies
                )
                cache = "; ".join(
                    f"{n}: {record.cache_line(n)}" for n in strategies
                )
                print(f"size={size} seed={seed}: {line} [{cache}]")
    return records


def _build(name: str, config: ExperimentConfig, seed: int):
    """Instantiate a strategy with experiment-appropriate parameters."""
    if name.upper() == "SA":
        return make_strategy(
            "SA",
            iterations=config.sa_iterations,
            seed=seed * 7919 + 13,
            jobs=config.jobs,
        )
    return make_strategy(name, jobs=config.jobs)


def cache_statistics(
    records: Sequence[ComparisonRecord],
    strategies: Optional[Sequence[str]] = None,
) -> List[Tuple[str, int, int, int, float]]:
    """Per-strategy evaluation-engine totals across all runs.

    Returns ``(strategy, evaluations, hits, misses, hit_rate)`` rows,
    aggregated over every record that ran the strategy -- the data of
    the CLI's engine-statistics report.  ``strategies`` defaults to the
    names actually present in ``records``, in first-seen order.
    """
    if strategies is None:
        seen: List[str] = []
        for record in records:
            for name in record.results:
                if name not in seen:
                    seen.append(name)
        strategies = seen
    rows: List[Tuple[str, int, int, int, float]] = []
    for name in strategies:
        results = [r.results[name] for r in records if name in r.results]
        evaluations = sum(r.evaluations for r in results)
        hits = sum(r.cache_hits for r in results)
        misses = sum(r.cache_misses for r in results)
        rate = CacheStats(hits, misses, 0).hit_rate
        rows.append((name, evaluations, hits, misses, rate))
    return rows


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)
