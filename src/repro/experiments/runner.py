"""Shared experiment machinery.

:func:`run_comparison` executes the three strategies (AH, MH, SA) on
the same generated scenarios -- one scenario per (current-size, seed)
pair -- and returns per-run records that the figure harnesses aggregate
in their own ways (quality deviations, runtimes, future mappability).

:func:`run_family_matrix` is the diversity analogue: it sweeps the
scenario-family grid (every strategy x every registered family, seeded,
cache on and off) the way :func:`run_comparison` sweeps
``current_sizes``, and :func:`run_family_smoke` is the CI-facing subset
(smallest preset per family, with determinism and codec round-trip
checks).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import ObjectiveWeights
from repro.core.strategy import DesignResult, make_strategy
from repro.engine.cache import CacheStats
from repro.engine.delta import DeltaStats
from repro.gen.scenario import Scenario, ScenarioParams, build_scenario
from repro.gen import families as families_module
from repro.search.budget import Budget
from repro.search.portfolio import PortfolioResult, PortfolioRunner
from repro.serialize.scenario_codec import scenario_from_dict, scenario_to_dict
from repro.utils.errors import MappingError


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by all experiment harnesses.

    The defaults run the full suite in minutes on a laptop; the
    ``paper_scale`` preset (see :meth:`paper`) restores the paper's
    workload sizes at the cost of hours of SA runtime.
    """

    current_sizes: Tuple[int, ...] = (10, 20, 30)
    n_existing: int = 60
    seeds: Tuple[int, ...] = (1, 2, 3)
    sa_iterations: int = 1200
    #: Worker processes per strategy run (the evaluation engine's batch
    #: evaluator); ``1`` stays serial.  Results are identical either way.
    jobs: int = 1
    #: Incremental (move-aware) evaluation; the CLI's ``--no-delta``
    #: escape hatch sets this False.  Results are identical either way.
    use_delta: bool = True
    #: Scheduler core: ``"array"`` (structure-of-arrays kernel, the
    #: default) or ``"object"`` (the pinned object-graph reference).
    #: The CLI's ``--engine-core`` switch.  Results are byte-identical.
    engine_core: str = "array"
    #: Result-store backend of every strategy's evaluation engine:
    #: ``"memory"`` (process-local LRU) or ``"sqlite"`` (persistent
    #: database at ``cache_path``, warm across runs).  The CLI's
    #: ``--cache-store`` / ``--cache-path`` switches.  Results are
    #: byte-identical either way.
    cache_store: str = "memory"
    cache_path: Optional[str] = None
    #: Per-strategy search budget (``None`` on every axis = the
    #: strategies' own caps only).  Evaluation/step/patience budgets
    #: cut seeded runs at exact reproducible points; wall-clock budgets
    #: are machine-dependent.
    budget_evaluations: Optional[int] = None
    budget_seconds: Optional[float] = None
    budget_patience: Optional[int] = None
    #: Portfolio members raced by the ``scenarios portfolio`` command
    #: (strategy names, racing order = tie-breaking order).
    portfolio: Tuple[str, ...] = ("MH", "SA")
    scenario_params: ScenarioParams = field(default_factory=ScenarioParams)
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    # fig-future only.  ``n_future_processes=None`` sizes each future
    # application from the scenario's characterized t_need (a typical
    # family member claiming ``future_demand_fraction * t_need``); the
    # paper preset pins it to 80 processes instead.
    n_future_processes: Optional[int] = None
    future_apps_per_scenario: int = 10
    future_demand_fraction: float = 0.4

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper's scale: existing 400, current 40-320, future 80."""
        return cls(
            current_sizes=(40, 80, 160, 240, 320),
            n_existing=400,
            seeds=tuple(range(1, 11)),
            sa_iterations=6000,
            scenario_params=ScenarioParams(n_nodes=10, hyperperiod=4800,
                                           slot_length=4, slot_capacity=16),
            n_future_processes=80,
            future_apps_per_scenario=20,
        )

    def scenario_for(self, size: int, seed: int) -> Scenario:
        """Build the scenario of one (current-size, seed) cell."""
        params = replace(
            self.scenario_params,
            n_existing=self.n_existing,
            n_current=size,
        )
        return build_scenario(params, seed=seed)

    def search_budget(self) -> Optional[Budget]:
        """The per-strategy budget these settings describe, if any."""
        return make_budget(
            self.budget_evaluations, self.budget_seconds, self.budget_patience
        )


def make_budget(
    evaluations: Optional[int] = None,
    seconds: Optional[float] = None,
    patience: Optional[int] = None,
) -> Optional[Budget]:
    """A :class:`Budget` from optional CLI-style knobs (``None`` = none)."""
    if evaluations is None and seconds is None and patience is None:
        return None
    return Budget(
        max_evaluations=evaluations, max_seconds=seconds, patience=patience
    )


@dataclass
class ComparisonRecord:
    """All three strategies' results on one scenario."""

    size: int
    seed: int
    scenario: Scenario
    results: Dict[str, DesignResult]

    def objective(self, strategy: str) -> float:
        return self.results[strategy].objective

    def runtime(self, strategy: str) -> float:
        return self.results[strategy].runtime_seconds

    def all_valid(self) -> bool:
        return all(r.valid for r in self.results.values())

    def cache_line(self, strategy: str) -> str:
        """Human-readable engine statistics of one strategy's run."""
        r = self.results[strategy]
        return (
            f"{r.evaluations} evals, {r.cache_hits} hits, "
            f"{r.cache_misses} misses"
        )


def run_comparison(
    config: ExperimentConfig,
    strategies: Sequence[str] = ("AH", "MH", "SA"),
    verbose: bool = False,
) -> List[ComparisonRecord]:
    """Run every strategy on every (size, seed) scenario.

    Scenarios whose existing application cannot be scheduled are
    skipped (the generator retries internally first); scenarios where a
    strategy finds no valid design are kept -- their records report
    ``objective == inf`` and the aggregators decide how to treat them.
    """
    records: List[ComparisonRecord] = []
    for size in config.current_sizes:
        for seed in config.seeds:
            try:
                scenario = config.scenario_for(size, seed)
            except MappingError:
                if verbose:
                    print(f"size={size} seed={seed}: unschedulable, skipped")
                continue
            results: Dict[str, DesignResult] = {}
            for name in strategies:
                strategy = _build(name, config, seed)
                results[name] = strategy.design(scenario.spec(config.weights))
            record = ComparisonRecord(size, seed, scenario, results)
            records.append(record)
            if verbose:
                line = " ".join(
                    f"{n}={results[n].objective:.1f}" for n in strategies
                )
                cache = "; ".join(
                    f"{n}: {record.cache_line(n)}" for n in strategies
                )
                print(f"size={size} seed={seed}: {line} [{cache}]")
    return records


def _build(name: str, config: ExperimentConfig, seed: int):
    """Instantiate a strategy with experiment-appropriate parameters."""
    budget = config.search_budget()
    if name.upper() == "SA":
        return make_strategy(
            "SA",
            iterations=config.sa_iterations,
            seed=seed * 7919 + 13,
            jobs=config.jobs,
            use_delta=config.use_delta,
            engine_core=config.engine_core,
            cache_store=config.cache_store,
            cache_path=config.cache_path,
            budget=budget,
        )
    return make_strategy(
        name,
        jobs=config.jobs,
        use_delta=config.use_delta,
        engine_core=config.engine_core,
        cache_store=config.cache_store,
        cache_path=config.cache_path,
        budget=budget,
    )


def cache_statistics(
    records: Sequence[ComparisonRecord],
    strategies: Optional[Sequence[str]] = None,
) -> List[Tuple[str, int, int, int, float]]:
    """Per-strategy evaluation-engine totals across all runs.

    Returns ``(strategy, evaluations, hits, misses, hit_rate)`` rows,
    aggregated over every record that ran the strategy -- the data of
    the CLI's engine-statistics report.  ``strategies`` defaults to the
    names actually present in ``records``, in first-seen order.
    """
    if strategies is None:
        seen: List[str] = []
        for record in records:
            for name in record.results:
                if name not in seen:
                    seen.append(name)
        strategies = seen
    rows: List[Tuple[str, int, int, int, float]] = []
    for name in strategies:
        results = [r.results[name] for r in records if name in r.results]
        evaluations = sum(r.evaluations for r in results)
        hits = sum(r.cache_hits for r in results)
        misses = sum(r.cache_misses for r in results)
        rate = CacheStats(hits, misses, 0).hit_rate
        rows.append((name, evaluations, hits, misses, rate))
    return rows


def delta_statistics(
    records: Sequence[ComparisonRecord],
    strategies: Optional[Sequence[str]] = None,
) -> List[Tuple[str, int, int, float]]:
    """Per-strategy incremental-evaluation totals across all runs.

    Returns ``(strategy, delta_hits, delta_fallbacks, hit_rate)`` rows,
    the delta counterpart of :func:`cache_statistics`; all zeros for a
    strategy when the runs used ``--no-delta``.
    """
    if strategies is None:
        seen: List[str] = []
        for record in records:
            for name in record.results:
                if name not in seen:
                    seen.append(name)
        strategies = seen
    rows: List[Tuple[str, int, int, float]] = []
    for name in strategies:
        results = [r.results[name] for r in records if name in r.results]
        hits = sum(r.delta_hits for r in results)
        fallbacks = sum(r.delta_fallbacks for r in results)
        stats = DeltaStats(hits, fallbacks)
        rows.append((name, hits, fallbacks, stats.hit_rate))
    return rows


def stage_statistics(
    records: Sequence[ComparisonRecord],
    strategies: Optional[Sequence[str]] = None,
) -> List[Tuple[str, int, int, int]]:
    """Per-strategy evaluation-pipeline stage times across all runs.

    Returns ``(strategy, sched_ns, metrics_ns, decode_ns)`` rows, the
    Amdahl split of engine time between scheduling passes, metric
    pricing and object-schedule decode (lazy under the array core:
    only incumbents and reporting paths pay it).
    """
    if strategies is None:
        seen: List[str] = []
        for record in records:
            for name in record.results:
                if name not in seen:
                    seen.append(name)
        strategies = seen
    rows: List[Tuple[str, int, int, int]] = []
    for name in strategies:
        results = [r.results[name] for r in records if name in r.results]
        rows.append(
            (
                name,
                sum(r.sched_ns for r in results),
                sum(r.metrics_ns for r in results),
                sum(r.decode_ns for r in results),
            )
        )
    return rows


def store_statistics(
    records: Sequence[ComparisonRecord],
    strategies: Optional[Sequence[str]] = None,
) -> List[Tuple[str, int, int, int, float]]:
    """Per-strategy persistent-store totals across all runs.

    Returns ``(strategy, store_hits, store_misses, store_writes,
    hit_rate)`` rows, the result-store counterpart of
    :func:`cache_statistics`; all zeros for a strategy when the runs
    used the in-memory backend.
    """
    if strategies is None:
        seen: List[str] = []
        for record in records:
            for name in record.results:
                if name not in seen:
                    seen.append(name)
        strategies = seen
    rows: List[Tuple[str, int, int, int, float]] = []
    for name in strategies:
        results = [r.results[name] for r in records if name in r.results]
        hits = sum(r.store_hits for r in results)
        misses = sum(r.store_misses for r in results)
        writes = sum(r.store_writes for r in results)
        probes = hits + misses
        rate = hits / probes if probes else 0.0
        rows.append((name, hits, misses, writes, rate))
    return rows


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


# ----------------------------------------------------------------------
# scenario-family stress matrix
# ----------------------------------------------------------------------
#: SA iteration budget for family sweeps; small by design -- the matrix
#: is about breadth (every family x strategy x cache mode), not about
#: squeezing the reference to its optimum.
DEFAULT_FAMILY_SA_ITERATIONS = 150


@dataclass
class FamilyMatrixRecord:
    """One strategy run on one family scenario in one cache mode."""

    family: str
    preset: str
    seed: int
    strategy: str
    use_cache: bool
    result: DesignResult


@dataclass
class FamilySmokeResult:
    """Outcome of the CI smoke checks for one family.

    ``failures`` is empty when the family passed: the scenario
    round-trips through the JSON codec byte-identically, and every
    strategy finds a valid design that is identical with the cache on,
    off, and with two evaluation workers.
    """

    family: str
    preset: str
    seed: int
    failures: List[str] = field(default_factory=list)
    objectives: Dict[str, float] = field(default_factory=dict)
    #: Per-strategy canonical design fingerprint (sha256 prefix of the
    #: baseline run's :meth:`DesignResult.design_identity`); the value
    #: the CI warm-restart gate compares across runs.
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: Persistent-store totals over the baseline runs (zero on the
    #: memory backend).
    store_hits: int = 0
    store_misses: int = 0
    runtime_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def store_hit_rate(self) -> float:
        probes = self.store_hits + self.store_misses
        return self.store_hits / probes if probes else 0.0


def design_identity(result: DesignResult):
    """Canonical identity of a design (see
    :meth:`DesignResult.design_identity`, the single definition)."""
    return result.design_identity()


def design_fingerprint(result: DesignResult) -> str:
    """Short stable digest of the canonical design identity.

    A sha256 prefix over ``repr(design_identity())`` -- compact enough
    to print per run, and equal exactly when the designs are
    byte-identical.  The CI warm-restart gate compares these across
    cold and warm store runs.
    """
    import hashlib

    identity = repr(design_identity(result)).encode("utf-8")
    return hashlib.sha256(identity).hexdigest()[:16]


def strategy_for_family(
    name: str,
    seed: int,
    use_cache: bool,
    jobs: int,
    sa_iterations: int,
    use_delta: bool = True,
    budget: Optional[Budget] = None,
    engine_core: str = "array",
    cache_store: str = "memory",
    cache_path: Optional[str] = None,
):
    """Instantiate a strategy for a family run (shared with the CLI).

    ``SA@k`` (k >= 1) names a portfolio variant of SA: the same
    configuration on a distinct seeded RNG stream (seed offset
    ``k * 101``), so portfolio races can field several independent
    SA members.  Only SA has variants -- the other strategies are
    deterministic, so extra copies would race identical walks.
    """
    base, _, suffix = name.partition("@")
    variant = 0
    if suffix:
        variant = int(suffix)
        if base.upper() != "SA" or variant < 1:
            raise ValueError(
                f"only SA@k (k >= 1) variants exist, got {name!r}"
            )
    if base.upper() == "SA":
        strategy = make_strategy(
            "SA",
            iterations=sa_iterations,
            seed=seed * 7919 + 13 + variant * 101,
            use_cache=use_cache,
            jobs=jobs,
            use_delta=use_delta,
            engine_core=engine_core,
            cache_store=cache_store,
            cache_path=cache_path,
            budget=budget,
        )
        if variant:
            strategy.name = f"SA@{variant}"
        return strategy
    return make_strategy(
        name,
        use_cache=use_cache,
        jobs=jobs,
        use_delta=use_delta,
        engine_core=engine_core,
        cache_store=cache_store,
        cache_path=cache_path,
        budget=budget,
    )


def portfolio_members(
    strategies: Sequence[str],
    seed: int,
    sa_iterations: int = DEFAULT_FAMILY_SA_ITERATIONS,
    budget: Optional[Budget] = None,
    engine_core: str = "array",
) -> List:
    """Configured strategy instances for a portfolio race.

    Members are built exactly like single-strategy family runs (same
    SA seed derivation), so a portfolio member's trajectory matches
    the corresponding solo run; ``budget`` here is each member's *own*
    budget (the racing budget lives on the runner).
    """
    return [
        strategy_for_family(
            name,
            seed,
            True,
            1,
            sa_iterations,
            budget=budget,
            engine_core=engine_core,
        )
        for name in strategies
    ]


def run_portfolio(
    spec,
    strategies: Sequence[str],
    seed: int = 1,
    sa_iterations: int = DEFAULT_FAMILY_SA_ITERATIONS,
    member_budget: Optional[Budget] = None,
    shared_budget: Optional[Budget] = None,
    use_cache: bool = True,
    jobs: int = 1,
    use_delta: bool = True,
    engine_core: str = "array",
    cache_store: str = "memory",
    cache_path: Optional[str] = None,
    shards: int = 0,
    elastic: bool = False,
) -> PortfolioResult:
    """Race ``strategies`` on ``spec`` over one shared engine.

    The deterministic lockstep race of
    :class:`repro.search.PortfolioRunner`: member order is the racing
    and tie-breaking order, ``shared_budget`` is contended for by all
    members, and the winner is byte-identical for any ``jobs`` value.
    With ``cache_store="sqlite"`` the race shares one persistent store
    at ``cache_path`` (and is served warm by earlier races against it).

    ``shards >= 1`` runs the same race distributed across that many
    worker processes (:class:`repro.search.DistributedPortfolioRunner`)
    -- replay mode by default (deterministic, winner byte-identical to
    the lockstep race), elastic mode with ``elastic=True`` (wall-clock
    budgets and dynamic work-stealing allowed).  ``shards=0`` (the
    default) stays on the in-process lockstep reference.
    """
    members = portfolio_members(
        strategies, seed, sa_iterations, member_budget, engine_core
    )
    if shards >= 1:
        from repro.search.distributed import DistributedPortfolioRunner

        return DistributedPortfolioRunner(
            members,
            budget=shared_budget,
            shards=shards,
            mode="elastic" if elastic else "replay",
            use_cache=use_cache,
            jobs=jobs,
            use_delta=use_delta,
            engine_core=engine_core,
            cache_store=cache_store,
            cache_path=cache_path,
        ).run(spec)
    runner = PortfolioRunner(
        members,
        budget=shared_budget,
        use_cache=use_cache,
        jobs=jobs,
        use_delta=use_delta,
        engine_core=engine_core,
        cache_store=cache_store,
        cache_path=cache_path,
    )
    return runner.run(spec)


def run_family_matrix(
    family_names: Optional[Sequence[str]] = None,
    preset: Optional[str] = None,
    seeds: Sequence[int] = (1,),
    strategies: Sequence[str] = ("AH", "MH", "SA"),
    cache_modes: Sequence[bool] = (True, False),
    jobs: int = 1,
    sa_iterations: int = DEFAULT_FAMILY_SA_ITERATIONS,
    use_delta: bool = True,
    engine_core: str = "array",
    cache_store: str = "memory",
    cache_path: Optional[str] = None,
    budget: Optional[Budget] = None,
    verbose: bool = False,
) -> List[FamilyMatrixRecord]:
    """The stress matrix: every strategy x every family, cache on/off.

    Parameters
    ----------
    family_names:
        Families to sweep; defaults to every registered family.
    preset:
        Preset name to use for each family; ``None`` uses each
        family's smallest preset (presets are per-family, so a shared
        name must exist in all swept families).
    seeds:
        Scenario seeds; each (family, seed) cell is generated once and
        shared by all strategy/cache runs.
    strategies, cache_modes, jobs, sa_iterations:
        The strategy grid.  Results are deterministic for any cache
        mode and job count by the evaluation-engine contract.
    """
    if family_names is None:
        family_names = families_module.family_names()
    records: List[FamilyMatrixRecord] = []
    for name in family_names:
        family = families_module.get_family(name)
        preset_name = preset if preset is not None else family.smallest_preset
        for seed in seeds:
            try:
                scenario = family.build(preset_name, seed=seed)
            except MappingError:
                if verbose:
                    print(
                        f"family={name} preset={preset_name} seed={seed}: "
                        f"unschedulable, skipped"
                    )
                continue
            spec = scenario.spec()
            for strategy_name in strategies:
                for use_cache in cache_modes:
                    strategy = strategy_for_family(
                        strategy_name,
                        seed,
                        use_cache,
                        jobs,
                        sa_iterations,
                        use_delta,
                        budget=budget,
                        engine_core=engine_core,
                        cache_store=cache_store if use_cache else "memory",
                        cache_path=cache_path,
                    )
                    result = strategy.design(spec)
                    records.append(
                        FamilyMatrixRecord(
                            family=name,
                            preset=preset_name,
                            seed=seed,
                            strategy=strategy_name,
                            use_cache=use_cache,
                            result=result,
                        )
                    )
                    if verbose:
                        print(
                            f"family={name} preset={preset_name} "
                            f"seed={seed} {strategy_name} "
                            f"cache={'on' if use_cache else 'off'}: "
                            f"objective={result.objective:.1f}"
                        )
    return records


def run_family_smoke(
    family_names: Optional[Sequence[str]] = None,
    seed: int = 1,
    strategies: Sequence[str] = ("AH", "MH", "SA"),
    sa_iterations: int = DEFAULT_FAMILY_SA_ITERATIONS,
    cache_store: str = "memory",
    cache_path: Optional[str] = None,
    verbose: bool = False,
) -> List[FamilySmokeResult]:
    """CI smoke sweep: smallest preset per family, all checks.

    Per family: (1) the scenario round-trips through the JSON codec
    byte-identically; (2) every strategy finds a *valid* design;
    (3) each strategy's design is identical with the cache on, with the
    cache off, with ``jobs=2``, with incremental evaluation off
    (``--no-delta``) and with the pinned object scheduler core
    (``--engine-core object``) -- the determinism contract new families
    must not break.

    ``cache_store``/``cache_path`` apply to the *baseline* run of each
    strategy only (the comparison variants stay memory-backed: they
    exist to check determinism, and routing them through the same
    database would let the store serve results between variants).  Each
    smoke result reports the baseline designs' fingerprints and the
    store totals, so a second sweep against the same path can assert
    warm-hit rate and byte-identical designs (the CI warm-restart
    gate).
    """
    if family_names is None:
        family_names = families_module.family_names()
    out: List[FamilySmokeResult] = []
    for name in family_names:
        family = families_module.get_family(name)
        preset_name = family.smallest_preset
        started = time.perf_counter()
        smoke = FamilySmokeResult(family=name, preset=preset_name, seed=seed)
        try:
            scenario = family.build(preset_name, seed=seed)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            smoke.failures.append(f"build failed: {exc}")
            smoke.runtime_seconds = time.perf_counter() - started
            out.append(smoke)
            continue

        # Codec round trip must be byte-identical.
        first = json.dumps(scenario_to_dict(scenario), sort_keys=True)
        rebuilt = scenario_from_dict(json.loads(first))
        second = json.dumps(scenario_to_dict(rebuilt), sort_keys=True)
        if first != second:
            smoke.failures.append("JSON round trip is not byte-identical")

        spec = scenario.spec()
        for strategy_name in strategies:
            baseline = strategy_for_family(
                strategy_name, seed, True, 1, sa_iterations,
                cache_store=cache_store, cache_path=cache_path,
            ).design(spec)
            smoke.store_hits += baseline.store_hits
            smoke.store_misses += baseline.store_misses
            if not baseline.valid:
                smoke.failures.append(f"{strategy_name}: no valid design")
                continue
            smoke.objectives[strategy_name] = baseline.objective
            smoke.fingerprints[strategy_name] = design_fingerprint(baseline)
            reference = design_identity(baseline)
            for label, use_cache, jobs, use_delta, engine_core in (
                ("cache off", False, 1, True, "array"),
                ("jobs=2", True, 2, True, "array"),
                ("delta off", True, 1, False, "array"),
                ("object core", True, 1, True, "object"),
            ):
                other = strategy_for_family(
                    strategy_name,
                    seed,
                    use_cache,
                    jobs,
                    sa_iterations,
                    use_delta,
                    engine_core=engine_core,
                ).design(spec)
                if design_identity(other) != reference:
                    smoke.failures.append(
                        f"{strategy_name}: design differs with {label}"
                    )
        smoke.runtime_seconds = time.perf_counter() - started
        if verbose:
            status = "ok" if smoke.ok else "; ".join(smoke.failures)
            print(f"family={name} preset={preset_name}: {status}")
        out.append(smoke)
    return out
