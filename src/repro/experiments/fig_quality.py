"""Experiment 1 (slide 15): design quality of AH and MH versus SA.

For each current-application size, the three strategies design the same
randomly generated scenarios and the harness reports the *average
percentage deviation* of AH's and MH's objective from the near-optimal
SA value:

    deviation(X) = 100 * (C_X - C_SA) / C_SA

The paper reports AH deviating by roughly 50-130% and MH staying within
a few percent to a few tens of percent of SA, with AH's deviation
shrinking for very large current applications (less slack left, fewer
ways to differ).  Scenarios where SA reaches objective 0 use a floor of
1.0 in the denominator so the deviation stays finite; scenarios where
any strategy finds no valid design are excluded from the average (all
strategies share IM, so this is rare and symmetric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ComparisonRecord,
    ExperimentConfig,
    mean,
    run_comparison,
)


@dataclass(frozen=True)
class QualityRow:
    """One point of the slide-15 figure."""

    size: int
    scenarios: int
    avg_deviation_ah: float
    avg_deviation_mh: float
    avg_objective_sa: float


def deviation(objective: float, reference: float) -> float:
    """Percentage deviation from the SA reference, floored denominator."""
    return 100.0 * (objective - reference) / max(reference, 1.0)


def fig_quality(
    config: Optional[ExperimentConfig] = None,
    records: Optional[List[ComparisonRecord]] = None,
    verbose: bool = False,
) -> List[QualityRow]:
    """Compute the slide-15 rows (running the comparison if needed)."""
    if config is None:
        config = ExperimentConfig()
    if records is None:
        records = run_comparison(config, verbose=verbose)

    rows: List[QualityRow] = []
    for size in config.current_sizes:
        cell = [r for r in records if r.size == size and r.all_valid()]
        if not cell:
            continue
        rows.append(
            QualityRow(
                size=size,
                scenarios=len(cell),
                avg_deviation_ah=mean(
                    deviation(r.objective("AH"), r.objective("SA"))
                    for r in cell
                ),
                avg_deviation_mh=mean(
                    deviation(r.objective("MH"), r.objective("SA"))
                    for r in cell
                ),
                avg_objective_sa=mean(r.objective("SA") for r in cell),
            )
        )
    return rows


def render(rows: Sequence[QualityRow]) -> str:
    """The figure as an ASCII table."""
    return format_table(
        ["current size", "scenarios", "AH dev %", "MH dev %", "SA obj"],
        [
            (
                r.size,
                r.scenarios,
                r.avg_deviation_ah,
                r.avg_deviation_mh,
                r.avg_objective_sa,
            )
            for r in rows
        ],
        title=(
            "Fig (slide 15): avg % deviation from near-optimal (SA) "
            "vs current-application size"
        ),
    )
