"""Experiment 3 (slide 17): future-application mappability.

After the current application is designed with AH versus MH, concrete
future applications (random graphs drawn from the characterized family)
arrive; each either fits in the remaining slack (the Initial Mapper
finds a valid design without touching anything) or does not.  The
harness reports the percentage that fit, per strategy and
current-application size.

The paper's result: designs produced by the future-aware MH accept a
much larger share of future applications than AH designs, and the gap
persists across current-application sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.strategy import fits_future_application
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ComparisonRecord,
    ExperimentConfig,
    mean,
    run_comparison,
)
from repro.gen.scenario import generate_future_application
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class FutureRow:
    """One point of the slide-17 figure."""

    size: int
    scenarios: int
    future_apps: int
    pct_mapped_ah: float
    pct_mapped_mh: float


def fig_future(
    config: Optional[ExperimentConfig] = None,
    records: Optional[List[ComparisonRecord]] = None,
    verbose: bool = False,
) -> List[FutureRow]:
    """Compute the slide-17 rows.

    When ``records`` is omitted the comparison is run with AH and MH
    only (SA is not part of this experiment in the paper).
    """
    if config is None:
        config = ExperimentConfig()
    if records is None:
        records = run_comparison(config, strategies=("AH", "MH"), verbose=verbose)

    rows: List[FutureRow] = []
    for size in config.current_sizes:
        cell = [
            r
            for r in records
            if r.size == size
            and r.results["AH"].valid
            and r.results["MH"].valid
        ]
        if not cell:
            continue
        ah_hits: List[float] = []
        mh_hits: List[float] = []
        total_futures = 0
        for record in cell:
            futures = _future_apps(config, record)
            total_futures += len(futures)
            for future_app in futures:
                ah_hits.append(
                    1.0
                    if fits_future_application(
                        record.results["AH"].schedule,
                        future_app,
                        record.scenario.architecture,
                    )
                    else 0.0
                )
                mh_hits.append(
                    1.0
                    if fits_future_application(
                        record.results["MH"].schedule,
                        future_app,
                        record.scenario.architecture,
                    )
                    else 0.0
                )
        rows.append(
            FutureRow(
                size=size,
                scenarios=len(cell),
                future_apps=total_futures,
                pct_mapped_ah=100.0 * mean(ah_hits),
                pct_mapped_mh=100.0 * mean(mh_hits),
            )
        )
        if verbose:
            r = rows[-1]
            print(
                f"size={size}: AH {r.pct_mapped_ah:.0f}% vs "
                f"MH {r.pct_mapped_mh:.0f}% over {r.future_apps} futures"
            )
    return rows


def _future_apps(config: ExperimentConfig, record: ComparisonRecord):
    """The concrete future applications tested against one scenario."""
    rngs = spawn_rngs(
        record.seed * 104_729 + record.size, config.future_apps_per_scenario
    )
    return [
        generate_future_application(
            record.scenario,
            config.n_future_processes,
            rng,
            name=f"future{i}",
            demand_fraction=config.future_demand_fraction,
        )
        for i, rng in enumerate(rngs)
    ]


def render(rows: Sequence[FutureRow]) -> str:
    """The figure as an ASCII table."""
    return format_table(
        ["current size", "scenarios", "futures", "AH mapped %", "MH mapped %"],
        [
            (
                r.size,
                r.scenarios,
                r.future_apps,
                r.pct_mapped_ah,
                r.pct_mapped_mh,
            )
            for r in rows
        ],
        title=(
            "Fig (slide 17): % of future applications mappable "
            "after AH vs MH design"
        ),
    )
