"""Experiment 2 (slide 16): design runtime of AH, MH and SA.

Same scenarios as experiment 1; the harness reports each strategy's
average wall-clock design time per current-application size.  The paper
(on 2001 hardware) reports minutes for SA, well under a minute for MH
and near-zero for AH; absolute values will differ here, but the
ordering AH << MH << SA and the growth with application size must
reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ComparisonRecord,
    ExperimentConfig,
    mean,
    run_comparison,
)


@dataclass(frozen=True)
class RuntimeRow:
    """One point of the slide-16 figure (seconds, averaged over seeds)."""

    size: int
    scenarios: int
    avg_runtime_ah: float
    avg_runtime_mh: float
    avg_runtime_sa: float


def fig_runtime(
    config: Optional[ExperimentConfig] = None,
    records: Optional[List[ComparisonRecord]] = None,
    verbose: bool = False,
) -> List[RuntimeRow]:
    """Compute the slide-16 rows (running the comparison if needed)."""
    if config is None:
        config = ExperimentConfig()
    if records is None:
        records = run_comparison(config, verbose=verbose)

    rows: List[RuntimeRow] = []
    for size in config.current_sizes:
        cell = [r for r in records if r.size == size]
        if not cell:
            continue
        rows.append(
            RuntimeRow(
                size=size,
                scenarios=len(cell),
                avg_runtime_ah=mean(r.runtime("AH") for r in cell),
                avg_runtime_mh=mean(r.runtime("MH") for r in cell),
                avg_runtime_sa=mean(r.runtime("SA") for r in cell),
            )
        )
    return rows


def render(rows: Sequence[RuntimeRow]) -> str:
    """The figure as an ASCII table."""
    return format_table(
        ["current size", "scenarios", "AH [s]", "MH [s]", "SA [s]"],
        [
            (
                r.size,
                r.scenarios,
                round(r.avg_runtime_ah, 3),
                round(r.avg_runtime_mh, 2),
                round(r.avg_runtime_sa, 2),
            )
            for r in rows
        ],
        title=(
            "Fig (slide 16): average design time vs "
            "current-application size"
        ),
    )
