"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table.

    Floats are shown with one decimal; everything else via ``str``.
    """
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            # Small magnitudes keep three decimals (sub-second runtimes),
            # larger ones one decimal (percentages, objective values).
            return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:.1f}"
        return str(cell)

    rendered: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
