"""Command-line entry point for the experiment harnesses.

Usage::

    python -m repro.experiments fig-quality
    python -m repro.experiments fig-runtime --sizes 10 20 --seeds 2
    python -m repro.experiments fig-future --paper-scale
    python -m repro.experiments all

``fig-quality`` and ``fig-runtime`` share their strategy runs when
invoked through ``all``, so the comparison is executed once.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.experiments.fig_future import fig_future, render as render_future
from repro.experiments.fig_quality import fig_quality, render as render_quality
from repro.experiments.fig_runtime import fig_runtime, render as render_runtime
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ExperimentConfig,
    cache_statistics,
    run_comparison,
)


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    config = (
        ExperimentConfig.paper() if args.paper_scale else ExperimentConfig()
    )
    overrides = {}
    if args.sizes:
        overrides["current_sizes"] = tuple(args.sizes)
    if args.seeds:
        overrides["seeds"] = tuple(range(1, args.seeds + 1))
    if args.existing:
        overrides["n_existing"] = args.existing
    if args.sa_iterations:
        overrides["sa_iterations"] = args.sa_iterations
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if overrides:
        config = replace(config, **overrides)
    return config


def render_cache_statistics(records) -> str:
    """The per-run evaluation-engine statistics table."""
    rows = [
        (name, evals, hits, misses, f"{rate * 100.0:.1f}%")
        for name, evals, hits, misses, rate in cache_statistics(records)
    ]
    return format_table(
        ["strategy", "evaluations", "cache hits", "cache misses", "hit rate"],
        rows,
        title="Evaluation engine statistics (all runs)",
    )


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        )
    return parsed


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the requested experiment(s), print tables."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of Pop et al., DAC 2001."
        ),
    )
    parser.add_argument(
        "figure",
        choices=["fig-quality", "fig-runtime", "fig-future", "all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's workload sizes (slow: hours of SA)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", help="current-application sizes"
    )
    parser.add_argument(
        "--seeds", type=int, help="number of random seeds per size"
    )
    parser.add_argument(
        "--existing", type=int, help="existing-application size"
    )
    parser.add_argument(
        "--sa-iterations", type=int, help="simulated-annealing iterations"
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        help=(
            "worker processes per strategy run (evaluation-engine batch "
            "parallelism; results are identical to a serial run)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="per-scenario progress"
    )
    args = parser.parse_args(argv)
    config = _build_config(args)

    if args.figure in ("fig-quality", "fig-runtime", "all"):
        records = run_comparison(config, verbose=args.verbose)
        if args.figure in ("fig-quality", "all"):
            print(render_quality(fig_quality(config, records)))
            print()
        if args.figure in ("fig-runtime", "all"):
            print(render_runtime(fig_runtime(config, records)))
            print()
        print(render_cache_statistics(records))
        print()
    if args.figure in ("fig-future", "all"):
        print(render_future(fig_future(config, verbose=args.verbose)))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
