"""Command-line entry point for the experiment harnesses.

Usage::

    python -m repro.experiments fig-quality
    python -m repro.experiments fig-runtime --sizes 10 20 --seeds 2
    python -m repro.experiments fig-future --paper-scale
    python -m repro.experiments all
    python -m repro.experiments scenarios list
    python -m repro.experiments scenarios describe hetero-speed
    python -m repro.experiments scenarios run pipeline --preset tiny --seed 3
    python -m repro.experiments scenarios portfolio uniform-baseline \
        --strategies MH SA --budget-evals 4000
    python -m repro.experiments scenarios sweep --seeds 2
    python -m repro.experiments scenarios smoke

``fig-quality`` and ``fig-runtime`` share their strategy runs when
invoked through ``all``, so the comparison is executed once.  The
``scenarios`` subcommand exposes the scenario-diversity subsystem: the
family registry (``list``/``describe``), single-family runs (``run``),
portfolio races over one shared engine (``portfolio``), the full
family x strategy stress matrix (``sweep``) and the CI determinism
checks (``smoke``).  ``--budget-evals``/``--budget-seconds``/
``--patience`` bound any search through the kernel's composable
budgets.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.experiments.fig_future import fig_future, render as render_future
from repro.experiments.fig_quality import fig_quality, render as render_quality
from repro.experiments.fig_runtime import fig_runtime, render as render_runtime
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    DEFAULT_FAMILY_SA_ITERATIONS,
    ExperimentConfig,
    cache_statistics,
    delta_statistics,
    stage_statistics,
    store_statistics,
    design_identity,
    make_budget,
    run_comparison,
    run_family_matrix,
    run_family_smoke,
    run_portfolio,
    strategy_for_family,
)
from repro.gen import families


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    config = (
        ExperimentConfig.paper() if args.paper_scale else ExperimentConfig()
    )
    overrides = {}
    if args.sizes:
        overrides["current_sizes"] = tuple(args.sizes)
    if args.seeds:
        overrides["seeds"] = tuple(range(1, args.seeds + 1))
    if args.existing:
        overrides["n_existing"] = args.existing
    if args.sa_iterations:
        overrides["sa_iterations"] = args.sa_iterations
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.no_delta:
        overrides["use_delta"] = False
    if getattr(args, "engine_core", None):
        overrides["engine_core"] = args.engine_core
    if getattr(args, "cache_store", None):
        overrides["cache_store"] = args.cache_store
    if getattr(args, "cache_path", None):
        overrides["cache_path"] = args.cache_path
    if args.budget_evals is not None:
        overrides["budget_evaluations"] = args.budget_evals
    if args.budget_seconds is not None:
        overrides["budget_seconds"] = args.budget_seconds
    if args.patience is not None:
        overrides["budget_patience"] = args.patience
    if overrides:
        config = replace(config, **overrides)
    return config


def _rate_cell(numerator: int, denominator: int) -> str:
    """A percentage cell; ``-`` when nothing was counted.

    Derived columns must never divide by a zero candidate count -- a
    run cut by ``--budget-evals 0`` (or an all-store-served warm run)
    legitimately reports zero probes on an axis.
    """
    if denominator <= 0:
        return "-"
    return f"{numerator / denominator * 100.0:.1f}%"


def render_cache_statistics(records) -> str:
    """The per-run evaluation-engine statistics table."""
    delta_rows = {
        name: (hits, fallbacks)
        for name, hits, fallbacks, _rate in delta_statistics(records)
    }
    store_rows = {
        name: (hits, misses, writes)
        for name, hits, misses, writes, _rate in store_statistics(records)
    }
    stage_rows = {
        name: (sched_ns, metrics_ns, decode_ns)
        for name, sched_ns, metrics_ns, decode_ns in stage_statistics(records)
    }
    rows = [
        (
            name,
            evals,
            hits,
            misses,
            _rate_cell(hits, hits + misses),
            delta_rows[name][0],
            delta_rows[name][1],
            _rate_cell(delta_rows[name][0], sum(delta_rows[name])),
            store_rows[name][0],
            store_rows[name][2],
            _rate_cell(
                store_rows[name][0], store_rows[name][0] + store_rows[name][1]
            ),
            f"{stage_rows[name][0] / 1e6:.1f}",
            f"{stage_rows[name][1] / 1e6:.1f}",
            f"{stage_rows[name][2] / 1e6:.1f}",
        )
        for name, evals, hits, misses, _rate in cache_statistics(records)
    ]
    return format_table(
        [
            "strategy", "evaluations", "cache hits", "cache misses",
            "hit rate", "delta hits", "delta fallbacks", "delta rate",
            "store hits", "store writes", "store rate",
            "sched ms", "metrics ms", "decode ms",
        ],
        rows,
        title="Evaluation engine statistics (all runs)",
    )


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        )
    return parsed


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value!r}"
        )
    return parsed


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    """The result-store switches, shared by every run-like subcommand."""
    parser.add_argument(
        "--cache-store", choices=["memory", "sqlite"], default="memory",
        help=(
            "evaluation result-store backend: the process-local LRU "
            "(default) or a persistent sqlite database at --cache-path "
            "that serves repeated runs warm (results are identical)"
        ),
    )
    parser.add_argument(
        "--cache-path",
        help="sqlite store path (required with --cache-store sqlite)",
    )


# ----------------------------------------------------------------------
# scenarios subcommand
# ----------------------------------------------------------------------
def _scenarios_list() -> str:
    rows = []
    for family in families.iter_families():
        all_params = [family.params(p) for p in family.preset_names]
        node_counts = sorted({p.n_nodes for p in all_params})
        nodes = (
            str(node_counts[0])
            if len(node_counts) == 1
            else f"{node_counts[0]}-{node_counts[-1]}"
        )
        shapes = "/".join(sorted({p.workload_shape for p in all_params}))
        rows.append(
            (
                family.name,
                " ".join(family.preset_names),
                nodes,
                shapes,
                family.description,
            )
        )
    return format_table(
        ["family", "presets", "nodes", "shape", "description"],
        rows,
        title=f"Scenario families ({len(rows)} registered)",
    )


def _scenarios_describe(name: str) -> str:
    return families.get_family(name).describe()


def _scenarios_run(args: argparse.Namespace) -> int:
    family = families.get_family(args.family)
    scenario = family.build(args.preset, seed=args.seed)
    if args.save:
        from repro.serialize.scenario_codec import save_scenario

        save_scenario(scenario, args.save)
        print(f"scenario saved to {args.save}")
    spec = scenario.spec()
    budget = make_budget(args.budget_evals, args.budget_seconds, args.patience)
    rows = []
    stage_lines = []
    for name in args.strategies:
        strategy = strategy_for_family(
            name,
            args.seed,
            not args.no_cache,
            args.jobs,
            args.sa_iterations,
            not args.no_delta,
            budget=budget,
            engine_core=args.engine_core,
            cache_store=args.cache_store,
            cache_path=args.cache_path,
        )
        result = strategy.design(spec)
        stage_lines.append(
            f"  {name}: sched {result.sched_ns / 1e6:.1f} ms, "
            f"metrics {result.metrics_ns / 1e6:.1f} ms, "
            f"decode {result.decode_ns / 1e6:.1f} ms"
        )
        if args.cache_store != "memory":
            stage_lines.append(
                f"  {name}: store {result.store_hits} hits / "
                f"{result.store_misses} misses / "
                f"{result.store_writes} writes, "
                f"open {result.store_open_ns / 1e6:.1f} ms, "
                f"commit {result.store_commit_ns / 1e6:.1f} ms"
            )
        search = result.search
        rows.append(
            (
                name,
                "yes" if result.valid else "NO",
                result.objective,
                result.runtime_seconds,
                result.evaluations,
                result.cache_hits,
                result.cache_misses,
                result.delta_hits,
                result.delta_fallbacks,
                result.store_hits,
                _rate_cell(
                    result.store_hits,
                    result.store_hits + result.store_misses,
                ),
                search.steps if search is not None else 0,
                search.evaluations_to_incumbent if search is not None else 0,
            )
        )
    preset = args.preset if args.preset else family.smallest_preset
    print(
        format_table(
            [
                "strategy", "valid", "objective", "runtime s",
                "evaluations", "cache hits", "cache misses",
                "delta hits", "delta fallbacks", "store hits", "store rate",
                "steps", "evals to best",
            ],
            rows,
            title=(
                f"Family {family.name} preset {preset} seed {args.seed} "
                f"(current: {scenario.current.process_count} processes)"
            ),
        )
    )
    print("engine stage times:")
    for line in stage_lines:
        print(line)
    return 0 if all(row[1] == "yes" for row in rows) else 1


def _portfolio_identity(result) -> tuple:
    """Design identity of a portfolio race's winner (determinism checks)."""
    if result.best is None:
        return ("invalid",)
    return (result.winner.name,) + design_identity(result.best)


def _scenarios_portfolio(args: argparse.Namespace) -> int:
    family = families.get_family(args.family)
    scenario = family.build(args.preset, seed=args.seed)
    spec = scenario.spec()
    member_budget = make_budget(
        args.member_budget_evals, None, args.patience
    )
    shared_budget = make_budget(args.budget_evals, args.budget_seconds, None)
    if args.shards and not args.elastic and args.budget_seconds is not None:
        print(
            "--budget-seconds needs --elastic when sharded: replay mode "
            "cannot meter wall-clock deterministically"
        )
        return 2

    def race(
        jobs: int,
        use_delta: bool,
        engine_core: Optional[str] = None,
        shards: Optional[int] = None,
        elastic: Optional[bool] = None,
    ):
        return run_portfolio(
            spec,
            args.strategies,
            seed=args.seed,
            sa_iterations=args.sa_iterations,
            member_budget=member_budget,
            shared_budget=shared_budget,
            jobs=jobs,
            use_delta=use_delta,
            engine_core=engine_core or args.engine_core,
            cache_store=args.cache_store,
            cache_path=args.cache_path,
            shards=args.shards if shards is None else shards,
            elastic=args.elastic if elastic is None else elastic,
        )

    result = race(args.jobs, not args.no_delta)
    rows = []
    for member in result.members:
        r = member.result
        search = r.search
        rows.append(
            (
                member.name,
                "yes" if r.valid else "NO",
                r.objective,
                member.evaluations_served,
                member.rounds,
                search.steps if search is not None else 0,
                search.evaluations_to_incumbent if search is not None else 0,
                (search.stop_reason if search is not None else "-") or "-",
                "WINNER" if result.winner is member else "",
            )
        )
    preset = args.preset if args.preset else family.smallest_preset
    print(
        format_table(
            [
                "member", "valid", "objective", "evals served", "rounds",
                "steps", "evals to best", "stop reason", "",
            ],
            rows,
            title=(
                f"Portfolio race on {family.name} preset {preset} "
                f"seed {args.seed} ({len(result.members)} members)"
            ),
        )
    )
    fleet = "engine"
    if getattr(result, "shards", 0):
        fleet = (
            f"fleet ({result.shards} shards, {result.mode} mode, "
            f"{result.respawns} respawns)"
        )
    print(
        f"{fleet}: {result.evaluations} evaluations, "
        f"{result.cache_hits} cache hits, {result.cache_misses} misses, "
        f"{result.delta_hits} delta hits, {result.delta_fallbacks} "
        f"fallbacks, {result.runtime_seconds:.2f}s wall"
    )
    if getattr(result, "shards", 0) and args.verbose:
        for sid, counters, busy in zip(
            result.shard_ids, result.shard_counters, result.shard_busy_seconds
        ):
            print(
                f"  shard {sid}: {counters.evaluations} evaluations, "
                f"{counters.cache_hits} cache hits, "
                f"{counters.cache_misses} misses, "
                f"{counters.delta_hits} delta hits, "
                f"{counters.delta_fallbacks} fallbacks, {busy:.2f}s busy"
            )
        steals = sum(1 for e in result.events if e.kind == "steal")
        checkpoints = sum(1 for e in result.events if e.kind == "checkpoint")
        print(
            f"  events: {steals} steals, {checkpoints} checkpoints, "
            f"{result.respawns} respawns"
        )
    if args.cache_store != "memory":
        print(
            f"store: {result.store_hits} hits, {result.store_misses} "
            f"misses, {result.store_writes} writes "
            f"(rate {_rate_cell(result.store_hits, result.store_hits + result.store_misses)})"
        )
    if not result.valid:
        print("no member found a valid design")
        return 1

    if args.check_determinism:
        reference = _portfolio_identity(result)
        other_core = "object" if args.engine_core == "array" else "array"
        checks = [
            ("repeat", lambda: race(args.jobs, not args.no_delta)),
            ("jobs=2", lambda: race(2, not args.no_delta)),
            ("delta off", lambda: race(args.jobs, False)),
            (
                f"{other_core} core",
                lambda: race(args.jobs, not args.no_delta, other_core),
            ),
        ]
        shard_axis = args.budget_seconds is None
        if shard_axis:
            # The distributed race (replay mode) must produce the same
            # winner as the in-process lockstep reference; wall-clock
            # budgets are rejected by replay mode, so this axis only
            # runs for deterministic budgets.
            checks.append((
                "shards=2",
                lambda: race(
                    args.jobs, not args.no_delta, shards=2, elastic=False
                ),
            ))
        failures = []
        for label, runner in checks:
            if _portfolio_identity(runner()) != reference:
                failures.append(label)
        if shared_budget is None:
            # Without a contended budget every member's trajectory is
            # independent, so even the racing order cannot change the
            # winning design.
            reversed_result = run_portfolio(
                spec,
                list(reversed(args.strategies)),
                seed=args.seed,
                sa_iterations=args.sa_iterations,
                member_budget=member_budget,
                shared_budget=None,
                jobs=args.jobs,
                use_delta=not args.no_delta,
                engine_core=args.engine_core,
            )
            if (
                _portfolio_identity(reversed_result)[1:]
                != reference[1:]
            ):
                failures.append("reversed racing order")
        if failures:
            print(f"DETERMINISM FAILURES: {', '.join(failures)}")
            return 1
        passed = f"repeat, jobs=2, delta off, {other_core} core"
        if shard_axis:
            passed += ", shards=2"
        if shared_budget is None:
            passed += ", reversed order"
        print(f"determinism checks passed ({passed})")
    return 0


def _scenarios_sweep(args: argparse.Namespace) -> int:
    records = run_family_matrix(
        family_names=args.families,
        preset=args.preset,
        seeds=tuple(range(1, args.seeds + 1)),
        strategies=tuple(args.strategies),
        jobs=args.jobs,
        sa_iterations=args.sa_iterations,
        use_delta=not args.no_delta,
        engine_core=args.engine_core,
        cache_store=args.cache_store,
        cache_path=args.cache_path,
        budget=make_budget(
            args.budget_evals, args.budget_seconds, args.patience
        ),
        verbose=args.verbose,
    )
    rows = []
    for record in records:
        rows.append(
            (
                record.family,
                record.preset,
                record.seed,
                record.strategy,
                "on" if record.use_cache else "off",
                "yes" if record.result.valid else "NO",
                record.result.objective,
                record.result.runtime_seconds,
            )
        )
    print(
        format_table(
            [
                "family", "preset", "seed", "strategy", "cache",
                "valid", "objective", "runtime s",
            ],
            rows,
            title="Scenario-family stress matrix",
        )
    )
    if not records:
        print("no runnable (family, seed) cells -- all skipped as "
              "unschedulable")
        return 1
    return 0 if all(r.result.valid for r in records) else 1


def _scenarios_smoke(args: argparse.Namespace) -> int:
    results = run_family_smoke(
        family_names=args.families,
        seed=args.seed,
        sa_iterations=args.sa_iterations,
        cache_store=args.cache_store,
        cache_path=args.cache_path,
        verbose=args.verbose,
    )
    rows = []
    for smoke in results:
        objectives = " ".join(
            f"{name}={value:.1f}" for name, value in smoke.objectives.items()
        )
        rows.append(
            (
                smoke.family,
                smoke.preset,
                "ok" if smoke.ok else "FAIL",
                objectives or "-",
                smoke.runtime_seconds,
                "; ".join(smoke.failures) or "-",
            )
        )
    print(
        format_table(
            ["family", "preset", "status", "objectives", "runtime s", "failures"],
            rows,
            title="Scenario-family smoke sweep (smallest preset per family)",
        )
    )
    if args.cache_store != "memory":
        # Stable per-(family, strategy) design fingerprints: the CI
        # warm-restart gate diffs this block across two runs against
        # the same store path to assert byte-identical designs.
        print("\ndesign fingerprints:")
        for smoke in results:
            for name, digest in sorted(smoke.fingerprints.items()):
                print(f"  {smoke.family}/{name}: {digest}")
        hits = sum(smoke.store_hits for smoke in results)
        misses = sum(smoke.store_misses for smoke in results)
        rate = hits / (hits + misses) if hits + misses else 0.0
        print(
            f"store totals: {hits} hits, {misses} misses "
            f"(rate {_rate_cell(hits, hits + misses)})"
        )
        if args.min_store_hit_rate is not None and rate < args.min_store_hit_rate:
            print(
                f"STORE HIT RATE {rate:.3f} below required "
                f"{args.min_store_hit_rate:.3f}"
            )
            return 1
    failed = [smoke.family for smoke in results if not smoke.ok]
    if failed:
        print(f"\nFAILED families: {', '.join(failed)}")
        return 1
    return 0


def _handle_scenarios(args: argparse.Namespace) -> int:
    if (
        getattr(args, "cache_store", "memory") == "sqlite"
        and not getattr(args, "cache_path", None)
    ):
        print(
            "error: --cache-store sqlite requires --cache-path",
            file=sys.stderr,
        )
        return 2
    if args.action == "list":
        print(_scenarios_list())
        return 0
    if args.action == "describe":
        print(_scenarios_describe(args.family))
        return 0
    if args.action == "run":
        return _scenarios_run(args)
    if args.action == "sweep":
        return _scenarios_sweep(args)
    if args.action == "portfolio":
        return _scenarios_portfolio(args)
    return _scenarios_smoke(args)


def _add_scenarios_parser(subparsers) -> None:
    scen = subparsers.add_parser(
        "scenarios",
        help="scenario-diversity subsystem: family registry and sweeps",
        description=(
            "Browse, generate and sweep the registered scenario families."
        ),
    )
    actions = scen.add_subparsers(dest="action", required=True, metavar="action")

    actions.add_parser("list", help="list the registered families")

    describe = actions.add_parser(
        "describe", help="show one family's presets and parameters"
    )
    describe.add_argument("family", help="family name (see: scenarios list)")

    run = actions.add_parser(
        "run", help="run strategies on one generated family scenario"
    )
    run.add_argument("family", help="family name (see: scenarios list)")
    run.add_argument("--preset", help="preset name (default: smallest)")
    run.add_argument("--seed", type=int, default=1, help="scenario seed")
    run.add_argument(
        "--strategies", nargs="+", default=["AH", "MH", "SA"],
        help="strategies to run",
    )
    run.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="evaluation-engine worker processes",
    )
    run.add_argument(
        "--sa-iterations", type=int, default=DEFAULT_FAMILY_SA_ITERATIONS,
        help="simulated-annealing iterations",
    )
    run.add_argument(
        "--no-cache", action="store_true", help="disable evaluation caching"
    )
    run.add_argument(
        "--no-delta",
        action="store_true",
        help="disable incremental (move-aware) evaluation",
    )
    run.add_argument(
        "--engine-core", choices=["array", "object"], default="array",
        help=(
            "scheduler core: the structure-of-arrays kernel (default) or "
            "the pinned object-graph reference (results are identical)"
        ),
    )
    run.add_argument(
        "--budget-evals", type=_nonnegative_int,
        help=(
            "evaluation cap per search phase (MH: the descent; SA: "
            "probe, walk and each polish descent individually)"
        ),
    )
    run.add_argument(
        "--budget-seconds", type=float,
        help="per-strategy wall-clock budget (machine-dependent)",
    )
    run.add_argument(
        "--patience", type=_positive_int,
        help="stop a search after this many steps without improvement",
    )
    run.add_argument("--save", help="also save the scenario JSON to this path")
    _add_store_options(run)

    portfolio = actions.add_parser(
        "portfolio",
        help=(
            "race a strategy portfolio over one shared engine "
            "(deterministic lockstep, shared budget, best incumbent wins)"
        ),
    )
    portfolio.add_argument("family", help="family name (see: scenarios list)")
    portfolio.add_argument("--preset", help="preset name (default: smallest)")
    portfolio.add_argument("--seed", type=int, default=1, help="scenario seed")
    portfolio.add_argument(
        "--strategies", nargs="+", default=["MH", "SA"],
        help="racing members, in racing (= tie-breaking) order",
    )
    portfolio.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="shared-engine worker processes",
    )
    portfolio.add_argument(
        "--sa-iterations", type=int, default=DEFAULT_FAMILY_SA_ITERATIONS,
        help="simulated-annealing iterations",
    )
    portfolio.add_argument(
        "--budget-evals", type=_nonnegative_int,
        help="shared racing budget in engine evaluations (all members)",
    )
    portfolio.add_argument(
        "--budget-seconds", type=float,
        help="shared racing wall-clock budget (machine-dependent)",
    )
    portfolio.add_argument(
        "--member-budget-evals", type=_positive_int,
        help="per-member evaluation budget (each member's own cap)",
    )
    portfolio.add_argument(
        "--patience", type=_positive_int,
        help="per-member patience (steps without improvement)",
    )
    portfolio.add_argument(
        "--no-delta",
        action="store_true",
        help="disable incremental (move-aware) evaluation",
    )
    portfolio.add_argument(
        "--engine-core", choices=["array", "object"], default="array",
        help=(
            "scheduler core: the structure-of-arrays kernel (default) or "
            "the pinned object-graph reference (results are identical)"
        ),
    )
    portfolio.add_argument(
        "--shards", type=_nonnegative_int, default=0,
        help=(
            "race the portfolio across this many worker processes "
            "(0 = in-process lockstep reference; replay mode keeps the "
            "winner byte-identical to the lockstep race)"
        ),
    )
    portfolio.add_argument(
        "--elastic",
        action="store_true",
        help=(
            "with --shards: elastic mode -- arrival-order budget "
            "grants, wall-clock budgets and dynamic work-stealing "
            "(reproducible in aggregate, not byte-for-byte)"
        ),
    )
    portfolio.add_argument(
        "-v", "--verbose",
        action="store_true",
        help="with --shards: per-shard engine breakdown and race events",
    )
    portfolio.add_argument(
        "--check-determinism",
        action="store_true",
        help=(
            "re-race with jobs=2, delta off, the other scheduler core, "
            "shards=2, and (without a shared budget) reversed member "
            "order; fail unless the winning design is byte-identical "
            "(the CI smoke gate)"
        ),
    )
    _add_store_options(portfolio)

    sweep = actions.add_parser(
        "sweep",
        help="stress matrix: every strategy x every family, cache on/off",
    )
    sweep.add_argument(
        "--families", nargs="+", help="families to sweep (default: all)"
    )
    sweep.add_argument("--preset", help="preset per family (default: smallest)")
    sweep.add_argument(
        "--seeds", type=_positive_int, default=1,
        help="number of scenario seeds per family",
    )
    sweep.add_argument(
        "--strategies", nargs="+", default=["AH", "MH", "SA"],
        help="strategies to run",
    )
    sweep.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="evaluation-engine worker processes",
    )
    sweep.add_argument(
        "--sa-iterations", type=int, default=DEFAULT_FAMILY_SA_ITERATIONS,
        help="simulated-annealing iterations",
    )
    sweep.add_argument(
        "--no-delta",
        action="store_true",
        help="disable incremental (move-aware) evaluation",
    )
    sweep.add_argument(
        "--engine-core", choices=["array", "object"], default="array",
        help=(
            "scheduler core: the structure-of-arrays kernel (default) or "
            "the pinned object-graph reference (results are identical)"
        ),
    )
    sweep.add_argument(
        "--budget-evals", type=_nonnegative_int,
        help=(
            "evaluation cap per search phase (MH: the descent; SA: "
            "probe, walk and each polish descent individually)"
        ),
    )
    sweep.add_argument(
        "--budget-seconds", type=float,
        help="per-strategy wall-clock budget (machine-dependent)",
    )
    sweep.add_argument(
        "--patience", type=_positive_int,
        help="stop a search after this many steps without improvement",
    )
    sweep.add_argument(
        "-v", "--verbose", action="store_true", help="per-run progress"
    )
    _add_store_options(sweep)

    smoke = actions.add_parser(
        "smoke",
        help=(
            "CI checks: smallest preset per family must run AH/MH/SA to "
            "valid, deterministic designs and round-trip the codec"
        ),
    )
    smoke.add_argument(
        "--families", nargs="+", help="families to check (default: all)"
    )
    smoke.add_argument("--seed", type=int, default=1, help="scenario seed")
    smoke.add_argument(
        "--sa-iterations", type=int, default=DEFAULT_FAMILY_SA_ITERATIONS,
        help="simulated-annealing iterations",
    )
    smoke.add_argument(
        "-v", "--verbose", action="store_true", help="per-family progress"
    )
    _add_store_options(smoke)
    smoke.add_argument(
        "--min-store-hit-rate", type=float,
        help=(
            "fail unless the sweep's aggregate store hit rate reaches "
            "this fraction (the CI warm-restart gate's second run)"
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the requested experiment(s), print tables."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of Pop et al., DAC 2001, "
            "and sweep the scenario-diversity families."
        ),
    )
    subparsers = parser.add_subparsers(
        dest="command", required=True, metavar="command"
    )

    figure_options = argparse.ArgumentParser(add_help=False)
    figure_options.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's workload sizes (slow: hours of SA)",
    )
    figure_options.add_argument(
        "--sizes", type=int, nargs="+", help="current-application sizes"
    )
    figure_options.add_argument(
        "--seeds", type=int, help="number of random seeds per size"
    )
    figure_options.add_argument(
        "--existing", type=int, help="existing-application size"
    )
    figure_options.add_argument(
        "--sa-iterations", type=int, help="simulated-annealing iterations"
    )
    figure_options.add_argument(
        "--jobs",
        type=_positive_int,
        help=(
            "worker processes per strategy run (evaluation-engine batch "
            "parallelism; results are identical to a serial run)"
        ),
    )
    figure_options.add_argument(
        "--no-delta",
        action="store_true",
        help=(
            "disable incremental (move-aware) evaluation; every candidate "
            "is rescheduled from scratch (results are identical)"
        ),
    )
    figure_options.add_argument(
        "--engine-core", choices=["array", "object"], default="array",
        help=(
            "scheduler core: the structure-of-arrays kernel (default) or "
            "the pinned object-graph reference (results are identical)"
        ),
    )
    _add_store_options(figure_options)
    figure_options.add_argument(
        "--budget-evals", type=_nonnegative_int,
        help=(
            "evaluation cap per search phase (MH: the descent; SA: "
            "probe, walk and each polish descent individually)"
        ),
    )
    figure_options.add_argument(
        "--budget-seconds", type=float,
        help="per-strategy wall-clock budget (machine-dependent)",
    )
    figure_options.add_argument(
        "--patience", type=_positive_int,
        help="stop a search after this many steps without improvement",
    )
    figure_options.add_argument(
        "-v", "--verbose", action="store_true", help="per-scenario progress"
    )
    for figure in ("fig-quality", "fig-runtime", "fig-future", "all"):
        subparsers.add_parser(
            figure,
            parents=[figure_options],
            help=f"regenerate {figure}" if figure != "all" else "everything",
        )

    _add_scenarios_parser(subparsers)

    args = parser.parse_args(argv)
    if args.command == "scenarios":
        return _handle_scenarios(args)

    config = _build_config(args)
    if args.command in ("fig-quality", "fig-runtime", "all"):
        records = run_comparison(config, verbose=args.verbose)
        if args.command in ("fig-quality", "all"):
            print(render_quality(fig_quality(config, records)))
            print()
        if args.command in ("fig-runtime", "all"):
            print(render_runtime(fig_runtime(config, records)))
            print()
        print(render_cache_statistics(records))
        print()
    if args.command in ("fig-future", "all"):
        print(render_future(fig_future(config, verbose=args.verbose)))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
