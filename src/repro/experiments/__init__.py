"""Experiment harnesses regenerating the paper's figures.

Three experiments (slides 15-17):

* :mod:`~repro.experiments.fig_quality` -- average percentage deviation
  of AH's and MH's objective from the near-optimal SA reference, as a
  function of current-application size.
* :mod:`~repro.experiments.fig_runtime` -- average design runtime of
  AH, MH and SA over the same scenarios.
* :mod:`~repro.experiments.fig_future` -- percentage of concrete future
  applications that can still be mapped after the current application
  was designed with AH versus MH.

Each harness is exposed both as a library function returning structured
rows and through the CLI (``python -m repro.experiments <figure>`` or
the ``repro-experiments`` console script).  Defaults are laptop-scale;
``--paper-scale`` restores the paper's sizes (existing 400 processes,
current 40-320, future 80).
"""

from repro.experiments.runner import (
    ComparisonRecord,
    ExperimentConfig,
    run_comparison,
)
from repro.experiments.fig_quality import QualityRow, fig_quality
from repro.experiments.fig_runtime import RuntimeRow, fig_runtime
from repro.experiments.fig_future import FutureRow, fig_future
from repro.experiments.reporting import format_table

__all__ = [
    "ExperimentConfig",
    "ComparisonRecord",
    "run_comparison",
    "QualityRow",
    "fig_quality",
    "RuntimeRow",
    "fig_runtime",
    "FutureRow",
    "fig_future",
    "format_table",
]
