"""Hyperperiod and periodic-window arithmetic.

The static cyclic schedule of the paper spans one *hyperperiod* -- the
least common multiple of all application periods.  The second design
criterion partitions that hyperperiod into windows of length ``T_min``.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.utils.intervals import Interval


def hyperperiod(periods: Iterable[int]) -> int:
    """Least common multiple of a non-empty collection of periods.

    Parameters
    ----------
    periods:
        Positive integer periods (time units).

    Raises
    ------
    ValueError
        If the collection is empty or contains a non-positive period.
    """
    values = list(periods)
    if not values:
        raise ValueError("hyperperiod of an empty period set is undefined")
    result = 1
    for p in values:
        if p <= 0:
            raise ValueError(f"periods must be positive, got {p}")
        result = math.lcm(result, p)
    return result


def periodic_windows(horizon: int, window: int) -> List[Interval]:
    """Partition ``[0, horizon)`` into consecutive windows of length ``window``.

    The last window is truncated if ``window`` does not divide
    ``horizon`` (the paper's generators always pick ``T_min`` dividing
    the hyperperiod, but the metrics stay well defined either way).

    Raises
    ------
    ValueError
        If ``horizon`` or ``window`` is non-positive.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    out: List[Interval] = []
    start = 0
    while start < horizon:
        out.append(Interval(start, min(start + window, horizon)))
        start += window
    return out
