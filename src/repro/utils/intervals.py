"""Half-open integer intervals and interval-set arithmetic.

Time in this library is discrete (integer "time units").  A processor's
busy time, the gaps (slack) between reservations, and T_min windows are
all represented as half-open intervals ``[start, end)``.

:class:`IntervalSet` maintains a sorted list of pairwise-disjoint,
non-adjacent intervals and supports the operations the scheduler and
the design metrics need:

* inserting busy time (with overlap detection),
* computing the complement (slack) within a horizon,
* intersecting with a window (for the second design criterion),
* measuring total length.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open integer interval ``[start, end)``.

    Attributes
    ----------
    start:
        Inclusive lower bound.
    end:
        Exclusive upper bound.  Must satisfy ``end >= start``; an
        interval with ``end == start`` is empty.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end ({self.end}) must be >= start ({self.start})"
            )

    @property
    def length(self) -> int:
        """Number of time units covered by the interval."""
        return self.end - self.start

    @property
    def empty(self) -> bool:
        """True when the interval covers no time units."""
        return self.end == self.start

    def contains(self, t: int) -> bool:
        """Whether time point ``t`` lies inside ``[start, end)``."""
        return self.start <= t < self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two half-open intervals share any time unit."""
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Interval") -> "Interval":
        """The (possibly empty) intersection with ``other``."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi < lo:
            return Interval(lo, lo)
        return Interval(lo, hi)

    def shift(self, delta: int) -> "Interval":
        """A copy of the interval translated by ``delta`` time units."""
        return Interval(self.start + delta, self.end + delta)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"


class IntervalSet:
    """A set of pairwise-disjoint half-open intervals, kept sorted.

    Adjacent intervals (``a.end == b.start``) are merged on insertion
    so the set is always in canonical form.  The class is the common
    representation for *busy time* on a resource and -- through
    :meth:`complement` -- for the *slack* the design metrics consume.
    """

    def __init__(self, intervals: Optional[Iterable[Interval]] = None) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        if intervals is not None:
            for iv in intervals:
                self.add(iv)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        for s, e in zip(self._starts, self._ends):
            yield Interval(s, e)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(str(iv) for iv in self)
        return f"IntervalSet({body})"

    def copy(self) -> "IntervalSet":
        """An independent copy of the set."""
        out = IntervalSet()
        out._starts = list(self._starts)
        out._ends = list(self._ends)
        return out

    @classmethod
    def from_busy_runs(cls, runs: Iterable[Tuple[int, int]]) -> "IntervalSet":
        """Build a set from ``(start, end)`` busy runs in one pass.

        The bulk analogue of repeated :meth:`add_busy` calls: runs are
        sorted, adjacency is merged, and any overlap raises.  Used by
        the delta evaluator to reconstruct a node's busy set from
        replayed reservations without paying a bisect-and-splice per
        insertion.

        Raises
        ------
        ValueError
            If two runs overlap (reservations must never collide).
        """
        out = cls()
        starts = out._starts
        ends = out._ends
        for start, end in sorted(runs):
            if end <= start:
                continue
            if ends and start < ends[-1]:
                raise ValueError(
                    f"interval [{start}, {end}) overlaps existing busy time"
                )
            if ends and start == ends[-1]:
                ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
        return out

    def intervals(self) -> List[Interval]:
        """The canonical sorted list of disjoint intervals."""
        return list(self)

    def as_pairs(self) -> List[Tuple[int, int]]:
        """The intervals as plain ``(start, end)`` tuples.

        The allocation-free view for hot paths (metric extraction)
        that would otherwise build one :class:`Interval` object per
        busy run per evaluation.
        """
        return list(zip(self._starts, self._ends))

    @property
    def total_length(self) -> int:
        """Sum of the lengths of all intervals in the set."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, interval: Interval) -> None:
        """Insert ``interval``, merging with overlapping/adjacent ones."""
        if interval.empty:
            return
        start, end = interval.start, interval.end
        # Find the window of existing intervals that touch [start, end].
        lo = bisect.bisect_left(self._ends, start)
        hi = bisect.bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]

    def add_busy(self, interval: Interval) -> None:
        """Insert ``interval`` asserting it does not overlap existing time.

        This is the scheduler's insertion primitive: reservations must
        never collide.  Adjacency is allowed (back-to-back execution).

        Raises
        ------
        ValueError
            If the new interval overlaps an interval already in the set.
        """
        if interval.empty:
            self.add(interval)
            return
        if self.overlaps(interval):
            raise ValueError(f"interval {interval} overlaps existing busy time")
        self.add(interval)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def overlaps(self, interval: Interval) -> bool:
        """Whether ``interval`` shares any time unit with the set."""
        if interval.empty:
            return False
        idx = bisect.bisect_right(self._starts, interval.start) - 1
        if idx >= 0 and self._ends[idx] > interval.start:
            return True
        idx += 1
        return idx < len(self._starts) and self._starts[idx] < interval.end

    def contains_point(self, t: int) -> bool:
        """Whether time point ``t`` is covered by the set."""
        idx = bisect.bisect_right(self._starts, t) - 1
        return idx >= 0 and t < self._ends[idx]

    def complement(self, horizon: Interval) -> "IntervalSet":
        """The gaps of the set inside ``horizon`` -- i.e. the *slack*.

        Parameters
        ----------
        horizon:
            The window within which gaps are reported, typically
            ``[0, hyperperiod)``.
        """
        out = IntervalSet()
        cursor = horizon.start
        for s, e in zip(self._starts, self._ends):
            if e <= horizon.start:
                continue
            if s >= horizon.end:
                break
            if s > cursor:
                out.add(Interval(cursor, min(s, horizon.end)))
            cursor = max(cursor, e)
        if cursor < horizon.end:
            out.add(Interval(cursor, horizon.end))
        return out

    def clipped(self, window: Interval) -> "IntervalSet":
        """The intersection of the set with ``window``."""
        out = IntervalSet()
        for s, e in zip(self._starts, self._ends):
            lo = max(s, window.start)
            hi = min(e, window.end)
            if hi > lo:
                out.add(Interval(lo, hi))
        return out

    def length_within(self, window: Interval) -> int:
        """Total covered time inside ``window``."""
        total = 0
        for s, e in zip(self._starts, self._ends):
            lo = max(s, window.start)
            hi = min(e, window.end)
            if hi > lo:
                total += hi - lo
        return total

    def earliest_fit(self, duration: int, not_before: int = 0) -> Optional[int]:
        """Earliest start >= ``not_before`` of a free gap of ``duration``.

        The set is interpreted as *busy* time; a fit is a stretch of
        ``duration`` time units not covered by any interval.  Returns
        ``None`` never -- after the last busy interval there is always
        room -- unless ``duration`` is negative, which raises.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        cursor = not_before
        idx = bisect.bisect_right(self._starts, cursor) - 1
        if idx >= 0 and self._ends[idx] > cursor:
            cursor = self._ends[idx]
        idx += 1
        while idx < len(self._starts):
            if self._starts[idx] - cursor >= duration:
                return cursor
            cursor = max(cursor, self._ends[idx])
            idx += 1
        return cursor

    def gaps_as_tuples(self, horizon: Interval) -> List[Tuple[int, int]]:
        """Convenience: slack gaps inside ``horizon`` as (start, end) pairs."""
        return [(iv.start, iv.end) for iv in self.complement(horizon)]
