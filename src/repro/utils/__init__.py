"""Shared utilities for the :mod:`repro` package.

This subpackage hosts small, dependency-free building blocks used by
every other layer of the library:

* :mod:`repro.utils.intervals` -- half-open integer intervals and
  interval-set arithmetic (the representation of both busy time on
  processors and slack gaps between reservations).
* :mod:`repro.utils.timemath` -- hyperperiod (lcm) computation and the
  partitioning of a schedule horizon into periodic windows.
* :mod:`repro.utils.rng` -- deterministic random-number helpers so
  every experiment is reproducible from an integer seed.
"""

from repro.utils.errors import (
    ReproError,
    InvalidModelError,
    MappingError,
    SchedulingError,
)
from repro.utils.intervals import Interval, IntervalSet
from repro.utils.timemath import hyperperiod, periodic_windows
from repro.utils.rng import make_rng, spawn_rngs

__all__ = [
    "ReproError",
    "InvalidModelError",
    "MappingError",
    "SchedulingError",
    "Interval",
    "IntervalSet",
    "hyperperiod",
    "periodic_windows",
    "make_rng",
    "spawn_rngs",
]
