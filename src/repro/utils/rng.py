"""Deterministic random-number helpers.

Every stochastic component of the library (workload generation,
simulated annealing, future-application sampling) takes either an
integer seed or a ``numpy.random.Generator``.  These helpers normalize
between the two and derive independent child streams so that, e.g.,
changing the number of SA iterations does not perturb the workload
generator.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``None`` yields an OS-seeded generator, an ``int`` a deterministic
    one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses numpy's ``SeedSequence.spawn`` so child streams are stable
    regardless of how many draws the parent later performs.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
