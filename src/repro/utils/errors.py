"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch
everything the library raises with a single ``except`` clause while
still being able to distinguish model problems from algorithmic
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class InvalidModelError(ReproError):
    """An application or architecture model violates a structural rule.

    Examples: a process graph with a cycle, a deadline larger than the
    period, a process with an empty set of allowed nodes, a message
    whose endpoints belong to different process graphs.
    """


class MappingError(ReproError):
    """A mapping is structurally invalid or cannot be constructed.

    Examples: a process mapped to a node not in its allowed set, a
    strategy that cannot find any valid mapping for the current
    application (requirement (a) of the paper is unsatisfiable).
    """


class SchedulingError(ReproError):
    """A schedule could not be constructed or violates its constraints.

    Examples: a deadline miss during static cyclic scheduling, a
    message that does not fit in any TDMA slot occurrence before its
    deadline, an attempt to place a process on top of a frozen
    reservation.
    """
