"""Design analysis reports.

Turns a finished design into the summary a systems engineer asks for
first: per-node utilization and slack shape, per-graph worst-case
response times and laxity, bus load, and (when a future
characterization is supplied) the paper's design metrics -- all in one
structured :class:`DesignReport` with a plain-text renderer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.future import FutureCharacterization
from repro.core.metrics import DesignMetrics, ObjectiveWeights, evaluate_design
from repro.core.slack import slack_fragmentation
from repro.model.application import Application
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import SchedulingError


@dataclass(frozen=True)
class NodeReport:
    """Load and slack shape of one processing node."""

    node_id: str
    utilization: float
    total_slack: int
    gap_count: int
    largest_gap: int
    fragmentation: float


@dataclass(frozen=True)
class GraphReport:
    """Timing outcome of one process graph across its instances.

    Attributes
    ----------
    worst_response:
        Maximum over instances of (last finish - release).
    laxity:
        ``deadline - worst_response``; non-negative in a valid design.
    """

    application: str
    graph: str
    period: int
    deadline: int
    instances: int
    worst_response: int
    laxity: int


@dataclass(frozen=True)
class BusReport:
    """Aggregate TDMA bus statistics over the horizon."""

    round_length: int
    rounds: int
    total_capacity: int
    used_bytes: int
    messages: int

    @property
    def utilization(self) -> float:
        if self.total_capacity == 0:
            return 0.0
        return self.used_bytes / self.total_capacity


@dataclass
class DesignReport:
    """Complete analysis of one design."""

    horizon: int
    nodes: List[NodeReport]
    graphs: List[GraphReport]
    bus: BusReport
    metrics: Optional[DesignMetrics] = None


def analyze_design(
    schedule: SystemSchedule,
    applications: Iterable[Application],
    future: Optional[FutureCharacterization] = None,
    weights: Optional[ObjectiveWeights] = None,
) -> DesignReport:
    """Analyze ``schedule`` against the applications it implements.

    Raises
    ------
    repro.utils.errors.SchedulingError
        If a process instance expected from the applications is absent
        (analysis only makes sense on complete designs).
    """
    frag = slack_fragmentation(schedule)
    nodes = [
        NodeReport(
            node_id=node_id,
            utilization=schedule.utilization(node_id),
            total_slack=schedule.total_slack(node_id),
            gap_count=frag[node_id].gap_count,
            largest_gap=frag[node_id].largest_gap,
            fragmentation=frag[node_id].fragmentation,
        )
        for node_id in schedule.architecture.node_ids
    ]

    graphs: List[GraphReport] = []
    for app in applications:
        for graph in app.graphs:
            instances = schedule.horizon // graph.period
            worst = 0
            for k in range(instances):
                release = k * graph.period
                for proc in graph.processes:
                    entry = schedule.entry_of(proc.id, k)
                    if entry is None:
                        raise SchedulingError(
                            f"process {proc.id!r} instance {k} is not in the "
                            f"schedule; cannot analyze an incomplete design"
                        )
                    worst = max(worst, entry.end - release)
            graphs.append(
                GraphReport(
                    application=app.name,
                    graph=graph.name,
                    period=graph.period,
                    deadline=graph.deadline,
                    instances=instances,
                    worst_response=worst,
                    laxity=graph.deadline - worst,
                )
            )

    bus = schedule.bus
    total_capacity = bus.bus.total_capacity_within(bus.horizon)
    bus_report = BusReport(
        round_length=bus.bus.round_length,
        rounds=bus.rounds,
        total_capacity=total_capacity,
        used_bytes=total_capacity - bus.total_free_bytes(),
        messages=sum(1 for _ in bus.all_entries()),
    )

    metrics = None
    if future is not None:
        metrics = evaluate_design(schedule, future, weights)

    return DesignReport(
        horizon=schedule.horizon,
        nodes=nodes,
        graphs=graphs,
        bus=bus_report,
        metrics=metrics,
    )


def render_report(report: DesignReport) -> str:
    """Plain-text rendering of a :class:`DesignReport`."""
    lines: List[str] = [f"design report (horizon {report.horizon} tu)"]
    lines.append("nodes:")
    for node in report.nodes:
        lines.append(
            f"  {node.node_id}: util {node.utilization:5.1%}  "
            f"slack {node.total_slack} tu in {node.gap_count} gaps "
            f"(largest {node.largest_gap}, fragmentation "
            f"{node.fragmentation:.2f})"
        )
    lines.append("graphs:")
    for graph in report.graphs:
        lines.append(
            f"  {graph.application}/{graph.graph}: period {graph.period}, "
            f"worst response {graph.worst_response}/{graph.deadline} "
            f"(laxity {graph.laxity}) over {graph.instances} instance(s)"
        )
    bus = report.bus
    lines.append(
        f"bus: {bus.messages} message placements, "
        f"{bus.used_bytes}/{bus.total_capacity} B used "
        f"({bus.utilization:.1%}) across {bus.rounds} rounds of "
        f"{bus.round_length} tu"
    )
    if report.metrics is not None:
        lines.append(f"metrics: {report.metrics.summary()}")
    return "\n".join(lines)
