"""Random process-graph generation: layered DAGs plus shaped workloads.

The default generator builds TGFF-style *layered* DAGs: processes are
dealt into ``depth`` layers, and every process in layer ``i > 0``
receives at least one edge from an earlier layer, which guarantees a
connected-ish DAG with controllable depth -- the structure TGFF (Task
Graphs For Free) produces and the co-synthesis literature, including
the paper, evaluates on.

Two further *workload shapes* reuse the same process machinery with
deterministic topologies (see :data:`GRAPH_SHAPES` and
:func:`make_process_graph`):

* ``pipeline`` -- a single chain ``P0 -> P1 -> ... -> Pn``, the
  streaming/signal-processing workload where every process has exactly
  one predecessor;
* ``forkjoin`` -- a source process fans out into parallel branch
  chains that join in a sink, the data-parallel workload whose
  schedulability hinges on the join synchronization.

WCET heterogeneity composes two sources: each graph draws a random
per-node speed factor (the paper's model), and each
:class:`~repro.model.architecture.Node` contributes its declared
``speed`` (architecture-level heterogeneity; the default ``1.0`` is a
no-op).  A random subset of nodes is allowed per process (always at
least one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.model.architecture import Architecture
from repro.model.process_graph import Message, Process, ProcessGraph
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class GraphParams:
    """Knobs of the random graph generator.

    Attributes
    ----------
    wcet_range:
        Inclusive range of base (pre-heterogeneity) execution times.
    msg_size_range:
        Inclusive range of message sizes in bytes.
    extra_edge_prob:
        Probability of each optional extra forward edge beyond the
        spanning ones.
    allowed_node_prob:
        Probability that a node (beyond the guaranteed first) is in a
        process's allowed set.
    het_range:
        Node speed-factor range: a node with factor ``f`` runs a
        process of base time ``w`` in ``round(w * f)`` time units.
    max_depth:
        Upper bound on the number of layers (the generator also keeps
        depth <= process count).
    """

    wcet_range: Tuple[int, int] = (10, 40)
    msg_size_range: Tuple[int, int] = (2, 8)
    extra_edge_prob: float = 0.25
    allowed_node_prob: float = 0.75
    het_range: Tuple[float, float] = (0.5, 1.5)
    max_depth: int = 5


def _node_speed_factors(
    architecture: Architecture, params: GraphParams, rng: np.random.Generator
) -> Dict[str, float]:
    """Per-node WCET scale factors drawn once per graph.

    The random per-graph factor (``het_range``) is divided by the
    node's declared :attr:`~repro.model.architecture.Node.speed`, so a
    node twice as fast runs the same base WCET in half the time.  The
    homogeneous default (``speed == 1.0``) divides by one exactly and
    reproduces the historical factors bit-for-bit.
    """
    lo, hi = params.het_range
    return {
        node_id: float(rng.uniform(lo, hi)) / architecture.speed_of(node_id)
        for node_id in architecture.node_ids
    }


def _add_random_processes(
    graph: ProcessGraph,
    prefix: str,
    n_processes: int,
    architecture: Architecture,
    params: GraphParams,
    gen: np.random.Generator,
    wcet_sampler: Optional[Callable[[np.random.Generator], int]],
    speed: Dict[str, float],
) -> None:
    """Deal ``n_processes`` heterogeneous-WCET processes into ``graph``.

    Shared by every workload shape; the draw order (WCET, first allowed
    node, per-node membership) is part of the seeded-reproducibility
    contract and must not change.
    """
    node_ids = architecture.node_ids
    lo_w, hi_w = params.wcet_range
    if wcet_sampler is None:
        wcet_sampler = lambda g: int(g.integers(lo_w, hi_w + 1))
    for i in range(n_processes):
        base = int(wcet_sampler(gen))
        if base <= 0:
            raise ValueError("wcet_sampler must return positive values")
        # Guarantee at least one allowed node, then add others randomly.
        first = node_ids[int(gen.integers(len(node_ids)))]
        allowed = {first}
        for node_id in node_ids:
            if node_id != first and gen.random() < params.allowed_node_prob:
                allowed.add(node_id)
        wcet = {
            node_id: max(1, round(base * speed[node_id]))
            for node_id in sorted(allowed)
        }
        graph.add_process(Process(f"{prefix}.P{i}", wcet))


def _shaped_graph_base(
    name: str,
    n_processes: int,
    period: int,
    architecture: Architecture,
    rng: SeedLike,
    params: Optional[GraphParams],
    deadline: Optional[int],
    id_prefix: Optional[str],
    wcet_sampler: Optional[Callable[[np.random.Generator], int]],
    msg_size_sampler: Optional[Callable[[np.random.Generator], int]],
) -> Tuple[
    np.random.Generator, GraphParams, ProcessGraph, Callable[[int, int], None]
]:
    """Shared setup of every shape generator: processes, no edges yet.

    Validates the count, normalizes rng/params/prefix, draws the speed
    factors and the processes, and returns ``(gen, params, graph,
    add_edge)`` for the shape to lay its topology with.  Keeping this
    in one place keeps the draw order -- part of the
    seeded-reproducibility contract -- identical across shapes by
    construction.
    """
    if n_processes <= 0:
        raise ValueError("n_processes must be positive")
    gen = make_rng(rng)
    if params is None:
        params = GraphParams()
    prefix = id_prefix if id_prefix is not None else name
    graph = ProcessGraph(name, period, deadline)
    speed = _node_speed_factors(architecture, params, gen)
    _add_random_processes(
        graph, prefix, n_processes, architecture, params, gen,
        wcet_sampler, speed,
    )
    add_edge = _message_adder(graph, prefix, params, gen, msg_size_sampler)
    return gen, params, graph, add_edge


def _message_adder(
    graph: ProcessGraph,
    prefix: str,
    params: GraphParams,
    gen: np.random.Generator,
    msg_size_sampler: Optional[Callable[[np.random.Generator], int]],
) -> Callable[[int, int], None]:
    """A closure adding one sized message per (src, dst) process pair."""
    lo_m, hi_m = params.msg_size_range
    if msg_size_sampler is None:
        msg_size_sampler = lambda g: int(g.integers(lo_m, hi_m + 1))
    counter = {"n": 0}

    def add_edge(src_idx: int, dst_idx: int) -> None:
        size = int(msg_size_sampler(gen))
        if size <= 0:
            raise ValueError("msg_size_sampler must return positive values")
        graph.add_message(
            Message(
                f"{prefix}.m{counter['n']}",
                f"{prefix}.P{src_idx}",
                f"{prefix}.P{dst_idx}",
                size,
            )
        )
        counter["n"] += 1

    return add_edge


def random_process_graph(
    name: str,
    n_processes: int,
    period: int,
    architecture: Architecture,
    rng: SeedLike = None,
    params: Optional[GraphParams] = None,
    deadline: Optional[int] = None,
    id_prefix: Optional[str] = None,
    wcet_sampler: Optional[Callable[[np.random.Generator], int]] = None,
    msg_size_sampler: Optional[Callable[[np.random.Generator], int]] = None,
) -> ProcessGraph:
    """Generate one random process graph.

    Parameters
    ----------
    name:
        Graph name (also the default id prefix for its processes).
    n_processes:
        Number of processes; must be positive.
    period:
        The graph's release period (deadline defaults to it).
    architecture:
        Supplies the node set for WCET tables.
    rng:
        Seed or generator.
    params:
        Structural knobs; defaults are scenario-friendly.
    deadline:
        Relative deadline; defaults to ``period``.
    id_prefix:
        Prefix of process/message ids, defaults to ``name``.
    wcet_sampler:
        Optional override drawing base execution times (used to build
        concrete future applications from the characterized WCET
        distribution); defaults to uniform over ``params.wcet_range``.
    msg_size_sampler:
        Optional override drawing message sizes; defaults to uniform
        over ``params.msg_size_range``.
    """
    gen, params, graph, add_edge = _shaped_graph_base(
        name, n_processes, period, architecture, rng, params, deadline,
        id_prefix, wcet_sampler, msg_size_sampler,
    )

    # --- layered DAG edges ----------------------------------------------
    depth = int(min(params.max_depth, max(1, round(np.sqrt(n_processes)))))
    layer_of = [int(gen.integers(depth)) for _ in range(n_processes)]
    # Layer 0 must be populated so sources exist.
    layer_of[0] = 0
    order = sorted(range(n_processes), key=lambda i: (layer_of[i], i))

    for pos, idx in enumerate(order):
        if layer_of[idx] == 0 or pos == 0:
            continue
        earlier = [j for j in order[:pos] if layer_of[j] < layer_of[idx]]
        if not earlier:
            continue
        # Spanning edge: every non-root process has a parent.
        parent = earlier[int(gen.integers(len(earlier)))]
        add_edge(parent, idx)
        # Optional extra fan-in.
        for j in earlier:
            if j != parent and gen.random() < params.extra_edge_prob:
                add_edge(j, idx)

    graph.validate()
    return graph


def pipeline_process_graph(
    name: str,
    n_processes: int,
    period: int,
    architecture: Architecture,
    rng: SeedLike = None,
    params: Optional[GraphParams] = None,
    deadline: Optional[int] = None,
    id_prefix: Optional[str] = None,
    wcet_sampler: Optional[Callable[[np.random.Generator], int]] = None,
    msg_size_sampler: Optional[Callable[[np.random.Generator], int]] = None,
) -> ProcessGraph:
    """A pipeline chain ``P0 -> P1 -> ... -> P(n-1)``.

    Processes and message sizes are drawn exactly like the layered
    generator's; only the topology is fixed.  Pipelines maximize the
    (communication-inclusive) critical path for a given process count,
    which stresses message scheduling on the TDMA bus far harder than
    layered DAGs of the same size.
    """
    _, _, graph, add_edge = _shaped_graph_base(
        name, n_processes, period, architecture, rng, params, deadline,
        id_prefix, wcet_sampler, msg_size_sampler,
    )
    for i in range(1, n_processes):
        add_edge(i - 1, i)
    graph.validate()
    return graph


def fork_join_process_graph(
    name: str,
    n_processes: int,
    period: int,
    architecture: Architecture,
    rng: SeedLike = None,
    params: Optional[GraphParams] = None,
    deadline: Optional[int] = None,
    id_prefix: Optional[str] = None,
    wcet_sampler: Optional[Callable[[np.random.Generator], int]] = None,
    msg_size_sampler: Optional[Callable[[np.random.Generator], int]] = None,
) -> ProcessGraph:
    """A fork--join graph: source -> parallel branch chains -> sink.

    ``P0`` fans out to roughly ``sqrt(n - 2)`` branches (at least two),
    the interior processes are dealt round-robin into branch chains,
    and every branch tail joins into ``P(n-1)``.  Graphs with fewer
    than four processes degenerate to a chain.  The join makes the
    sink's start time the maximum over all branch finish times -- the
    synchronization pattern data-parallel workloads exhibit.
    """
    _, _, graph, add_edge = _shaped_graph_base(
        name, n_processes, period, architecture, rng, params, deadline,
        id_prefix, wcet_sampler, msg_size_sampler,
    )
    if n_processes < 4:
        for i in range(1, n_processes):
            add_edge(i - 1, i)
    else:
        interior = n_processes - 2
        n_branches = max(2, min(interior, int(round(np.sqrt(interior)))))
        sink = n_processes - 1
        branches: List[List[int]] = [[] for _ in range(n_branches)]
        for pos in range(interior):
            branches[pos % n_branches].append(pos + 1)
        for chain in branches:
            add_edge(0, chain[0])
            for a, b in zip(chain, chain[1:]):
                add_edge(a, b)
            add_edge(chain[-1], sink)
    graph.validate()
    return graph


#: Workload shapes understood by :func:`make_process_graph` (scenario
#: families select among them; ``bursty`` reuses the layered topology
#: with burst-periodic release, handled in :mod:`repro.gen.scenario`).
GRAPH_SHAPES: Dict[str, Callable[..., ProcessGraph]] = {
    "layered": random_process_graph,
    "pipeline": pipeline_process_graph,
    "forkjoin": fork_join_process_graph,
}


def make_process_graph(shape: str, *args, **kwargs) -> ProcessGraph:
    """Generate one process graph of the given workload ``shape``.

    All arguments beyond ``shape`` are forwarded to the shape's
    generator; every shape shares :func:`random_process_graph`'s
    signature.
    """
    try:
        generator = GRAPH_SHAPES[shape]
    except KeyError:
        raise ValueError(
            f"unknown graph shape {shape!r}; choose from "
            f"{sorted(GRAPH_SHAPES)}"
        ) from None
    return generator(*args, **kwargs)


def scale_graph_wcets(graph: ProcessGraph, factor: float) -> ProcessGraph:
    """A copy of ``graph`` with every WCET multiplied by ``factor``.

    Used by the scenario builder to hit a target utilization after the
    structure has been generated.  WCETs are clamped to at least 1.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    out = ProcessGraph(graph.name, graph.period, graph.deadline)
    for proc in graph.processes:
        scaled = {
            node_id: max(1, round(w * factor))
            for node_id, w in proc.wcet.items()
        }
        out.add_process(Process(proc.id, scaled, proc.name))
    for msg in graph.messages:
        out.add_message(msg)
    out.validate()
    return out
