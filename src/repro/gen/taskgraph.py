"""Random process-graph generation (TGFF-style layered DAGs).

Graphs are built in layers: processes are dealt into ``depth`` layers,
and every process in layer ``i > 0`` receives at least one edge from an
earlier layer, which guarantees a connected-ish DAG with controllable
depth -- the structure TGFF (Task Graphs For Free) produces and the
co-synthesis literature, including the paper, evaluates on.

WCET heterogeneity follows the paper's platform model: each process
gets a base execution time, and each allowed node executes it at a
node-specific speed factor; a random subset of nodes is allowed per
process (always at least one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.architecture import Architecture
from repro.model.process_graph import Message, Process, ProcessGraph
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class GraphParams:
    """Knobs of the random graph generator.

    Attributes
    ----------
    wcet_range:
        Inclusive range of base (pre-heterogeneity) execution times.
    msg_size_range:
        Inclusive range of message sizes in bytes.
    extra_edge_prob:
        Probability of each optional extra forward edge beyond the
        spanning ones.
    allowed_node_prob:
        Probability that a node (beyond the guaranteed first) is in a
        process's allowed set.
    het_range:
        Node speed-factor range: a node with factor ``f`` runs a
        process of base time ``w`` in ``round(w * f)`` time units.
    max_depth:
        Upper bound on the number of layers (the generator also keeps
        depth <= process count).
    """

    wcet_range: Tuple[int, int] = (10, 40)
    msg_size_range: Tuple[int, int] = (2, 8)
    extra_edge_prob: float = 0.25
    allowed_node_prob: float = 0.75
    het_range: Tuple[float, float] = (0.5, 1.5)
    max_depth: int = 5


def _node_speed_factors(
    architecture: Architecture, params: GraphParams, rng: np.random.Generator
) -> Dict[str, float]:
    """Per-node speed factors drawn once per graph."""
    lo, hi = params.het_range
    return {
        node_id: float(rng.uniform(lo, hi))
        for node_id in architecture.node_ids
    }


def random_process_graph(
    name: str,
    n_processes: int,
    period: int,
    architecture: Architecture,
    rng: SeedLike = None,
    params: Optional[GraphParams] = None,
    deadline: Optional[int] = None,
    id_prefix: Optional[str] = None,
    wcet_sampler: Optional[Callable[[np.random.Generator], int]] = None,
    msg_size_sampler: Optional[Callable[[np.random.Generator], int]] = None,
) -> ProcessGraph:
    """Generate one random process graph.

    Parameters
    ----------
    name:
        Graph name (also the default id prefix for its processes).
    n_processes:
        Number of processes; must be positive.
    period:
        The graph's release period (deadline defaults to it).
    architecture:
        Supplies the node set for WCET tables.
    rng:
        Seed or generator.
    params:
        Structural knobs; defaults are scenario-friendly.
    deadline:
        Relative deadline; defaults to ``period``.
    id_prefix:
        Prefix of process/message ids, defaults to ``name``.
    wcet_sampler:
        Optional override drawing base execution times (used to build
        concrete future applications from the characterized WCET
        distribution); defaults to uniform over ``params.wcet_range``.
    msg_size_sampler:
        Optional override drawing message sizes; defaults to uniform
        over ``params.msg_size_range``.
    """
    if n_processes <= 0:
        raise ValueError("n_processes must be positive")
    gen = make_rng(rng)
    if params is None:
        params = GraphParams()
    prefix = id_prefix if id_prefix is not None else name

    graph = ProcessGraph(name, period, deadline)
    speed = _node_speed_factors(architecture, params, gen)
    node_ids = architecture.node_ids

    # --- processes with heterogeneous WCET tables -----------------------
    lo_w, hi_w = params.wcet_range
    if wcet_sampler is None:
        wcet_sampler = lambda g: int(g.integers(lo_w, hi_w + 1))
    for i in range(n_processes):
        base = int(wcet_sampler(gen))
        if base <= 0:
            raise ValueError("wcet_sampler must return positive values")
        # Guarantee at least one allowed node, then add others randomly.
        first = node_ids[int(gen.integers(len(node_ids)))]
        allowed = {first}
        for node_id in node_ids:
            if node_id != first and gen.random() < params.allowed_node_prob:
                allowed.add(node_id)
        wcet = {
            node_id: max(1, round(base * speed[node_id]))
            for node_id in sorted(allowed)
        }
        graph.add_process(Process(f"{prefix}.P{i}", wcet))

    # --- layered DAG edges ----------------------------------------------
    depth = int(min(params.max_depth, max(1, round(np.sqrt(n_processes)))))
    layer_of = [int(gen.integers(depth)) for _ in range(n_processes)]
    # Layer 0 must be populated so sources exist.
    layer_of[0] = 0
    order = sorted(range(n_processes), key=lambda i: (layer_of[i], i))

    lo_m, hi_m = params.msg_size_range
    if msg_size_sampler is None:
        msg_size_sampler = lambda g: int(g.integers(lo_m, hi_m + 1))
    msg_count = 0

    def add_edge(src_idx: int, dst_idx: int) -> None:
        nonlocal msg_count
        size = int(msg_size_sampler(gen))
        if size <= 0:
            raise ValueError("msg_size_sampler must return positive values")
        graph.add_message(
            Message(
                f"{prefix}.m{msg_count}",
                f"{prefix}.P{src_idx}",
                f"{prefix}.P{dst_idx}",
                size,
            )
        )
        msg_count += 1

    for pos, idx in enumerate(order):
        if layer_of[idx] == 0 or pos == 0:
            continue
        earlier = [j for j in order[:pos] if layer_of[j] < layer_of[idx]]
        if not earlier:
            continue
        # Spanning edge: every non-root process has a parent.
        parent = earlier[int(gen.integers(len(earlier)))]
        add_edge(parent, idx)
        # Optional extra fan-in.
        for j in earlier:
            if j != parent and gen.random() < params.extra_edge_prob:
                add_edge(j, idx)

    graph.validate()
    return graph


def scale_graph_wcets(graph: ProcessGraph, factor: float) -> ProcessGraph:
    """A copy of ``graph`` with every WCET multiplied by ``factor``.

    Used by the scenario builder to hit a target utilization after the
    structure has been generated.  WCETs are clamped to at least 1.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    out = ProcessGraph(graph.name, graph.period, graph.deadline)
    for proc in graph.processes:
        scaled = {
            node_id: max(1, round(w * factor))
            for node_id, w in proc.wcet.items()
        }
        out.add_process(Process(proc.id, scaled, proc.name))
    for msg in graph.messages:
        out.add_message(msg)
    out.validate()
    return out
