"""Random architecture generation.

Heterogeneity lives in the process WCET tables (per-graph node speed
factors, see :mod:`repro.gen.taskgraph`), so the platform generator
only has to produce the node roster and the TDMA round layout.
"""

from __future__ import annotations

from typing import Optional

from repro.model.architecture import Architecture, Node
from repro.tdma.bus import Slot, TdmaBus


def random_architecture(
    n_nodes: int,
    slot_length: int = 4,
    slot_capacity: int = 16,
) -> Architecture:
    """A platform of ``n_nodes`` nodes with a uniform TDMA round.

    Parameters
    ----------
    n_nodes:
        Number of processing nodes (the paper uses ~10).
    slot_length:
        TDMA slot duration per node, in time units; the round length is
        ``n_nodes * slot_length``.
    slot_capacity:
        Payload bytes per slot occurrence.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    nodes = [Node(f"N{i}") for i in range(n_nodes)]
    bus = TdmaBus([Slot(node.id, slot_length, slot_capacity) for node in nodes])
    return Architecture(nodes, bus)
