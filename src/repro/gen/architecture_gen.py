"""Architecture generation: node rosters and TDMA round layouts.

The scenario-diversity subsystem generates three platform variants:

* the paper's homogeneous platform (uniform slots, reference-speed
  nodes) -- the default, unchanged from the seed implementation;
* *heterogeneous-speed* platforms, where each node declares a relative
  :attr:`~repro.model.architecture.Node.speed` that the workload
  generators fold into per-process WCET tables;
* *weighted-bus* platforms, where TDMA slot lengths and capacities
  differ per node (e.g. a gateway node owning a long, fat slot).

Per-process WCET tables remain the single source of truth for the
schedulers; the architecture-level knobs only steer generation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TypeVar

from repro.model.architecture import Architecture, Node
from repro.tdma.bus import Slot, TdmaBus

T = TypeVar("T", int, float)


def _per_node(
    label: str,
    values: Optional[Sequence[T]],
    n_nodes: int,
    default: T,
) -> List[T]:
    """Expand an optional per-node parameter sequence, validating length."""
    if values is None:
        return [default] * n_nodes
    out = list(values)
    if len(out) != n_nodes:
        raise ValueError(
            f"{label} must provide one value per node "
            f"({n_nodes}), got {len(out)}"
        )
    return out


def random_architecture(
    n_nodes: int,
    slot_length: int = 4,
    slot_capacity: int = 16,
    node_speeds: Optional[Sequence[float]] = None,
    slot_lengths: Optional[Sequence[int]] = None,
    slot_capacities: Optional[Sequence[int]] = None,
) -> Architecture:
    """A platform of ``n_nodes`` nodes with a TDMA round.

    Parameters
    ----------
    n_nodes:
        Number of processing nodes (the paper uses ~10).
    slot_length:
        Uniform TDMA slot duration per node, in time units; ignored for
        nodes covered by ``slot_lengths``.
    slot_capacity:
        Uniform payload bytes per slot occurrence; ignored for nodes
        covered by ``slot_capacities``.
    node_speeds:
        Optional relative speed per node (``1.0`` = reference); must
        list one value per node when given.
    slot_lengths, slot_capacities:
        Optional per-node TDMA slot durations / payload capacities,
        enabling variable-length rounds; must list one value per node
        when given.  The round length becomes ``sum(slot_lengths)``.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    speeds = _per_node("node_speeds", node_speeds, n_nodes, 1.0)
    lengths = _per_node("slot_lengths", slot_lengths, n_nodes, slot_length)
    capacities = _per_node(
        "slot_capacities", slot_capacities, n_nodes, slot_capacity
    )
    nodes = [
        Node(f"N{i}", speed=float(speeds[i])) for i in range(n_nodes)
    ]
    bus = TdmaBus(
        [
            Slot(node.id, int(lengths[i]), int(capacities[i]))
            for i, node in enumerate(nodes)
        ]
    )
    return Architecture(nodes, bus)
