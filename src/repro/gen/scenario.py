"""Full experiment scenarios.

A *scenario* bundles everything one run of the paper's experiments
needs:

* an architecture (nodes + TDMA bus),
* an **existing** application already mapped, scheduled and frozen
  into a base schedule (requirement (a) forbids touching it),
* a **current** application to be designed now,
* a :class:`repro.core.future.FutureCharacterization` consistent with
  the scenario's time and size scales, and
* (on demand) concrete **future** applications for the third
  experiment.

Everything is a deterministic function of ``(params, seed)``.

Utilization targeting: graph structures and raw WCETs are generated
first; WCETs are then rescaled so each application's expected demand
matches ``utilization * n_nodes * hyperperiod``, with a per-graph cap
keeping the (communication-free) critical path under half the deadline
so generated scenarios are schedulable in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.core.initial_mapping import InitialMapper
from repro.core.metrics import ObjectiveWeights
from repro.core.strategy import DesignSpec
from repro.gen.architecture_gen import random_architecture
from repro.gen.taskgraph import (
    GRAPH_SHAPES,
    GraphParams,
    make_process_graph,
    random_process_graph,
    scale_graph_wcets,
)
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import MappingError
from repro.utils.rng import SeedLike, make_rng, spawn_rngs


#: Workload shapes a scenario may request: the graph-level shapes of
#: :data:`repro.gen.taskgraph.GRAPH_SHAPES` plus ``bursty`` (layered
#: topology, burst-periodic release pattern handled here).
WORKLOAD_SHAPES: Tuple[str, ...] = tuple(sorted(GRAPH_SHAPES)) + ("bursty",)


@dataclass(frozen=True)
class ScenarioParams:
    """Parameters of a generated scenario.

    Defaults are laptop-scale and reproduce the paper's single scenario
    shape (homogeneous nodes, uniform TDMA slots, layered graphs); the
    experiment harnesses scale ``n_existing`` / ``n_current`` per
    figure.  The paper's scale is ``n_nodes=10, n_existing=400,
    n_current in {40..320}``.  The diversity knobs (``node_speeds``,
    ``slot_lengths``, ``slot_capacities``, ``workload_shape``) are what
    the scenario families of :mod:`repro.gen.families` vary.
    """

    n_nodes: int = 6
    hyperperiod: int = 4800
    period_divisors: Tuple[int, ...] = (1, 2, 4)
    graph_size_range: Tuple[int, int] = (5, 12)
    n_existing: int = 60
    n_current: int = 20
    existing_utilization: float = 0.50
    current_utilization: float = 0.22
    slot_length: int = 4
    slot_capacity: int = 16
    graph_params: GraphParams = field(default_factory=GraphParams)
    t_min_divisor: int = 4
    rho_proc: float = 1.30
    rho_bus: float = 0.50
    max_base_attempts: int = 5
    #: Relative node speeds, one per node; empty = homogeneous (1.0).
    node_speeds: Tuple[float, ...] = ()
    #: Per-node TDMA slot lengths; empty = uniform ``slot_length``.
    slot_lengths: Tuple[int, ...] = ()
    #: Per-node TDMA slot capacities; empty = uniform ``slot_capacity``.
    slot_capacities: Tuple[int, ...] = ()
    #: Workload shape; one of :data:`WORKLOAD_SHAPES`.
    workload_shape: str = "layered"
    #: ``bursty`` shape only: fraction of graphs released at the
    #: shortest period (the burst); the rest get the longest period.
    burst_fraction: float = 0.75

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        for label, values in (
            ("node_speeds", self.node_speeds),
            ("slot_lengths", self.slot_lengths),
            ("slot_capacities", self.slot_capacities),
        ):
            if values and len(values) != self.n_nodes:
                raise ValueError(
                    f"{label} must list one value per node "
                    f"({self.n_nodes}), got {len(values)}"
                )
        if any(s <= 0 for s in self.node_speeds):
            raise ValueError("node_speeds must be positive")
        if any(l <= 0 for l in self.slot_lengths):
            raise ValueError("slot_lengths must be positive")
        if any(c <= 0 for c in self.slot_capacities):
            raise ValueError("slot_capacities must be positive")
        if self.hyperperiod % self.round_length != 0:
            raise ValueError(
                f"hyperperiod {self.hyperperiod} must be a multiple of the "
                f"TDMA round length {self.round_length}"
            )
        for d in self.period_divisors:
            if self.hyperperiod % d != 0:
                raise ValueError(
                    f"period divisor {d} does not divide the hyperperiod"
                )
        if self.hyperperiod % self.t_min_divisor != 0:
            raise ValueError("t_min_divisor must divide the hyperperiod")
        if not 0 < self.existing_utilization < 1:
            raise ValueError("existing_utilization must be in (0, 1)")
        if not 0 < self.current_utilization < 1:
            raise ValueError("current_utilization must be in (0, 1)")
        if self.workload_shape not in WORKLOAD_SHAPES:
            raise ValueError(
                f"unknown workload shape {self.workload_shape!r}; choose "
                f"from {sorted(WORKLOAD_SHAPES)}"
            )
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be within [0, 1]")

    @property
    def t_min(self) -> int:
        """Smallest expected future period."""
        return self.hyperperiod // self.t_min_divisor

    @property
    def round_length(self) -> int:
        """The TDMA round length implied by the slot parameters."""
        if self.slot_lengths:
            return sum(self.slot_lengths)
        return self.n_nodes * self.slot_length

    def build_architecture(self) -> Architecture:
        """The platform these parameters describe."""
        return random_architecture(
            self.n_nodes,
            self.slot_length,
            self.slot_capacity,
            node_speeds=self.node_speeds or None,
            slot_lengths=self.slot_lengths or None,
            slot_capacities=self.slot_capacities or None,
        )


@dataclass
class Scenario:
    """A fully generated incremental-design problem instance."""

    params: ScenarioParams
    seed: int
    architecture: Architecture
    existing: Application
    base_schedule: SystemSchedule
    current: Application
    future: FutureCharacterization

    def spec(self, weights: Optional[ObjectiveWeights] = None) -> DesignSpec:
        """The :class:`DesignSpec` for designing the current application."""
        return DesignSpec(
            architecture=self.architecture,
            current=self.current,
            future=self.future,
            base_schedule=self.base_schedule,
            weights=weights if weights is not None else ObjectiveWeights(),
        )


# ----------------------------------------------------------------------
# application generation with utilization targeting
# ----------------------------------------------------------------------
def generate_application(
    name: str,
    n_processes: int,
    target_utilization: float,
    architecture: Architecture,
    params: ScenarioParams,
    rng: SeedLike = None,
) -> Application:
    """A random application of ~``n_processes`` processes.

    Processes are dealt into graphs of ``params.graph_size_range``
    processes with harmonic periods drawn from
    ``hyperperiod / params.period_divisors``; the graph topology
    follows ``params.workload_shape``; WCETs are rescaled toward
    ``target_utilization`` of the platform.

    Raises
    ------
    repro.utils.errors.MappingError
        On degenerate inputs: a non-positive process count, a target
        utilization outside ``(0, 1)``, or a generated workload with
        zero demand -- cases where the rescaling division would be
        meaningless or explode.
    """
    if n_processes <= 0:
        raise MappingError(
            f"cannot generate application {name!r} with "
            f"{n_processes} processes; n_processes must be positive"
        )
    if not 0.0 < target_utilization < 1.0:
        raise MappingError(
            f"target utilization for application {name!r} must be in "
            f"(0, 1), got {target_utilization}; a zero target collapses "
            f"every WCET and a full platform cannot host frozen + "
            f"current demand"
        )
    gen = make_rng(rng)
    app = Application(name)
    shape = params.workload_shape
    graph_shape = "layered" if shape == "bursty" else shape
    lo, hi = params.graph_size_range
    if shape == "bursty":
        # Bursts are small: deal graph sizes from the lower half of the
        # configured range so each burst releases many small graphs.
        hi = max(lo, (lo + hi) // 2)
    remaining = n_processes
    raw_graphs = []
    index = 0
    while remaining > 0:
        size = int(gen.integers(lo, hi + 1))
        size = min(size, remaining)
        # Avoid a trailing degenerate 1-process graph when possible.
        if 0 < remaining - size < lo and remaining <= hi + lo:
            size = remaining
        if shape == "bursty":
            # Burst-periodic release: most graphs arrive at the
            # shortest configured period, the rest form the
            # long-period background load.
            divisor = (
                max(params.period_divisors)
                if gen.random() < params.burst_fraction
                else min(params.period_divisors)
            )
        else:
            divisor = int(
                params.period_divisors[
                    int(gen.integers(len(params.period_divisors)))
                ]
            )
        period = params.hyperperiod // divisor
        graph = make_process_graph(
            graph_shape,
            name=f"g{index}",
            n_processes=size,
            period=period,
            architecture=architecture,
            rng=gen,
            params=params.graph_params,
            id_prefix=f"{name}.g{index}",
        )
        raw_graphs.append(graph)
        remaining -= size
        index += 1

    # --- utilization targeting ----------------------------------------
    horizon = params.hyperperiod
    raw_demand = 0.0
    for graph in raw_graphs:
        instances = horizon // graph.period
        raw_demand += instances * sum(p.average_wcet for p in graph.processes)
    if raw_demand <= 0.0:
        raise MappingError(
            f"generated workload for application {name!r} has zero "
            f"demand within the hyperperiod {horizon} (are all graph "
            f"periods longer than the horizon?); cannot rescale toward "
            f"utilization {target_utilization}"
        )
    capacity = len(architecture) * horizon
    factor = target_utilization * capacity / raw_demand

    for graph in raw_graphs:
        cp = graph.critical_path_length()
        cap = (0.5 * graph.deadline / cp) if cp > 0 else factor
        app.add_graph(scale_graph_wcets(graph, min(factor, cap)))
    app.validate()
    return app


def generate_future_application(
    scenario: Scenario,
    n_processes: Optional[int] = None,
    rng: SeedLike = None,
    name: str = "future",
    demand_fraction: float = 0.4,
) -> Application:
    """A concrete future application drawn from the characterized family.

    One process graph with period (and deadline) ``t_min``, WCETs drawn
    from the scenario's future WCET distribution and message sizes from
    its future message-size distribution -- the workload of the paper's
    third experiment (slide 17, future application of 80 processes).

    When ``n_processes`` is omitted, the size is derived from the
    characterization so the application's expected total demand is
    ``demand_fraction * t_need`` -- i.e. a typical (not worst-case)
    member of the characterized family.
    """
    gen = make_rng(rng)
    future = scenario.future
    if n_processes is None:
        mean = future.wcet_distribution.mean
        n_processes = max(2, round(demand_fraction * future.t_need / mean))
    graph = random_process_graph(
        name="g0",
        n_processes=n_processes,
        period=future.t_min,
        architecture=scenario.architecture,
        rng=gen,
        params=scenario.params.graph_params,
        id_prefix=f"{name}.g0",
        wcet_sampler=lambda g: future.wcet_distribution.sample(g, 1)[0],
        msg_size_sampler=lambda g: (
            future.message_size_distribution.sample(g, 1)[0]
        ),
    )
    return Application(name, [graph])


# ----------------------------------------------------------------------
# scenario assembly
# ----------------------------------------------------------------------
def _future_characterization(
    params: ScenarioParams,
    architecture: Architecture,
    current: Application,
) -> FutureCharacterization:
    """Derive a future-family characterization at the scenario's scale.

    ``t_need`` claims ``rho_proc`` of the processor capacity expected to
    remain free per ``t_min`` window; ``b_need`` claims ``rho_bus`` of
    the bus capacity per window.  ``rho_proc > 1`` (the default) makes
    the characterized family slightly more demanding than the free
    capacity, so even an optimal design carries a non-zero baseline
    cost -- this keeps the paper's "percentage deviation from near
    optimal" well defined on every scenario.  The WCET distribution
    keeps the slide-10 shape, scaled so its mean tracks the current
    application's mean WCET.
    """
    t_min = params.t_min
    free_share = 1.0 - params.existing_utilization - params.current_utilization
    if free_share <= 0.0:
        raise MappingError(
            f"existing ({params.existing_utilization}) plus current "
            f"({params.current_utilization}) utilization leaves no free "
            f"capacity for future applications; lower one of them below "
            f"a combined 1.0"
        )
    free_per_window = free_share * len(architecture) * t_min
    t_need = max(1, round(params.rho_proc * free_per_window))

    bus_capacity_per_window = architecture.bus.total_capacity_within(t_min)
    b_need = max(1, round(params.rho_bus * bus_capacity_per_window))

    mean_wcet = float(
        np.mean([p.average_wcet for p in current.processes])
    )
    shape = (0.3, 0.65, 1.0, 1.5)
    probs = (0.15, 0.40, 0.30, 0.15)
    values = tuple(max(1, round(mean_wcet * r)) for r in shape)
    # Deduplicate while preserving shape (tiny scales can collapse bins).
    if len(set(values)) != len(values):
        values = tuple(v + i for i, v in enumerate(values))
    wcet_dist = DiscreteDistribution(values, probs)

    lo_m, hi_m = params.graph_params.msg_size_range
    msg_values = tuple(
        sorted({lo_m, (lo_m + hi_m) // 2, hi_m, max(lo_m + 1, hi_m - 1)})
    )
    msg_probs = tuple(1.0 for _ in msg_values)
    msg_dist = DiscreteDistribution(msg_values, msg_probs)

    return FutureCharacterization(
        t_min=t_min,
        t_need=t_need,
        b_need=b_need,
        wcet_distribution=wcet_dist,
        message_size_distribution=msg_dist,
    )


def build_scenario(params: ScenarioParams, seed: int = 0) -> Scenario:
    """Generate a complete scenario from ``(params, seed)``.

    The existing application is mapped and scheduled by the Initial
    Mapper onto the empty platform and frozen.  If a draw turns out
    unschedulable the builder retries with fresh sub-seeds up to
    ``params.max_base_attempts`` times before raising.

    Raises
    ------
    repro.utils.errors.MappingError
        When no schedulable existing application was found.
    """
    architecture = params.build_architecture()
    existing_rngs = spawn_rngs(seed, params.max_base_attempts)
    current_rng, future_rng = spawn_rngs(seed + 1_000_003, 2)

    mapper = InitialMapper(architecture)
    existing = None
    base_schedule = None
    for attempt_rng in existing_rngs:
        candidate = generate_application(
            "existing",
            params.n_existing,
            params.existing_utilization,
            architecture,
            params,
            attempt_rng,
        )
        outcome = mapper.try_map_and_schedule(
            candidate, horizon=params.hyperperiod, frozen=True
        )
        if outcome is not None:
            existing = candidate
            base_schedule = outcome[1]
            break
    if existing is None or base_schedule is None:
        raise MappingError(
            f"could not generate a schedulable existing application after "
            f"{params.max_base_attempts} attempts (seed {seed})"
        )

    current = generate_application(
        "current",
        params.n_current,
        params.current_utilization,
        architecture,
        params,
        current_rng,
    )
    future = _future_characterization(params, architecture, current)
    return Scenario(
        params=params,
        seed=seed,
        architecture=architecture,
        existing=existing,
        base_schedule=base_schedule,
        current=current,
        future=future,
    )
