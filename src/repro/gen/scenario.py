"""Full experiment scenarios.

A *scenario* bundles everything one run of the paper's experiments
needs:

* an architecture (nodes + TDMA bus),
* an **existing** application already mapped, scheduled and frozen
  into a base schedule (requirement (a) forbids touching it),
* a **current** application to be designed now,
* a :class:`repro.core.future.FutureCharacterization` consistent with
  the scenario's time and size scales, and
* (on demand) concrete **future** applications for the third
  experiment.

Everything is a deterministic function of ``(params, seed)``.

Utilization targeting: graph structures and raw WCETs are generated
first; WCETs are then rescaled so each application's expected demand
matches ``utilization * n_nodes * hyperperiod``, with a per-graph cap
keeping the (communication-free) critical path under half the deadline
so generated scenarios are schedulable in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.core.initial_mapping import InitialMapper
from repro.core.metrics import ObjectiveWeights
from repro.core.strategy import DesignSpec
from repro.gen.architecture_gen import random_architecture
from repro.gen.taskgraph import GraphParams, random_process_graph, scale_graph_wcets
from repro.model.application import Application
from repro.model.architecture import Architecture
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import MappingError
from repro.utils.rng import SeedLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class ScenarioParams:
    """Parameters of a generated scenario.

    Defaults are laptop-scale; the experiment harnesses scale
    ``n_existing`` / ``n_current`` per figure.  The paper's scale is
    ``n_nodes=10, n_existing=400, n_current in {40..320}``.
    """

    n_nodes: int = 6
    hyperperiod: int = 4800
    period_divisors: Tuple[int, ...] = (1, 2, 4)
    graph_size_range: Tuple[int, int] = (5, 12)
    n_existing: int = 60
    n_current: int = 20
    existing_utilization: float = 0.50
    current_utilization: float = 0.22
    slot_length: int = 4
    slot_capacity: int = 16
    graph_params: GraphParams = field(default_factory=GraphParams)
    t_min_divisor: int = 4
    rho_proc: float = 1.30
    rho_bus: float = 0.50
    max_base_attempts: int = 5

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        round_length = self.n_nodes * self.slot_length
        if self.hyperperiod % round_length != 0:
            raise ValueError(
                f"hyperperiod {self.hyperperiod} must be a multiple of the "
                f"TDMA round length {round_length}"
            )
        for d in self.period_divisors:
            if self.hyperperiod % d != 0:
                raise ValueError(
                    f"period divisor {d} does not divide the hyperperiod"
                )
        if self.hyperperiod % self.t_min_divisor != 0:
            raise ValueError("t_min_divisor must divide the hyperperiod")
        if not 0 < self.existing_utilization < 1:
            raise ValueError("existing_utilization must be in (0, 1)")
        if not 0 < self.current_utilization < 1:
            raise ValueError("current_utilization must be in (0, 1)")

    @property
    def t_min(self) -> int:
        """Smallest expected future period."""
        return self.hyperperiod // self.t_min_divisor


@dataclass
class Scenario:
    """A fully generated incremental-design problem instance."""

    params: ScenarioParams
    seed: int
    architecture: Architecture
    existing: Application
    base_schedule: SystemSchedule
    current: Application
    future: FutureCharacterization

    def spec(self, weights: Optional[ObjectiveWeights] = None) -> DesignSpec:
        """The :class:`DesignSpec` for designing the current application."""
        return DesignSpec(
            architecture=self.architecture,
            current=self.current,
            future=self.future,
            base_schedule=self.base_schedule,
            weights=weights if weights is not None else ObjectiveWeights(),
        )


# ----------------------------------------------------------------------
# application generation with utilization targeting
# ----------------------------------------------------------------------
def generate_application(
    name: str,
    n_processes: int,
    target_utilization: float,
    architecture: Architecture,
    params: ScenarioParams,
    rng: SeedLike = None,
) -> Application:
    """A random application of ~``n_processes`` processes.

    Processes are dealt into graphs of ``params.graph_size_range``
    processes with harmonic periods drawn from
    ``hyperperiod / params.period_divisors``; WCETs are rescaled toward
    ``target_utilization`` of the platform.
    """
    gen = make_rng(rng)
    app = Application(name)
    lo, hi = params.graph_size_range
    remaining = n_processes
    raw_graphs = []
    index = 0
    while remaining > 0:
        size = int(gen.integers(lo, hi + 1))
        size = min(size, remaining)
        # Avoid a trailing degenerate 1-process graph when possible.
        if 0 < remaining - size < lo and remaining <= hi + lo:
            size = remaining
        divisor = int(
            params.period_divisors[int(gen.integers(len(params.period_divisors)))]
        )
        period = params.hyperperiod // divisor
        graph = random_process_graph(
            name=f"g{index}",
            n_processes=size,
            period=period,
            architecture=architecture,
            rng=gen,
            params=params.graph_params,
            id_prefix=f"{name}.g{index}",
        )
        raw_graphs.append(graph)
        remaining -= size
        index += 1

    # --- utilization targeting ----------------------------------------
    horizon = params.hyperperiod
    raw_demand = 0.0
    for graph in raw_graphs:
        instances = horizon // graph.period
        raw_demand += instances * sum(p.average_wcet for p in graph.processes)
    capacity = len(architecture) * horizon
    factor = target_utilization * capacity / max(raw_demand, 1.0)

    for graph in raw_graphs:
        cp = graph.critical_path_length()
        cap = (0.5 * graph.deadline / cp) if cp > 0 else factor
        app.add_graph(scale_graph_wcets(graph, min(factor, cap)))
    app.validate()
    return app


def generate_future_application(
    scenario: Scenario,
    n_processes: Optional[int] = None,
    rng: SeedLike = None,
    name: str = "future",
    demand_fraction: float = 0.4,
) -> Application:
    """A concrete future application drawn from the characterized family.

    One process graph with period (and deadline) ``t_min``, WCETs drawn
    from the scenario's future WCET distribution and message sizes from
    its future message-size distribution -- the workload of the paper's
    third experiment (slide 17, future application of 80 processes).

    When ``n_processes`` is omitted, the size is derived from the
    characterization so the application's expected total demand is
    ``demand_fraction * t_need`` -- i.e. a typical (not worst-case)
    member of the characterized family.
    """
    gen = make_rng(rng)
    future = scenario.future
    if n_processes is None:
        mean = future.wcet_distribution.mean
        n_processes = max(2, round(demand_fraction * future.t_need / mean))
    graph = random_process_graph(
        name="g0",
        n_processes=n_processes,
        period=future.t_min,
        architecture=scenario.architecture,
        rng=gen,
        params=scenario.params.graph_params,
        id_prefix=f"{name}.g0",
        wcet_sampler=lambda g: future.wcet_distribution.sample(g, 1)[0],
        msg_size_sampler=lambda g: (
            future.message_size_distribution.sample(g, 1)[0]
        ),
    )
    return Application(name, [graph])


# ----------------------------------------------------------------------
# scenario assembly
# ----------------------------------------------------------------------
def _future_characterization(
    params: ScenarioParams,
    architecture: Architecture,
    current: Application,
) -> FutureCharacterization:
    """Derive a future-family characterization at the scenario's scale.

    ``t_need`` claims ``rho_proc`` of the processor capacity expected to
    remain free per ``t_min`` window; ``b_need`` claims ``rho_bus`` of
    the bus capacity per window.  ``rho_proc > 1`` (the default) makes
    the characterized family slightly more demanding than the free
    capacity, so even an optimal design carries a non-zero baseline
    cost -- this keeps the paper's "percentage deviation from near
    optimal" well defined on every scenario.  The WCET distribution
    keeps the slide-10 shape, scaled so its mean tracks the current
    application's mean WCET.
    """
    t_min = params.t_min
    free_share = 1.0 - params.existing_utilization - params.current_utilization
    free_per_window = free_share * len(architecture) * t_min
    t_need = max(1, round(params.rho_proc * free_per_window))

    round_length = architecture.bus.round_length
    bus_capacity_per_window = (t_min // round_length) * sum(
        slot.capacity for slot in architecture.bus.slots
    )
    b_need = max(1, round(params.rho_bus * bus_capacity_per_window))

    mean_wcet = float(
        np.mean([p.average_wcet for p in current.processes])
    )
    shape = (0.3, 0.65, 1.0, 1.5)
    probs = (0.15, 0.40, 0.30, 0.15)
    values = tuple(max(1, round(mean_wcet * r)) for r in shape)
    # Deduplicate while preserving shape (tiny scales can collapse bins).
    if len(set(values)) != len(values):
        values = tuple(v + i for i, v in enumerate(values))
    wcet_dist = DiscreteDistribution(values, probs)

    lo_m, hi_m = params.graph_params.msg_size_range
    msg_values = tuple(
        sorted({lo_m, (lo_m + hi_m) // 2, hi_m, max(lo_m + 1, hi_m - 1)})
    )
    msg_probs = tuple(1.0 for _ in msg_values)
    msg_dist = DiscreteDistribution(msg_values, msg_probs)

    return FutureCharacterization(
        t_min=t_min,
        t_need=t_need,
        b_need=b_need,
        wcet_distribution=wcet_dist,
        message_size_distribution=msg_dist,
    )


def build_scenario(params: ScenarioParams, seed: int = 0) -> Scenario:
    """Generate a complete scenario from ``(params, seed)``.

    The existing application is mapped and scheduled by the Initial
    Mapper onto the empty platform and frozen.  If a draw turns out
    unschedulable the builder retries with fresh sub-seeds up to
    ``params.max_base_attempts`` times before raising.

    Raises
    ------
    repro.utils.errors.MappingError
        When no schedulable existing application was found.
    """
    architecture = random_architecture(
        params.n_nodes, params.slot_length, params.slot_capacity
    )
    existing_rngs = spawn_rngs(seed, params.max_base_attempts)
    current_rng, future_rng = spawn_rngs(seed + 1_000_003, 2)

    mapper = InitialMapper(architecture)
    existing = None
    base_schedule = None
    for attempt_rng in existing_rngs:
        candidate = generate_application(
            "existing",
            params.n_existing,
            params.existing_utilization,
            architecture,
            params,
            attempt_rng,
        )
        outcome = mapper.try_map_and_schedule(
            candidate, horizon=params.hyperperiod, frozen=True
        )
        if outcome is not None:
            existing = candidate
            base_schedule = outcome[1]
            break
    if existing is None or base_schedule is None:
        raise MappingError(
            f"could not generate a schedulable existing application after "
            f"{params.max_base_attempts} attempts (seed {seed})"
        )

    current = generate_application(
        "current",
        params.n_current,
        params.current_utilization,
        architecture,
        params,
        current_rng,
    )
    future = _future_characterization(params, architecture, current)
    return Scenario(
        params=params,
        seed=seed,
        architecture=architecture,
        existing=existing,
        base_schedule=base_schedule,
        current=current,
        future=future,
    )
