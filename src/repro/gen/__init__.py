"""Synthetic workload generation.

The paper evaluates on randomly generated process graphs mapped to
architectures of ~10 nodes (existing applications of 400 processes,
current applications of 40-320 processes, future applications of 80
processes).  This subpackage provides the equivalent generators:

* :mod:`~repro.gen.taskgraph` -- layered random DAGs with
  heterogeneous per-node WCET tables and sized messages;
* :mod:`~repro.gen.architecture_gen` -- platforms with a uniform TDMA
  round;
* :mod:`~repro.gen.scenario` -- full experiment scenarios: an existing
  application frozen into a base schedule, a current application to
  design, a future-family characterization consistent with the
  scenario's scale, and concrete future applications for the third
  experiment.

All generators are deterministic functions of their seed.
"""

from repro.gen.taskgraph import GraphParams, random_process_graph
from repro.gen.architecture_gen import random_architecture
from repro.gen.scenario import (
    Scenario,
    ScenarioParams,
    build_scenario,
    generate_application,
    generate_future_application,
)

__all__ = [
    "GraphParams",
    "random_process_graph",
    "random_architecture",
    "Scenario",
    "ScenarioParams",
    "build_scenario",
    "generate_application",
    "generate_future_application",
]
