"""Synthetic workload generation.

The paper evaluates on randomly generated process graphs mapped to
architectures of ~10 nodes (existing applications of 400 processes,
current applications of 40-320 processes, future applications of 80
processes).  This subpackage provides the equivalent generators:

* :mod:`~repro.gen.taskgraph` -- layered random DAGs, pipeline chains
  and fork--join graphs with heterogeneous per-node WCET tables and
  sized messages;
* :mod:`~repro.gen.architecture_gen` -- platforms with uniform or
  weighted (variable-slot) TDMA rounds and optional per-node speeds;
* :mod:`~repro.gen.scenario` -- full experiment scenarios: an existing
  application frozen into a base schedule, a current application to
  design, a future-family characterization consistent with the
  scenario's scale, and concrete future applications for the third
  experiment;
* :mod:`~repro.gen.families` -- the scenario-diversity registry:
  named families (heterogeneous speeds, weighted buses, pipeline /
  fork--join / bursty workloads) with scale presets, addressable from
  the CLI and the stress matrix.

All generators are deterministic functions of their seed.
"""

from repro.gen.taskgraph import (
    GRAPH_SHAPES,
    GraphParams,
    fork_join_process_graph,
    make_process_graph,
    pipeline_process_graph,
    random_process_graph,
)
from repro.gen.architecture_gen import random_architecture
from repro.gen.scenario import (
    WORKLOAD_SHAPES,
    Scenario,
    ScenarioParams,
    build_scenario,
    generate_application,
    generate_future_application,
)

__all__ = [
    "GRAPH_SHAPES",
    "GraphParams",
    "WORKLOAD_SHAPES",
    "fork_join_process_graph",
    "make_process_graph",
    "pipeline_process_graph",
    "random_process_graph",
    "random_architecture",
    "Scenario",
    "ScenarioParams",
    "build_scenario",
    "generate_application",
    "generate_future_application",
]
