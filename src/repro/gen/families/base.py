"""Scenario families: named, parameterized scenario generators.

A :class:`ScenarioFamily` bundles a *shape* of scenario -- which
platform variant and workload topology it exercises -- with an ordered
set of named presets at increasing scale.  Families are what the
experiment harnesses sweep to show that a conclusion holds across the
input space rather than on one generator: the BBCPOP line of work on
sparse relaxations and cohort-validation studies (EPI-VALID) both make
the same methodological point -- vary the input family systematically,
then measure.

Every scenario a family builds is a deterministic function of
``(params, seed)``, so family sweeps are exactly as reproducible as the
paper's original experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.gen.scenario import Scenario, ScenarioParams, build_scenario
from repro.utils.errors import InvalidModelError


@dataclass(frozen=True)
class ScenarioFamily:
    """One named scenario family with scale presets.

    Attributes
    ----------
    name:
        Registry key (kebab-case, e.g. ``"hetero-speed"``).
    description:
        One-line summary shown by ``scenarios list``.
    presets:
        Named :class:`~repro.gen.scenario.ScenarioParams`, ordered from
        smallest to largest scale.  The first preset is the *smoke*
        preset: CI runs every strategy on it, so it must stay small and
        schedulable.
    default_seed:
        Seed used when the caller does not pick one.
    """

    name: str
    description: str
    presets: Mapping[str, ScenarioParams]
    default_seed: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidModelError("scenario family name must be non-empty")
        if not self.presets:
            raise InvalidModelError(
                f"scenario family {self.name!r} needs at least one preset"
            )
        for preset in self.presets:
            if not preset:
                raise InvalidModelError(
                    f"scenario family {self.name!r} has an unnamed preset"
                )
        # Freeze the mapping so a family is safely shareable.
        object.__setattr__(self, "presets", dict(self.presets))

    # ------------------------------------------------------------------
    @property
    def preset_names(self) -> List[str]:
        """Preset names, smallest scale first."""
        return list(self.presets)

    @property
    def smallest_preset(self) -> str:
        """The smoke-test preset (first in declaration order)."""
        return next(iter(self.presets))

    def params(self, preset: Optional[str] = None) -> ScenarioParams:
        """The parameters of ``preset`` (default: smallest)."""
        if preset is None:
            preset = self.smallest_preset
        try:
            return self.presets[preset]
        except KeyError:
            raise InvalidModelError(
                f"scenario family {self.name!r} has no preset {preset!r}; "
                f"available: {self.preset_names}"
            ) from None

    def build(
        self, preset: Optional[str] = None, seed: Optional[int] = None
    ) -> Scenario:
        """Generate the scenario of ``(preset, seed)`` deterministically."""
        if seed is None:
            seed = self.default_seed
        return build_scenario(self.params(preset), seed=seed)

    def describe(self) -> str:
        """Multi-line human-readable summary (``scenarios describe``)."""
        lines = [f"family {self.name}: {self.description}"]
        for preset_name, params in self.presets.items():
            traits = [
                f"nodes={params.n_nodes}",
                f"hyperperiod={params.hyperperiod}",
                f"existing={params.n_existing}",
                f"current={params.n_current}",
                f"shape={params.workload_shape}",
            ]
            if params.node_speeds:
                traits.append(
                    "speeds=" + "/".join(f"{s:g}" for s in params.node_speeds)
                )
            if params.slot_lengths:
                traits.append(
                    "slots=" + "/".join(str(l) for l in params.slot_lengths)
                )
            if params.slot_capacities:
                traits.append(
                    "slotcap="
                    + "/".join(str(c) for c in params.slot_capacities)
                )
            lines.append(f"  preset {preset_name}: " + ", ".join(traits))
        lines.append(f"  default seed: {self.default_seed}")
        return "\n".join(lines)
