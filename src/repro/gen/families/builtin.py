"""The built-in scenario families.

Seven families cover the diversity axes the paper's single generator
does not: architecture-level heterogeneity (per-node speeds), bus-level
heterogeneity (variable-length TDMA slots), three workload topologies
beyond layered DAGs (pipeline chains, fork--join, bursty periodic), and
a combined stress family.  Every family's smallest preset is sized so
CI can run all three strategies on it in seconds; larger presets are
for local sweeps.

Adding a family is one :func:`~repro.gen.families.registry.register_family`
call -- the CLI, the stress matrix and the CI smoke sweep pick it up
automatically (and CI will refuse it unless AH, MH and SA all solve its
smallest preset deterministically).
"""

from __future__ import annotations

from dataclasses import replace

from repro.gen.families.base import ScenarioFamily
from repro.gen.families.registry import register_family
from repro.gen.scenario import ScenarioParams

# Shared scale anchors.  ``_TINY`` is the smoke scale: every family's
# first preset derives from it, so the CI sweep stays fast.
_TINY = ScenarioParams(
    n_nodes=4, hyperperiod=2400, n_existing=10, n_current=5
)
_SMALL = ScenarioParams(n_nodes=6, hyperperiod=4800, n_existing=24, n_current=10)
_MEDIUM = ScenarioParams(n_nodes=6, hyperperiod=4800, n_existing=60, n_current=20)

#: Speed ladders: same node count, ~2.3x spread between the slowest
#: and fastest node -- enough to make mapping decisions matter without
#: making the slow nodes useless.
_SPEEDS_4 = (0.7, 1.0, 1.3, 1.6)
_SPEEDS_6 = (0.6, 0.8, 1.0, 1.2, 1.4, 1.6)

#: Weighted bus layouts: one short/thin slot pair and one long/fat
#: slot pair per platform; round lengths match the uniform rounds
#: (16 for 4 nodes, 24 for 6) so the hyperperiods stay valid.
_SLOTS_4 = dict(slot_lengths=(2, 4, 4, 6), slot_capacities=(8, 16, 16, 24))
_SLOTS_6 = dict(
    slot_lengths=(2, 2, 4, 4, 6, 6),
    slot_capacities=(8, 8, 16, 16, 24, 24),
)

UNIFORM_BASELINE = register_family(
    ScenarioFamily(
        name="uniform-baseline",
        description=(
            "The paper's scenario shape: homogeneous nodes, uniform TDMA "
            "slots, layered TGFF-style graphs"
        ),
        presets={
            "tiny": _TINY,
            "small": _SMALL,
            "medium": _MEDIUM,
        },
    )
)

HETERO_SPEED = register_family(
    ScenarioFamily(
        name="hetero-speed",
        description=(
            "Heterogeneous node speeds (0.6x-1.6x): WCET tables scale "
            "per node, so mapping choices trade speed against slack"
        ),
        presets={
            "tiny": replace(_TINY, node_speeds=_SPEEDS_4),
            "small": replace(_SMALL, node_speeds=_SPEEDS_6),
            "medium": replace(_MEDIUM, node_speeds=_SPEEDS_6),
        },
    )
)

WEIGHTED_BUS = register_family(
    ScenarioFamily(
        name="weighted-bus",
        description=(
            "Variable-length TDMA slots: short/thin and long/fat slots "
            "in one round, stressing message scheduling asymmetry"
        ),
        presets={
            "tiny": replace(_TINY, **_SLOTS_4),
            "small": replace(_SMALL, **_SLOTS_6),
            "medium": replace(_MEDIUM, **_SLOTS_6),
        },
    )
)

PIPELINE = register_family(
    ScenarioFamily(
        name="pipeline",
        description=(
            "Pipeline-chain workloads: every graph is a single chain, "
            "maximizing critical paths and bus traffic per process"
        ),
        presets={
            "tiny": replace(_TINY, workload_shape="pipeline"),
            "small": replace(_SMALL, workload_shape="pipeline"),
            "medium": replace(_MEDIUM, workload_shape="pipeline"),
        },
    )
)

FORKJOIN = register_family(
    ScenarioFamily(
        name="forkjoin",
        description=(
            "Fork-join workloads: parallel branch chains joining in a "
            "sink, the synchronization pattern of data-parallel apps"
        ),
        presets={
            "tiny": replace(_TINY, workload_shape="forkjoin"),
            "small": replace(_SMALL, workload_shape="forkjoin"),
            "medium": replace(_MEDIUM, workload_shape="forkjoin"),
        },
    )
)

BURSTY = register_family(
    ScenarioFamily(
        name="bursty",
        description=(
            "Bursty periodic workloads: many small graphs at the "
            "shortest period over a long-period background load"
        ),
        presets={
            "tiny": replace(_TINY, workload_shape="bursty"),
            "small": replace(_SMALL, workload_shape="bursty"),
            "medium": replace(_MEDIUM, workload_shape="bursty"),
        },
    )
)

HETERO_MIXED = register_family(
    ScenarioFamily(
        name="hetero-mixed",
        description=(
            "Combined stress: heterogeneous speeds, weighted bus and "
            "pipeline workloads in one scenario"
        ),
        presets={
            "tiny": replace(
                _TINY,
                node_speeds=_SPEEDS_4,
                workload_shape="pipeline",
                **_SLOTS_4,
            ),
            "small": replace(
                _SMALL,
                node_speeds=_SPEEDS_6,
                workload_shape="pipeline",
                **_SLOTS_6,
            ),
        },
    )
)
