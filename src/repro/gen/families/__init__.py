"""Scenario-diversity subsystem: named scenario families.

Importing this package registers the built-in families; use
:func:`family_names` / :func:`get_family` to address them and
``python -m repro.experiments scenarios list`` to browse them.

>>> from repro.gen import families
>>> "hetero-speed" in families.family_names()
True
>>> scenario = families.get_family("hetero-speed").build("tiny", seed=1)
"""

from repro.gen.families.base import ScenarioFamily
from repro.gen.families.registry import (
    family_names,
    get_family,
    iter_families,
    register_family,
    unregister_family,
)
from repro.gen.families import builtin  # noqa: F401  (registers built-ins)

__all__ = [
    "ScenarioFamily",
    "family_names",
    "get_family",
    "iter_families",
    "register_family",
    "unregister_family",
]
