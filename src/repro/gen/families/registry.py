"""The scenario-family registry.

Families register once at import time (see
:mod:`repro.gen.families.builtin`) and are addressed by name from the
CLI (``scenarios list|describe|run``), the stress matrix
(:func:`repro.experiments.runner.run_family_matrix`) and tests.
Registration order is preserved -- it is the order listings display.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gen.families.base import ScenarioFamily
from repro.utils.errors import InvalidModelError

_REGISTRY: Dict[str, ScenarioFamily] = {}


def register_family(
    family: ScenarioFamily, replace: bool = False
) -> ScenarioFamily:
    """Add ``family`` to the registry (returns it, for decorator-style use).

    Raises
    ------
    repro.utils.errors.InvalidModelError
        On duplicate names, unless ``replace`` is True.
    """
    if family.name in _REGISTRY and not replace:
        raise InvalidModelError(
            f"scenario family {family.name!r} is already registered"
        )
    _REGISTRY[family.name] = family
    return family


def unregister_family(name: str) -> None:
    """Remove a family (primarily for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def get_family(name: str) -> ScenarioFamily:
    """Look up a family by name.

    Raises
    ------
    repro.utils.errors.InvalidModelError
        For unknown names, listing what is available.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidModelError(
            f"unknown scenario family {name!r}; available: {family_names()}"
        ) from None


def family_names() -> List[str]:
    """Registered family names, in registration order."""
    return list(_REGISTRY)


def iter_families() -> List[ScenarioFamily]:
    """All registered families, in registration order."""
    return list(_REGISTRY.values())
