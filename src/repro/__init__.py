"""Incremental design of distributed embedded systems.

A faithful reimplementation of Pop, Eles, Pop & Peng, *"An Approach to
Incremental Design of Distributed Embedded Systems"*, DAC 2001:
mapping and scheduling of a new application onto a TDMA-based
heterogeneous distributed platform that already runs existing
applications, optimized so that characterized-but-unknown *future*
applications will still fit.

Quickstart::

    from repro import ScenarioParams, build_scenario, design_application

    scenario = build_scenario(ScenarioParams(), seed=7)
    result = design_application(scenario.spec(), strategy="MH")
    print(result.metrics.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.core import (
    AdHocStrategy,
    DesignMetrics,
    DesignResult,
    DesignSpec,
    DiscreteDistribution,
    FutureCharacterization,
    InitialMapper,
    MappingHeuristic,
    ObjectiveWeights,
    SimulatedAnnealing,
    design_application,
    design_with_modifications,
    evaluate_design,
    fits_future_application,
    make_strategy,
    ExistingApplication,
    ModificationResult,
)
from repro.gen import (
    Scenario,
    ScenarioParams,
    build_scenario,
    generate_application,
    generate_future_application,
    random_architecture,
    random_process_graph,
)
from repro.model import (
    Application,
    Architecture,
    Mapping,
    Message,
    Node,
    Process,
    ProcessGraph,
)
from repro.analysis import DesignReport, analyze_design, render_report
from repro.engine import (
    BatchEvaluator,
    CacheStats,
    CompiledSpec,
    EvaluatedDesign,
    EvaluationCache,
    EvaluationEngine,
)
from repro.sched import ListScheduler, SystemSchedule, render_gantt, verify_design
from repro.search import (
    Budget,
    PortfolioResult,
    PortfolioRunner,
    SearchCheckpoint,
    SearchLoop,
    SearchStats,
)
from repro.tdma import BusSchedule, Slot, TdmaBus

__version__ = "1.0.0"

__all__ = [
    "AdHocStrategy",
    "Application",
    "Architecture",
    "BatchEvaluator",
    "Budget",
    "BusSchedule",
    "CacheStats",
    "CompiledSpec",
    "EvaluatedDesign",
    "EvaluationCache",
    "EvaluationEngine",
    "DesignReport",
    "analyze_design",
    "render_report",
    "verify_design",
    "DesignMetrics",
    "DesignResult",
    "DesignSpec",
    "DiscreteDistribution",
    "ExistingApplication",
    "FutureCharacterization",
    "ModificationResult",
    "InitialMapper",
    "ListScheduler",
    "Mapping",
    "MappingHeuristic",
    "Message",
    "Node",
    "ObjectiveWeights",
    "PortfolioResult",
    "PortfolioRunner",
    "Process",
    "ProcessGraph",
    "Scenario",
    "ScenarioParams",
    "SearchCheckpoint",
    "SearchLoop",
    "SearchStats",
    "SimulatedAnnealing",
    "Slot",
    "SystemSchedule",
    "TdmaBus",
    "build_scenario",
    "design_application",
    "design_with_modifications",
    "evaluate_design",
    "fits_future_application",
    "generate_application",
    "generate_future_application",
    "make_strategy",
    "random_architecture",
    "random_process_graph",
    "render_gantt",
    "__version__",
]
