"""Tests for the scenario-diversity subsystem (families + registry)."""

import json

import pytest

from repro.gen import families
from repro.gen.families import ScenarioFamily
from repro.gen.scenario import ScenarioParams
from repro.serialize.scenario_codec import scenario_from_dict, scenario_to_dict
from repro.utils.errors import InvalidModelError

SMOKE_SEED = 1


@pytest.fixture(scope="module")
def tiny_scenarios():
    """Smallest-preset scenario per family, built once for the module."""
    return {
        family.name: family.build(family.smallest_preset, seed=SMOKE_SEED)
        for family in families.iter_families()
    }


class TestRegistry:
    def test_at_least_five_families(self):
        assert len(families.family_names()) >= 5

    def test_expected_families_present(self):
        names = families.family_names()
        for expected in (
            "uniform-baseline",
            "hetero-speed",
            "weighted-bus",
            "pipeline",
            "forkjoin",
            "bursty",
        ):
            assert expected in names

    def test_unknown_family_rejected_with_listing(self):
        with pytest.raises(InvalidModelError, match="available"):
            families.get_family("no-such-family")

    def test_duplicate_registration_rejected(self):
        throwaway = ScenarioFamily(
            name="throwaway-family",
            description="test",
            presets={"tiny": ScenarioParams(n_existing=5, n_current=3)},
        )
        families.register_family(throwaway)
        try:
            with pytest.raises(InvalidModelError):
                families.register_family(throwaway)
            families.register_family(throwaway, replace=True)
        finally:
            families.unregister_family("throwaway-family")
        assert "throwaway-family" not in families.family_names()

    def test_family_requires_presets(self):
        with pytest.raises(InvalidModelError):
            ScenarioFamily(name="empty", description="x", presets={})


class TestFamilyApi:
    def test_smallest_preset_is_first(self):
        for family in families.iter_families():
            assert family.smallest_preset == family.preset_names[0]

    def test_unknown_preset_rejected(self):
        family = families.get_family("uniform-baseline")
        with pytest.raises(InvalidModelError, match="available"):
            family.params("gigantic")

    def test_params_are_scenario_params(self):
        for family in families.iter_families():
            for preset in family.preset_names:
                assert isinstance(family.params(preset), ScenarioParams)

    def test_describe_mentions_every_preset(self):
        for family in families.iter_families():
            text = family.describe()
            assert family.name in text
            for preset in family.preset_names:
                assert preset in text

    def test_build_deterministic(self):
        family = families.get_family("hetero-speed")
        a = family.build("tiny", seed=7)
        b = family.build("tiny", seed=7)
        assert a.future == b.future
        assert [p.wcet for p in a.current.processes] == [
            p.wcet for p in b.current.processes
        ]


class TestFamilyTraits:
    """Each family must actually exhibit the diversity it claims."""

    def test_hetero_speed_architecture(self, tiny_scenarios):
        arch = tiny_scenarios["hetero-speed"].architecture
        assert arch.is_heterogeneous
        speeds = [node.speed for node in arch.nodes]
        assert min(speeds) < 1.0 < max(speeds)

    def test_uniform_baseline_is_homogeneous(self, tiny_scenarios):
        arch = tiny_scenarios["uniform-baseline"].architecture
        assert not arch.is_heterogeneous
        assert len({s.length for s in arch.bus.slots}) == 1

    def test_hetero_speed_biases_wcet_tables(self, tiny_scenarios):
        """Across both applications, the fastest node's WCETs must be
        systematically lower than the slowest node's."""
        scenario = tiny_scenarios["hetero-speed"]
        arch = scenario.architecture
        slowest = min(arch.nodes, key=lambda n: n.speed).id
        fastest = max(arch.nodes, key=lambda n: n.speed).id
        slow_w, fast_w = [], []
        for app in (scenario.existing, scenario.current):
            for proc in app.processes:
                if slowest in proc.wcet and fastest in proc.wcet:
                    slow_w.append(proc.wcet[slowest])
                    fast_w.append(proc.wcet[fastest])
        assert slow_w, "no process allows both extreme nodes"
        assert sum(fast_w) < sum(slow_w)

    def test_weighted_bus_slots_vary(self, tiny_scenarios):
        bus = tiny_scenarios["weighted-bus"].architecture.bus
        assert len({s.length for s in bus.slots}) > 1
        assert len({s.capacity for s in bus.slots}) > 1

    def test_pipeline_graphs_are_chains(self, tiny_scenarios):
        scenario = tiny_scenarios["pipeline"]
        for graph in scenario.current.graphs:
            assert len(graph.messages) == len(graph.processes) - 1
            for proc in graph.processes:
                assert len(graph.predecessors(proc.id)) <= 1
                assert len(graph.successors(proc.id)) <= 1

    def test_forkjoin_graphs_fork_and_join(self, tiny_scenarios):
        scenario = tiny_scenarios["forkjoin"]
        saw_fork = False
        for app in (scenario.existing, scenario.current):
            for graph in app.graphs:
                if len(graph.processes) < 4:
                    continue
                fan_out = max(
                    len(graph.successors(p.id)) for p in graph.processes
                )
                fan_in = max(
                    len(graph.predecessors(p.id)) for p in graph.processes
                )
                assert fan_out >= 2 and fan_in >= 2
                saw_fork = True
        assert saw_fork, "no graph was large enough to fork"

    def test_bursty_concentrates_on_shortest_period(self, tiny_scenarios):
        scenario = tiny_scenarios["bursty"]
        params = scenario.params
        shortest = params.hyperperiod // max(params.period_divisors)
        periods = [g.period for g in scenario.existing.graphs] + [
            g.period for g in scenario.current.graphs
        ]
        burst = sum(1 for p in periods if p == shortest)
        assert burst >= len(periods) / 2
        assert set(periods) <= {
            shortest, params.hyperperiod // min(params.period_divisors)
        }

    def test_hetero_mixed_combines_axes(self, tiny_scenarios):
        scenario = tiny_scenarios["hetero-mixed"]
        assert scenario.architecture.is_heterogeneous
        assert len({s.length for s in scenario.architecture.bus.slots}) > 1
        assert scenario.params.workload_shape == "pipeline"


class TestCodecRoundTrip:
    def test_every_family_round_trips_byte_identically(self, tiny_scenarios):
        for name, scenario in tiny_scenarios.items():
            first = json.dumps(
                scenario_to_dict(scenario), sort_keys=True, indent=2
            )
            rebuilt = scenario_from_dict(json.loads(first))
            second = json.dumps(
                scenario_to_dict(rebuilt), sort_keys=True, indent=2
            )
            assert first == second, f"family {name} does not round-trip"

    def test_round_trip_preserves_diversity_params(self, tiny_scenarios):
        scenario = tiny_scenarios["hetero-mixed"]
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt.params == scenario.params
        assert rebuilt.params.node_speeds == scenario.params.node_speeds
        assert rebuilt.params.slot_lengths == scenario.params.slot_lengths
        assert [n.speed for n in rebuilt.architecture.nodes] == [
            n.speed for n in scenario.architecture.nodes
        ]
