"""Tests for scenario generation."""

import pytest

from repro.gen.architecture_gen import random_architecture
from repro.gen.scenario import (
    ScenarioParams,
    build_scenario,
    generate_application,
    generate_future_application,
)
from repro.utils.errors import MappingError


class TestArchitectureGen:
    def test_counts(self):
        arch = random_architecture(5, slot_length=3, slot_capacity=9)
        assert len(arch) == 5
        assert arch.bus.round_length == 15
        assert arch.bus.slot_of("N3").capacity == 9

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            random_architecture(0)


class TestScenarioParams:
    def test_defaults_consistent(self):
        p = ScenarioParams()
        assert p.hyperperiod % (p.n_nodes * p.slot_length) == 0
        assert p.t_min == p.hyperperiod // p.t_min_divisor

    def test_round_must_divide_hyperperiod(self):
        with pytest.raises(ValueError):
            ScenarioParams(n_nodes=7, hyperperiod=4800, slot_length=7)

    def test_period_divisor_check(self):
        with pytest.raises(ValueError):
            ScenarioParams(hyperperiod=4800, period_divisors=(1, 7))

    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            ScenarioParams(existing_utilization=0.0)
        with pytest.raises(ValueError):
            ScenarioParams(current_utilization=1.0)

    def test_per_node_sequences_must_match_node_count(self):
        with pytest.raises(ValueError, match="node_speeds"):
            ScenarioParams(n_nodes=3, node_speeds=(1.0, 2.0))
        with pytest.raises(ValueError, match="slot_lengths"):
            ScenarioParams(n_nodes=3, slot_lengths=(4, 4))
        with pytest.raises(ValueError, match="slot_capacities"):
            ScenarioParams(n_nodes=3, slot_capacities=(16,))

    def test_per_node_values_must_be_positive(self):
        with pytest.raises(ValueError):
            ScenarioParams(n_nodes=2, hyperperiod=4800,
                           node_speeds=(1.0, 0.0))
        with pytest.raises(ValueError):
            ScenarioParams(n_nodes=2, hyperperiod=4800,
                           slot_lengths=(4, -4))

    def test_variable_slots_set_round_length(self):
        p = ScenarioParams(n_nodes=3, hyperperiod=2400,
                           slot_lengths=(2, 4, 6))
        assert p.round_length == 12
        with pytest.raises(ValueError, match="round length"):
            ScenarioParams(n_nodes=3, hyperperiod=2400,
                           slot_lengths=(3, 4, 6))

    def test_unknown_workload_shape_rejected(self):
        with pytest.raises(ValueError, match="workload shape"):
            ScenarioParams(workload_shape="spiral")

    def test_build_architecture_applies_diversity(self):
        p = ScenarioParams(
            n_nodes=2,
            hyperperiod=4800,
            node_speeds=(0.5, 1.5),
            slot_lengths=(2, 6),
            slot_capacities=(8, 24),
        )
        arch = p.build_architecture()
        assert [n.speed for n in arch.nodes] == [0.5, 1.5]
        assert [s.length for s in arch.bus.slots] == [2, 6]
        assert [s.capacity for s in arch.bus.slots] == [8, 24]


class TestDegenerateInputs:
    """Utilization rescaling must fail loudly, never divide by zero."""

    @pytest.fixture(scope="class")
    def setup(self):
        params = ScenarioParams(n_nodes=4, hyperperiod=2400)
        arch = random_architecture(4, params.slot_length, params.slot_capacity)
        return params, arch

    def test_zero_process_count_rejected(self, setup):
        params, arch = setup
        with pytest.raises(MappingError, match="n_processes"):
            generate_application("a", 0, 0.3, arch, params, rng=0)

    def test_negative_process_count_rejected(self, setup):
        params, arch = setup
        with pytest.raises(MappingError, match="n_processes"):
            generate_application("a", -5, 0.3, arch, params, rng=0)

    def test_zero_utilization_rejected(self, setup):
        params, arch = setup
        with pytest.raises(MappingError, match="utilization"):
            generate_application("a", 10, 0.0, arch, params, rng=0)

    def test_full_utilization_rejected(self, setup):
        params, arch = setup
        with pytest.raises(MappingError, match="utilization"):
            generate_application("a", 10, 1.0, arch, params, rng=0)

    def test_overcommitted_scenario_raises_mapping_error(self):
        # existing + current utilization >= 1 leaves no future slack;
        # the builder must say so instead of emitting garbage.
        params = ScenarioParams(
            n_nodes=3, hyperperiod=2400, n_existing=6, n_current=4,
            existing_utilization=0.6, current_utilization=0.5,
        )
        with pytest.raises(MappingError, match="free capacity"):
            build_scenario(params, seed=0)

    def test_single_node_architecture_buildable(self):
        # One node, no inter-node messages: still a valid scenario.
        params = ScenarioParams(
            n_nodes=1, hyperperiod=2400, n_existing=6, n_current=3,
            existing_utilization=0.4, current_utilization=0.2,
        )
        scenario = build_scenario(params, seed=1)
        assert len(scenario.architecture) == 1
        assert scenario.current.process_count == 3

    def test_near_zero_utilization_still_defined(self, setup):
        params, arch = setup
        app = generate_application("a", 8, 1e-6, arch, params, rng=0)
        # WCETs clamp at 1; the application stays valid.
        assert all(
            w >= 1 for p in app.processes for w in p.wcet.values()
        )


class TestGenerateApplication:
    @pytest.fixture(scope="class")
    def setup(self):
        params = ScenarioParams(n_nodes=4, hyperperiod=2400)
        arch = random_architecture(4, params.slot_length, params.slot_capacity)
        return params, arch

    def test_process_count(self, setup):
        params, arch = setup
        app = generate_application("a", 25, 0.3, arch, params, rng=0)
        assert app.process_count == 25

    def test_periods_divide_hyperperiod(self, setup):
        params, arch = setup
        app = generate_application("a", 25, 0.3, arch, params, rng=0)
        for g in app.graphs:
            assert params.hyperperiod % g.period == 0

    def test_utilization_near_target(self, setup):
        """Average demand lands within a factor ~2 of the target (the
        critical-path cap and rounding bend it downward)."""
        params, arch = setup
        app = generate_application("a", 40, 0.4, arch, params, rng=1)
        demand = 0.0
        for g in app.graphs:
            inst = params.hyperperiod // g.period
            demand += inst * sum(p.average_wcet for p in g.processes)
        utilization = demand / (len(arch) * params.hyperperiod)
        assert 0.1 < utilization <= 0.5

    def test_deterministic(self, setup):
        params, arch = setup
        a = generate_application("a", 20, 0.3, arch, params, rng=5)
        b = generate_application("a", 20, 0.3, arch, params, rng=5)
        assert [p.wcet for p in a.processes] == [p.wcet for p in b.processes]

    def test_unique_ids(self, setup):
        params, arch = setup
        app = generate_application("a", 30, 0.3, arch, params, rng=2)
        ids = [p.id for p in app.processes]
        assert len(set(ids)) == len(ids)


class TestBuildScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        params = ScenarioParams(n_nodes=3, hyperperiod=2400,
                                n_existing=15, n_current=8)
        return build_scenario(params, seed=1)

    def test_counts(self, scenario):
        assert scenario.existing.process_count == 15
        assert scenario.current.process_count == 8

    def test_base_schedule_frozen(self, scenario):
        entries = list(scenario.base_schedule.all_entries())
        assert entries
        assert all(e.frozen for e in entries)

    def test_base_schedule_horizon(self, scenario):
        assert scenario.base_schedule.horizon == scenario.params.hyperperiod

    def test_base_covers_existing(self, scenario):
        for graph in scenario.existing.graphs:
            inst = scenario.params.hyperperiod // graph.period
            for proc in graph.processes:
                for k in range(inst):
                    assert scenario.base_schedule.entry_of(proc.id, k)

    def test_future_consistent(self, scenario):
        f = scenario.future
        assert f.t_min == scenario.params.t_min
        assert f.t_need > 0 and f.b_need > 0
        assert len(f.wcet_distribution.values) == 4

    def test_deterministic(self, scenario):
        params = ScenarioParams(n_nodes=3, hyperperiod=2400,
                                n_existing=15, n_current=8)
        again = build_scenario(params, seed=1)
        assert again.future == scenario.future
        assert [p.wcet for p in again.current.processes] == [
            p.wcet for p in scenario.current.processes
        ]

    def test_spec_wiring(self, scenario):
        spec = scenario.spec()
        assert spec.base_schedule is scenario.base_schedule
        assert spec.current is scenario.current
        assert spec.effective_horizon() == scenario.params.hyperperiod


class TestFutureApplication:
    @pytest.fixture(scope="class")
    def scenario(self):
        params = ScenarioParams(n_nodes=3, hyperperiod=2400,
                                n_existing=12, n_current=6)
        return build_scenario(params, seed=4)

    def test_period_is_t_min(self, scenario):
        fut = generate_future_application(scenario, rng=0)
        for g in fut.graphs:
            assert g.period == scenario.future.t_min

    def test_explicit_size(self, scenario):
        fut = generate_future_application(scenario, n_processes=9, rng=0)
        assert fut.process_count == 9

    def test_derived_size_tracks_demand_fraction(self, scenario):
        small = generate_future_application(
            scenario, rng=0, demand_fraction=0.2
        )
        large = generate_future_application(
            scenario, rng=0, demand_fraction=0.8
        )
        assert small.process_count < large.process_count

    def test_wcets_from_characterized_distribution(self, scenario):
        fut = generate_future_application(scenario, rng=1)
        values = set(scenario.future.wcet_distribution.values)
        # Base WCETs come from the distribution, then node speed factors
        # scale them; verify magnitudes are in a sane envelope.
        lo = min(values) * 0.4
        hi = max(values) * 1.6
        for p in fut.processes:
            for w in p.wcet.values():
                assert lo <= w <= hi + 1
