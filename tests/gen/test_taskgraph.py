"""Tests for the random task-graph generator."""

import networkx as nx
import pytest

from repro.gen.architecture_gen import random_architecture
from repro.gen.taskgraph import GraphParams, random_process_graph, scale_graph_wcets


@pytest.fixture(scope="module")
def arch():
    return random_architecture(4)


class TestStructure:
    def test_process_count(self, arch):
        g = random_process_graph("g", 12, 100, arch, rng=0)
        assert len(g) == 12

    def test_acyclic(self, arch):
        for seed in range(5):
            g = random_process_graph("g", 15, 100, arch, rng=seed)
            assert nx.is_directed_acyclic_graph(g.as_networkx())

    def test_deterministic_by_seed(self, arch):
        a = random_process_graph("g", 10, 100, arch, rng=7)
        b = random_process_graph("g", 10, 100, arch, rng=7)
        assert [p.id for p in a.processes] == [p.id for p in b.processes]
        assert [(m.src, m.dst, m.size) for m in a.messages] == [
            (m.src, m.dst, m.size) for m in b.messages
        ]
        assert [p.wcet for p in a.processes] == [p.wcet for p in b.processes]

    def test_seeds_differ(self, arch):
        a = random_process_graph("g", 10, 100, arch, rng=1)
        b = random_process_graph("g", 10, 100, arch, rng=2)
        assert [p.wcet for p in a.processes] != [p.wcet for p in b.processes]

    def test_single_process(self, arch):
        g = random_process_graph("g", 1, 100, arch, rng=0)
        assert len(g) == 1
        assert g.messages == []

    def test_non_positive_count_rejected(self, arch):
        with pytest.raises(ValueError):
            random_process_graph("g", 0, 100, arch, rng=0)

    def test_id_prefix(self, arch):
        g = random_process_graph("g", 5, 100, arch, rng=0, id_prefix="app.g3")
        assert all(p.id.startswith("app.g3.P") for p in g.processes)

    def test_period_deadline(self, arch):
        g = random_process_graph("g", 5, 200, arch, rng=0, deadline=150)
        assert g.period == 200
        assert g.deadline == 150

    def test_every_nonsource_has_parent(self, arch):
        """Spanning edges connect every non-layer-0 process."""
        g = random_process_graph("g", 20, 100, arch, rng=3)
        nxg = g.as_networkx()
        roots = [n for n in nxg if nxg.in_degree(n) == 0]
        # All roots must reach layer-0 status: weak check -- at least
        # one root, and the graph is not fully disconnected.
        assert roots
        assert len(g.messages) >= len(g) - len(roots)


class TestWcets:
    def test_wcets_positive_and_bounded(self, arch):
        params = GraphParams(wcet_range=(10, 40), het_range=(0.5, 1.5))
        g = random_process_graph("g", 20, 100, arch, rng=0, params=params)
        for p in g.processes:
            for w in p.wcet.values():
                assert 1 <= w <= 40 * 1.5 + 1

    def test_allowed_nodes_nonempty(self, arch):
        params = GraphParams(allowed_node_prob=0.0)
        g = random_process_graph("g", 20, 100, arch, rng=0, params=params)
        for p in g.processes:
            assert len(p.allowed_nodes) == 1

    def test_allowed_node_prob_one_gives_all(self, arch):
        params = GraphParams(allowed_node_prob=1.0)
        g = random_process_graph("g", 10, 100, arch, rng=0, params=params)
        for p in g.processes:
            assert len(p.allowed_nodes) == len(arch)

    def test_custom_wcet_sampler(self, arch):
        g = random_process_graph(
            "g", 10, 100, arch, rng=0,
            params=GraphParams(het_range=(1.0, 1.0)),
            wcet_sampler=lambda r: 17,
        )
        for p in g.processes:
            assert set(p.wcet.values()) == {17}

    def test_invalid_sampler_rejected(self, arch):
        with pytest.raises(ValueError):
            random_process_graph(
                "g", 5, 100, arch, rng=0, wcet_sampler=lambda r: 0
            )

    def test_custom_msg_sampler(self, arch):
        g = random_process_graph(
            "g", 10, 100, arch, rng=0, msg_size_sampler=lambda r: 3
        )
        assert all(m.size == 3 for m in g.messages)


class TestScaling:
    def test_scale_doubles(self, arch):
        g = random_process_graph("g", 8, 100, arch, rng=0)
        scaled = scale_graph_wcets(g, 2.0)
        for p, q in zip(g.processes, scaled.processes):
            for node in p.wcet:
                assert q.wcet[node] == max(1, round(p.wcet[node] * 2.0))

    def test_scale_clamps_at_one(self, arch):
        g = random_process_graph("g", 8, 100, arch, rng=0)
        scaled = scale_graph_wcets(g, 0.0001)
        assert all(min(p.wcet.values()) == 1 for p in scaled.processes)

    def test_scale_preserves_structure(self, arch):
        g = random_process_graph("g", 8, 100, arch, rng=0)
        scaled = scale_graph_wcets(g, 3.0)
        assert [m.id for m in scaled.messages] == [m.id for m in g.messages]
        assert scaled.period == g.period

    def test_invalid_factor_rejected(self, arch):
        g = random_process_graph("g", 4, 100, arch, rng=0)
        with pytest.raises(ValueError):
            scale_graph_wcets(g, 0)


class TestShapedGraphs:
    """The pipeline / fork-join shape generators."""

    @pytest.fixture(scope="class")
    def arch(self):
        return random_architecture(4)

    def test_pipeline_is_a_chain(self, arch):
        from repro.gen.taskgraph import pipeline_process_graph

        g = pipeline_process_graph("g", 8, 100, arch, rng=0)
        assert len(g) == 8
        assert len(g.messages) == 7
        nxg = g.as_networkx()
        assert nx.is_directed_acyclic_graph(nxg)
        for proc in g.processes:
            assert len(g.predecessors(proc.id)) <= 1
            assert len(g.successors(proc.id)) <= 1
        # One source, one sink, fully connected.
        sources = [p for p in g.processes if not g.predecessors(p.id)]
        sinks = [p for p in g.processes if not g.successors(p.id)]
        assert len(sources) == 1 and len(sinks) == 1

    def test_pipeline_single_process(self, arch):
        from repro.gen.taskgraph import pipeline_process_graph

        g = pipeline_process_graph("g", 1, 100, arch, rng=0)
        assert len(g) == 1 and not g.messages

    def test_forkjoin_structure(self, arch):
        from repro.gen.taskgraph import fork_join_process_graph

        g = fork_join_process_graph("g", 10, 100, arch, rng=0)
        assert len(g) == 10
        assert nx.is_directed_acyclic_graph(g.as_networkx())
        source = "g.P0"
        sink = "g.P9"
        assert len(g.successors(source)) >= 2
        assert len(g.predecessors(sink)) >= 2
        # Every interior process lies on a source->sink branch.
        for proc in g.processes:
            if proc.id in (source, sink):
                continue
            assert g.predecessors(proc.id) and g.successors(proc.id)

    def test_forkjoin_small_degenerates_to_chain(self, arch):
        from repro.gen.taskgraph import fork_join_process_graph

        g = fork_join_process_graph("g", 3, 100, arch, rng=0)
        assert len(g.messages) == 2

    def test_shape_dispatch(self, arch):
        from repro.gen.taskgraph import GRAPH_SHAPES, make_process_graph

        assert set(GRAPH_SHAPES) == {"layered", "pipeline", "forkjoin"}
        g = make_process_graph("pipeline", "g", 4, 100, arch, rng=0)
        assert len(g.messages) == 3
        with pytest.raises(ValueError, match="unknown graph shape"):
            make_process_graph("moebius", "g", 4, 100, arch, rng=0)

    def test_shapes_deterministic(self, arch):
        from repro.gen.taskgraph import fork_join_process_graph

        a = fork_join_process_graph("g", 9, 100, arch, rng=5)
        b = fork_join_process_graph("g", 9, 100, arch, rng=5)
        assert [p.wcet for p in a.processes] == [p.wcet for p in b.processes]
        assert [(m.src, m.dst, m.size) for m in a.messages] == [
            (m.src, m.dst, m.size) for m in b.messages
        ]


class TestNodeSpeedScaling:
    """Architecture-level node speeds fold into the WCET tables."""

    def test_fast_node_gets_smaller_wcets(self):
        slow_fast = random_architecture(2, node_speeds=(0.5, 2.0))
        params = GraphParams(allowed_node_prob=1.0, het_range=(1.0, 1.0))
        g = random_process_graph("g", 30, 100, slow_fast, rng=0, params=params)
        for proc in g.processes:
            if "N0" in proc.wcet and "N1" in proc.wcet:
                assert proc.wcet["N0"] >= proc.wcet["N1"]

    def test_reference_speed_reproduces_homogeneous_draws(self):
        plain = random_architecture(3)
        explicit = random_architecture(3, node_speeds=(1.0, 1.0, 1.0))
        a = random_process_graph("g", 10, 100, plain, rng=4)
        b = random_process_graph("g", 10, 100, explicit, rng=4)
        assert [p.wcet for p in a.processes] == [p.wcet for p in b.processes]
