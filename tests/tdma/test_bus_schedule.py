"""Tests for mutable bus occupancy (BusSchedule)."""

import pytest

from repro.tdma.bus import Slot, TdmaBus
from repro.tdma.schedule import BusSchedule
from repro.utils.errors import SchedulingError
from repro.utils.intervals import Interval


@pytest.fixture
def bus() -> TdmaBus:
    return TdmaBus([Slot("N1", 2, 4), Slot("N2", 4, 8)])  # round = 6


@pytest.fixture
def sched(bus) -> BusSchedule:
    return BusSchedule(bus, horizon=24)  # 4 rounds


class TestBasics:
    def test_rounds(self, sched):
        assert sched.rounds == 4

    def test_zero_horizon_rejected(self, bus):
        with pytest.raises(SchedulingError):
            BusSchedule(bus, 0)

    def test_free_bytes_initial(self, sched):
        assert sched.free_bytes("N1", 0) == 4
        assert sched.free_bytes("N2", 3) == 8

    def test_out_of_horizon_round_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.free_bytes("N1", 4)

    def test_unknown_node_rejected(self, sched):
        with pytest.raises(Exception):
            sched.free_bytes("N9", 0)


class TestPlace:
    def test_place_and_query(self, sched):
        occ = sched.place("m1", 0, "N1", 1, 3)
        assert sched.used_bytes("N1", 1) == 3
        assert sched.free_bytes("N1", 1) == 1
        assert sched.occupancy_of("m1", 0) is occ
        assert sched.entries("N1", 1) == [occ]

    def test_place_multiple_same_slot(self, sched):
        sched.place("m1", 0, "N2", 0, 5)
        sched.place("m2", 0, "N2", 0, 3)
        assert sched.free_bytes("N2", 0) == 0

    def test_place_over_capacity_rejected(self, sched):
        sched.place("m1", 0, "N1", 0, 3)
        with pytest.raises(SchedulingError):
            sched.place("m2", 0, "N1", 0, 2)

    def test_place_duplicate_instance_rejected(self, sched):
        sched.place("m1", 0, "N1", 0, 1)
        with pytest.raises(SchedulingError):
            sched.place("m1", 0, "N1", 1, 1)

    def test_place_distinct_instances_ok(self, sched):
        sched.place("m1", 0, "N1", 0, 2)
        sched.place("m1", 1, "N1", 2, 2)
        assert sched.occupancy_of("m1", 1).round_index == 2

    def test_place_zero_size_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.place("m1", 0, "N1", 0, 0)

    def test_place_outside_horizon_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.place("m1", 0, "N1", 4, 1)


class TestRemove:
    def test_remove_restores_capacity(self, sched):
        sched.place("m1", 0, "N1", 0, 3)
        sched.remove("m1", 0)
        assert sched.free_bytes("N1", 0) == 4
        assert sched.occupancy_of("m1", 0) is None

    def test_remove_unknown_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.remove("m1", 0)

    def test_remove_frozen_rejected(self, sched):
        sched.place("m1", 0, "N1", 0, 3, frozen=True)
        with pytest.raises(SchedulingError):
            sched.remove("m1", 0)


class TestEarliestRound:
    def test_first_fit(self, sched):
        assert sched.earliest_round_with_room("N1", 4, 0) == 0

    def test_respects_ready_time(self, sched):
        # N1's slot starts at 0, 6, 12, 18; ready at 1 -> round 1.
        assert sched.earliest_round_with_room("N1", 2, 1) == 1

    def test_skips_full_slots(self, sched):
        sched.place("m1", 0, "N1", 0, 4)
        sched.place("m2", 0, "N1", 1, 4)
        assert sched.earliest_round_with_room("N1", 1, 0) == 2

    def test_partial_slot_still_fits(self, sched):
        sched.place("m1", 0, "N1", 0, 2)
        assert sched.earliest_round_with_room("N1", 2, 0) == 0

    def test_oversized_message_never_fits(self, sched):
        assert sched.earliest_round_with_room("N1", 5, 0) is None

    def test_no_room_before_horizon(self, sched):
        for r in range(4):
            sched.place(f"m{r}", 0, "N1", r, 4)
        assert sched.earliest_round_with_room("N1", 1, 0) is None

    def test_ready_past_horizon(self, sched):
        assert sched.earliest_round_with_room("N1", 1, 23) is None


class TestArrival:
    def test_arrival_is_slot_end(self, sched):
        occ = sched.place("m1", 0, "N2", 1, 4)
        # N2's slot in round 1 is [8, 12).
        assert sched.arrival_time(occ) == 12


class TestResidualQueries:
    def test_residuals_cover_all_occurrences(self, sched):
        res = sched.residuals()
        assert len(res) == 8  # 4 rounds x 2 slots
        assert all(free in (4, 8) for _, free in res)
        starts = [w.start for w, _ in res]
        assert starts == sorted(starts)

    def test_residuals_reflect_usage(self, sched):
        sched.place("m1", 0, "N1", 1, 3)
        res = {(w.start, w.end): free for w, free in sched.residuals()}
        assert res[(6, 8)] == 1

    def test_free_bytes_within_full_horizon(self, sched):
        assert sched.free_bytes_within(Interval(0, 24)) == 4 * (4 + 8)

    def test_free_bytes_within_one_round(self, sched):
        assert sched.free_bytes_within(Interval(0, 6)) == 12

    def test_free_bytes_within_partial_window_excludes_cut_slots(self, sched):
        # Window [0, 4) contains N1's slot [0, 2) fully, N2's [2, 6) cut.
        assert sched.free_bytes_within(Interval(0, 4)) == 4

    def test_free_bytes_within_accounts_usage(self, sched):
        sched.place("m1", 0, "N2", 0, 5)
        assert sched.free_bytes_within(Interval(0, 6)) == 12 - 5

    def test_free_bytes_within_matches_residual_scan(self, sched):
        sched.place("m1", 0, "N1", 1, 2)
        sched.place("m2", 0, "N2", 2, 7)
        for window in (Interval(0, 12), Interval(6, 18), Interval(5, 23)):
            brute = sum(
                free
                for w, free in sched.residuals()
                if w.start >= window.start and w.end <= window.end
            )
            assert sched.free_bytes_within(window) == brute

    def test_total_free_bytes(self, sched):
        sched.place("m1", 0, "N1", 0, 3)
        assert sched.total_free_bytes() == 4 * 12 - 3


class TestCopy:
    def test_copy_is_independent(self, sched):
        sched.place("m1", 0, "N1", 0, 2)
        clone = sched.copy()
        clone.place("m2", 0, "N1", 0, 2)
        assert sched.free_bytes("N1", 0) == 2
        assert clone.free_bytes("N1", 0) == 0

    def test_copy_preserves_entries(self, sched):
        sched.place("m1", 0, "N1", 0, 2, frozen=True)
        clone = sched.copy()
        assert clone.occupancy_of("m1", 0).frozen


class TestPartialRoundOccurrences:
    """The final partial round's early slots are usable capacity:
    occurrence accounting is per-slot, not per-complete-round."""

    @pytest.fixture
    def partial(self, bus) -> BusSchedule:
        # Horizon 8 = one complete round plus N1's slot [6, 8).
        return BusSchedule(bus, horizon=8)

    def test_occurrence_counts(self, partial):
        assert partial.rounds == 1
        assert partial.occurrence_count("N1") == 2
        assert partial.occurrence_count("N2") == 1

    def test_place_in_partial_round(self, partial):
        occ = partial.place("m1", 0, "N1", 1, 2)
        assert partial.used_bytes("N1", 1) == 2
        assert partial.arrival_time(occ) == 8  # ends exactly at horizon

    def test_partial_round_rejects_uncovered_slot(self, partial):
        with pytest.raises(SchedulingError):
            partial.place("m1", 0, "N2", 1, 2)

    def test_earliest_fit_uses_partial_round(self, partial):
        partial.place("m1", 0, "N1", 0, 4)  # round 0 full
        assert partial.earliest_round_with_room("N1", 2, 0) == 1
        assert partial.earliest_round_with_room("N2", 2, 3) is None

    def test_total_free_bytes_counts_partial_round(self, partial):
        assert partial.total_free_bytes() == (4 + 8) + 4

    def test_residuals_ordered_and_complete(self, partial):
        windows = [w for w, _ in partial.residuals()]
        assert windows == sorted(windows, key=lambda w: w.start)
        assert windows[-1] == Interval(6, 8)
        assert len(windows) == 3

    def test_copy_preserves_occurrence_counts(self, partial):
        partial.place("m1", 0, "N1", 1, 1)
        clone = partial.copy()
        assert clone.occurrence_count("N1") == 2
        assert clone.used_bytes("N1", 1) == 1
