"""Tests for the static TDMA round layout and timing arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.tdma.bus import Slot, TdmaBus, uniform_bus
from repro.utils.errors import InvalidModelError
from repro.utils.intervals import Interval


class TestSlot:
    def test_basic(self):
        s = Slot("N1", 4, 16)
        assert (s.node_id, s.length, s.capacity) == ("N1", 4, 16)

    def test_empty_node_rejected(self):
        with pytest.raises(InvalidModelError):
            Slot("", 4, 16)

    def test_zero_length_rejected(self):
        with pytest.raises(InvalidModelError):
            Slot("N1", 0, 16)

    def test_zero_capacity_rejected(self):
        with pytest.raises(InvalidModelError):
            Slot("N1", 4, 0)


@pytest.fixture
def bus() -> TdmaBus:
    """Three unequal slots: N1 at [0,2), N2 at [2,6), N3 at [6,12)."""
    return TdmaBus([Slot("N1", 2, 4), Slot("N2", 4, 8), Slot("N3", 6, 12)])


class TestStructure:
    def test_round_length(self, bus):
        assert bus.round_length == 12

    def test_len_iter(self, bus):
        assert len(bus) == 3
        assert [s.node_id for s in bus] == ["N1", "N2", "N3"]

    def test_slot_of(self, bus):
        assert bus.slot_of("N2").capacity == 8

    def test_slot_index(self, bus):
        assert bus.slot_index("N3") == 2

    def test_node_ids(self, bus):
        assert bus.node_ids() == ["N1", "N2", "N3"]

    def test_unknown_node(self, bus):
        with pytest.raises(InvalidModelError):
            bus.slot_of("N9")
        with pytest.raises(InvalidModelError):
            bus.slot_index("N9")

    def test_empty_bus_rejected(self):
        with pytest.raises(InvalidModelError):
            TdmaBus([])

    def test_duplicate_owner_rejected(self):
        with pytest.raises(InvalidModelError):
            TdmaBus([Slot("N1", 2, 4), Slot("N1", 4, 8)])

    def test_uniform_bus(self):
        b = uniform_bus(["A", "B"], 3, 9)
        assert b.round_length == 6
        assert b.slot_of("B").capacity == 9


class TestTiming:
    def test_slot_offsets(self, bus):
        assert bus.slot_offset("N1") == 0
        assert bus.slot_offset("N2") == 2
        assert bus.slot_offset("N3") == 6

    def test_occurrence_window_round0(self, bus):
        assert bus.occurrence_window("N2", 0) == Interval(2, 6)

    def test_occurrence_window_round2(self, bus):
        assert bus.occurrence_window("N3", 2) == Interval(30, 36)

    def test_negative_round_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.occurrence_window("N1", -1)

    def test_first_occurrence_at_zero(self, bus):
        assert bus.first_occurrence_not_before("N1", 0) == 0

    def test_first_occurrence_exactly_at_offset(self, bus):
        assert bus.first_occurrence_not_before("N2", 2) == 0

    def test_first_occurrence_after_offset(self, bus):
        # N2's slot starts at 2, 14, 26...; ready at 3 -> round 1.
        assert bus.first_occurrence_not_before("N2", 3) == 1

    def test_first_occurrence_far_future(self, bus):
        # N1's slot starts at 0, 12, 24, 36...; ready at 25 -> round 3.
        assert bus.first_occurrence_not_before("N1", 25) == 3

    def test_rounds_within(self, bus):
        assert bus.rounds_within(0) == 0
        assert bus.rounds_within(11) == 0
        assert bus.rounds_within(12) == 1
        assert bus.rounds_within(120) == 10

    def test_rounds_within_negative_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.rounds_within(-1)

    def test_occurrences_within(self, bus):
        occ = bus.occurrences_within("N2", 24)
        assert occ == [Interval(2, 6), Interval(14, 18)]

    def test_total_capacity_within(self, bus):
        assert bus.total_capacity_within(24) == 2 * (4 + 8 + 12)

    def test_occurrences_include_final_partial_round(self, bus):
        # Horizon 14 covers one complete round plus N1's slot of the
        # second round ([12, 14) ends exactly at the horizon).
        assert bus.rounds_within(14) == 1
        assert bus.occurrences_within("N1", 14) == [
            Interval(0, 2),
            Interval(12, 14),
        ]
        assert bus.occurrences_within("N2", 14) == [Interval(2, 6)]
        assert bus.total_capacity_within(14) == (4 + 8 + 12) + 4

    def test_window_ending_exactly_at_horizon_counts(self, bus):
        # N3's slot is [6, 12); a horizon of exactly 12 keeps it.
        assert bus.occurrence_count_within("N3", 12) == 1
        assert bus.occurrence_count_within("N3", 11) == 0
        assert bus.occurrence_count_within("N1", 2) == 1
        assert bus.occurrence_count_within("N1", 1) == 0

    @given(ready=st.integers(0, 400))
    def test_first_occurrence_is_earliest(self, ready):
        """The returned occurrence starts at or after ready; the one
        before it (if any) starts strictly before."""
        # Built inline: hypothesis forbids function-scoped fixtures.
        local_bus = TdmaBus(
            [Slot("N1", 2, 4), Slot("N2", 4, 8), Slot("N3", 6, 12)]
        )
        r = local_bus.first_occurrence_not_before("N2", ready)
        window = local_bus.occurrence_window("N2", r)
        assert window.start >= ready
        if r > 0:
            prev = local_bus.occurrence_window("N2", r - 1)
            assert prev.start < ready


def _boundary_bus() -> TdmaBus:
    """Unequal slots so partial-round boundaries are interesting."""
    return TdmaBus([Slot("N1", 2, 4), Slot("N2", 4, 8), Slot("N3", 6, 12)])


class TestBoundaryProperties:
    """Horizon-boundary audit: occurrence accounting must agree with
    occurrence windows and with first_occurrence_not_before everywhere,
    including horizons landing exactly on round/slot boundaries."""

    @given(horizon=st.integers(0, 400))
    def test_count_matches_enumerated_windows(self, horizon):
        bus = _boundary_bus()
        for node_id in bus.node_ids():
            occ = bus.occurrences_within(node_id, horizon)
            assert len(occ) == bus.occurrence_count_within(node_id, horizon)
            # Every listed window ends at or before the horizon; the
            # next one (if enumerated) would end strictly after it.
            assert all(w.end <= horizon for w in occ)
            nxt = bus.occurrence_window(node_id, len(occ))
            assert nxt.end > horizon

    @given(round_index=st.integers(0, 30))
    def test_window_end_boundary_is_inclusive(self, round_index):
        """A slot window ending exactly at the horizon counts, and the
        same occurrence is reachable via first_occurrence_not_before."""
        bus = _boundary_bus()
        for node_id in bus.node_ids():
            window = bus.occurrence_window(node_id, round_index)
            count_at_end = bus.occurrence_count_within(node_id, window.end)
            assert count_at_end == round_index + 1
            assert bus.occurrence_count_within(
                node_id, window.end - 1
            ) == round_index
            assert bus.first_occurrence_not_before(
                node_id, window.start
            ) == round_index

    @given(horizon=st.integers(0, 400))
    def test_capacity_matches_per_slot_counts(self, horizon):
        bus = _boundary_bus()
        expected = sum(
            bus.occurrence_count_within(s.node_id, horizon) * s.capacity
            for s in bus.slots
        )
        assert bus.total_capacity_within(horizon) == expected

    @given(horizon=st.integers(12, 400))
    def test_round_multiple_horizons_unchanged(self, horizon):
        """For horizons that are multiples of the round length the
        per-slot accounting degenerates to complete-round counting --
        the invariant every generated scenario relies on."""
        bus = _boundary_bus()
        horizon -= horizon % bus.round_length
        rounds = bus.rounds_within(horizon)
        for node_id in bus.node_ids():
            assert bus.occurrence_count_within(node_id, horizon) == rounds
        assert bus.total_capacity_within(horizon) == rounds * (4 + 8 + 12)
