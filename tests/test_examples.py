"""Every shipped example must run end-to-end and print its story."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Import the example as a module and invoke its main()."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_classic_mapping(self, capsys):
        out = run_example("classic_mapping.py", capsys)
        assert "Static cyclic schedule" in out
        assert "makespan" in out
        assert "m1" in out and "m3" in out

    def test_design_metrics(self, capsys):
        out = run_example("design_metrics.py", capsys)
        assert "C1P = 0%" in out
        assert "C1P = 100%" in out
        assert "C2P = 0" in out
        assert "C2P = 40" in out

    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "AH:" in out and "MH:" in out and "SA:" in out
        assert "Mapping Heuristic schedule" in out

    def test_engineering_change(self, capsys):
        out = run_example("engineering_change.py", capsys)
        assert "modified ['engine-ctl'] at total cost 3.0" in out

    @pytest.mark.slow
    def test_incremental_design(self, capsys):
        out = run_example("incremental_design.py", capsys)
        assert "mapped futures" in out
        # MH must clearly beat AH on this pinned seed.
        import re

        match = re.search(r"AH: (\d+)/12, MH: (\d+)/12", out)
        assert match is not None
        ah, mh = int(match.group(1)), int(match.group(2))
        assert mh >= ah + 4
        # The budget ladder: a tighter budget never improves the design.
        objectives = [
            float(m)
            for m in re.findall(r"evaluations -> objective\s+([\d.]+)", out)
        ]
        assert len(objectives) == 3
        assert objectives == sorted(objectives)

    def test_portfolio_search(self, capsys):
        out = run_example("portfolio_search.py", capsys)
        assert "<-- winner" in out
        assert "shared-budget" in out
        assert "cut+resume == uninterrupted: True" in out

    @pytest.mark.slow
    def test_future_proofing_sweep(self, capsys):
        out = run_example("future_proofing_sweep.py", capsys)
        assert "t_need" in out
        assert "MH obj" in out
