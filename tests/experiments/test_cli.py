"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_fig_quality_runs(self, capsys):
        code = main(
            [
                "fig-quality",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slide 15" in out

    def test_fig_future_runs(self, capsys):
        code = main(
            [
                "fig-future",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
            ]
        )
        assert code == 0
        assert "slide 17" in capsys.readouterr().out

    def test_all_runs_everything(self, capsys):
        code = main(
            [
                "all",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slide 15" in out and "slide 16" in out and "slide 17" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig-everything"])

    def test_verbose_progress(self, capsys):
        main(
            [
                "fig-runtime",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
                "-v",
            ]
        )
        assert "size=5" in capsys.readouterr().out
