"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import _nonnegative_int, _rate_cell, main


class TestRateCell:
    """Regression: zero-candidate runs must render '-', not divide."""

    def test_normal_ratio(self):
        assert _rate_cell(1, 4) == "25.0%"

    def test_zero_denominator_renders_dash(self):
        assert _rate_cell(0, 0) == "-"
        assert _rate_cell(5, 0) == "-"

    def test_negative_denominator_renders_dash(self):
        assert _rate_cell(1, -3) == "-"

    def test_nonnegative_int_accepts_zero(self):
        assert _nonnegative_int("0") == 0
        assert _nonnegative_int("7") == 7

    def test_nonnegative_int_rejects_negative(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _nonnegative_int("-1")


class TestCli:
    def test_fig_quality_runs(self, capsys):
        code = main(
            [
                "fig-quality",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slide 15" in out

    def test_fig_future_runs(self, capsys):
        code = main(
            [
                "fig-future",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
            ]
        )
        assert code == 0
        assert "slide 17" in capsys.readouterr().out

    def test_all_runs_everything(self, capsys):
        code = main(
            [
                "all",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slide 15" in out and "slide 16" in out and "slide 17" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig-everything"])

    def test_verbose_progress(self, capsys):
        main(
            [
                "fig-runtime",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
                "-v",
            ]
        )
        assert "size=5" in capsys.readouterr().out


class TestScenariosCli:
    def test_list_shows_at_least_five_families(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        from repro.gen import families

        names = families.family_names()
        assert len(names) >= 5
        for name in names:
            assert name in out

    def test_describe_family(self, capsys):
        assert main(["scenarios", "describe", "hetero-speed"]) == 0
        out = capsys.readouterr().out
        assert "hetero-speed" in out
        assert "tiny" in out

    def test_describe_unknown_family_raises(self):
        from repro.utils.errors import InvalidModelError

        with pytest.raises(InvalidModelError):
            main(["scenarios", "describe", "no-such-family"])

    def test_run_family(self, capsys):
        code = main(
            [
                "scenarios", "run", "bursty",
                "--seed", "2",
                "--sa-iterations", "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bursty" in out
        for strategy in ("AH", "MH", "SA"):
            assert strategy in out

    def test_run_can_save_scenario(self, capsys, tmp_path):
        from repro.serialize.scenario_codec import load_scenario

        path = tmp_path / "scenario.json"
        code = main(
            [
                "scenarios", "run", "uniform-baseline",
                "--strategies", "AH",
                "--save", str(path),
            ]
        )
        assert code == 0
        scenario = load_scenario(path)
        assert scenario.params.n_current == 5

    def test_sweep_prints_matrix(self, capsys):
        code = main(
            [
                "scenarios", "sweep",
                "--families", "uniform-baseline",
                "--strategies", "AH", "MH",
                "--sa-iterations", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stress matrix" in out
        assert "off" in out and "on" in out

    def test_smoke_single_family(self, capsys):
        code = main(
            [
                "scenarios", "smoke",
                "--families", "forkjoin",
                "--sa-iterations", "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "forkjoin" in out and "ok" in out

    def test_scenarios_requires_action(self):
        with pytest.raises(SystemExit):
            main(["scenarios"])

    def test_run_with_zero_budget_renders_dashes(self, capsys):
        """Regression: a run cut by ``--budget-evals 0`` reports zero
        probes and must print '-' rate cells instead of dividing."""
        code = main(
            [
                "scenarios", "run", "uniform-baseline",
                "--strategies", "MH",
                "--budget-evals", "0",
            ]
        )
        assert code == 0
        assert "-" in capsys.readouterr().out

    def test_budget_evals_rejects_negative(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "scenarios", "run", "uniform-baseline",
                    "--strategies", "MH",
                    "--budget-evals", "-1",
                ]
            )


class TestStoreCli:
    def test_run_with_sqlite_store_prints_store_stats(
        self, capsys, tmp_path
    ):
        args = [
            "scenarios", "run", "uniform-baseline",
            "--strategies", "MH",
            "--cache-store", "sqlite",
            "--cache-path", str(tmp_path / "store.sqlite"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "store hits" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "store hits" in warm

    def test_smoke_warm_store_gate(self, capsys, tmp_path):
        """The CI determinism gate: a second smoke run against a warm
        store must clear --min-store-hit-rate and reproduce the same
        design fingerprints byte-for-byte."""
        path = str(tmp_path / "smoke.sqlite")
        base = [
            "scenarios", "smoke",
            "--families", "forkjoin",
            "--sa-iterations", "30",
            "--cache-store", "sqlite",
            "--cache-path", path,
        ]
        assert main(base) == 0
        cold = capsys.readouterr().out
        assert main(base + ["--min-store-hit-rate", "0.9"]) == 0
        warm = capsys.readouterr().out

        def fingerprints(out):
            lines = iter(out.splitlines())
            block = []
            for line in lines:
                if line.strip() == "design fingerprints:":
                    for entry in lines:
                        if not entry.startswith(" "):
                            break
                        block.append(entry.strip())
                    break
            return block

        cold_prints = fingerprints(cold)
        assert cold_prints, "no fingerprint block in smoke output"
        assert fingerprints(warm) == cold_prints

    def test_smoke_cold_store_fails_hit_rate_gate(self, capsys, tmp_path):
        """A cold store cannot clear the warm-restart gate -- the CLI
        must exit non-zero, loudly."""
        code = main(
            [
                "scenarios", "smoke",
                "--families", "forkjoin",
                "--sa-iterations", "30",
                "--cache-store", "sqlite",
                "--cache-path", str(tmp_path / "cold.sqlite"),
                "--min-store-hit-rate", "0.9",
            ]
        )
        assert code == 1

    def test_sqlite_store_requires_path(self, capsys):
        code = main(
            [
                "scenarios", "run", "uniform-baseline",
                "--strategies", "MH",
                "--cache-store", "sqlite",
            ]
        )
        assert code == 2
        assert "requires --cache-path" in capsys.readouterr().err
