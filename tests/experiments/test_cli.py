"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_fig_quality_runs(self, capsys):
        code = main(
            [
                "fig-quality",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slide 15" in out

    def test_fig_future_runs(self, capsys):
        code = main(
            [
                "fig-future",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
            ]
        )
        assert code == 0
        assert "slide 17" in capsys.readouterr().out

    def test_all_runs_everything(self, capsys):
        code = main(
            [
                "all",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slide 15" in out and "slide 16" in out and "slide 17" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig-everything"])

    def test_verbose_progress(self, capsys):
        main(
            [
                "fig-runtime",
                "--sizes", "5",
                "--seeds", "1",
                "--existing", "10",
                "--sa-iterations", "20",
                "-v",
            ]
        )
        assert "size=5" in capsys.readouterr().out


class TestScenariosCli:
    def test_list_shows_at_least_five_families(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        from repro.gen import families

        names = families.family_names()
        assert len(names) >= 5
        for name in names:
            assert name in out

    def test_describe_family(self, capsys):
        assert main(["scenarios", "describe", "hetero-speed"]) == 0
        out = capsys.readouterr().out
        assert "hetero-speed" in out
        assert "tiny" in out

    def test_describe_unknown_family_raises(self):
        from repro.utils.errors import InvalidModelError

        with pytest.raises(InvalidModelError):
            main(["scenarios", "describe", "no-such-family"])

    def test_run_family(self, capsys):
        code = main(
            [
                "scenarios", "run", "bursty",
                "--seed", "2",
                "--sa-iterations", "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bursty" in out
        for strategy in ("AH", "MH", "SA"):
            assert strategy in out

    def test_run_can_save_scenario(self, capsys, tmp_path):
        from repro.serialize.scenario_codec import load_scenario

        path = tmp_path / "scenario.json"
        code = main(
            [
                "scenarios", "run", "uniform-baseline",
                "--strategies", "AH",
                "--save", str(path),
            ]
        )
        assert code == 0
        scenario = load_scenario(path)
        assert scenario.params.n_current == 5

    def test_sweep_prints_matrix(self, capsys):
        code = main(
            [
                "scenarios", "sweep",
                "--families", "uniform-baseline",
                "--strategies", "AH", "MH",
                "--sa-iterations", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stress matrix" in out
        assert "off" in out and "on" in out

    def test_smoke_single_family(self, capsys):
        code = main(
            [
                "scenarios", "smoke",
                "--families", "forkjoin",
                "--sa-iterations", "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "forkjoin" in out and "ok" in out

    def test_scenarios_requires_action(self):
        with pytest.raises(SystemExit):
            main(["scenarios"])
