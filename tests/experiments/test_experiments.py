"""Tests for the experiment harnesses (tiny configurations)."""

import pytest

from repro.experiments.fig_future import FutureRow, fig_future
from repro.experiments.fig_future import render as render_future
from repro.experiments.fig_quality import (
    QualityRow,
    deviation,
    fig_quality,
)
from repro.experiments.fig_quality import render as render_quality
from repro.experiments.fig_runtime import RuntimeRow, fig_runtime
from repro.experiments.fig_runtime import render as render_runtime
from repro.experiments.runner import (
    ExperimentConfig,
    cache_statistics,
    mean,
    run_comparison,
)
from repro.gen.scenario import ScenarioParams


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig(
        current_sizes=(6, 10),
        n_existing=12,
        seeds=(1,),
        sa_iterations=40,
        scenario_params=ScenarioParams(n_nodes=3, hyperperiod=2400),
        future_apps_per_scenario=3,
    )


@pytest.fixture(scope="module")
def records(config):
    return run_comparison(config)


class TestRunner:
    def test_one_record_per_cell(self, config, records):
        assert len(records) == len(config.current_sizes) * len(config.seeds)

    def test_all_strategies_present(self, records):
        for record in records:
            assert set(record.results) == {"AH", "MH", "SA"}

    def test_cache_statistics_derives_strategies(self, config):
        subset = run_comparison(config, strategies=("MH",))
        rows = cache_statistics(subset)
        assert [row[0] for row in rows] == ["MH"]
        name, evaluations, hits, misses, rate = rows[0]
        assert evaluations >= hits + misses
        assert 0.0 <= rate <= 1.0

    def test_objectives_finite_for_valid(self, records):
        for record in records:
            for result in record.results.values():
                if result.valid:
                    assert result.objective < float("inf")

    def test_scenario_matches_cell(self, records, config):
        for record in records:
            assert record.scenario.current.process_count == record.size
            assert (
                record.scenario.existing.process_count == config.n_existing
            )

    def test_mean_helper(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestDeviation:
    def test_basic(self):
        assert deviation(20.0, 10.0) == 100.0

    def test_floor_denominator(self):
        assert deviation(5.0, 0.0) == 500.0

    def test_negative_possible(self):
        assert deviation(5.0, 10.0) == -50.0


class TestFigQuality:
    def test_rows(self, config, records):
        rows = fig_quality(config, records)
        assert [r.size for r in rows] == list(config.current_sizes)
        for row in rows:
            assert isinstance(row, QualityRow)
            assert row.scenarios >= 1
            # MH never worse than SA+descent by more than noise; AH at
            # least as bad as MH on average.
            assert row.avg_deviation_mh >= -1e-6
            assert row.avg_deviation_ah >= row.avg_deviation_mh - 1e-6

    def test_render(self, config, records):
        out = render_quality(fig_quality(config, records))
        assert "AH dev %" in out
        assert "slide 15" in out


class TestFigRuntime:
    # Wall-clock ordering with headroom: these tiny cells finish in
    # tens of milliseconds, where one GC pause or a loaded machine can
    # inflate a single strategy run several-fold.  A structural
    # inversion (MH slower than SA) overshoots this bound by far.
    NOISE = 2.0
    EPS = 0.01

    def test_rows(self, config, records):
        rows = fig_runtime(config, records)
        for row in rows:
            assert isinstance(row, RuntimeRow)
            assert 0 <= row.avg_runtime_ah
            assert (
                row.avg_runtime_ah
                <= row.avg_runtime_mh * self.NOISE + self.EPS
            )
            assert (
                row.avg_runtime_mh
                <= row.avg_runtime_sa * self.NOISE + self.EPS
            )

    def test_render(self, config, records):
        out = render_runtime(fig_runtime(config, records))
        assert "SA [s]" in out


class TestFigFuture:
    def test_rows(self, config):
        rows = fig_future(config)
        assert rows
        for row in rows:
            assert isinstance(row, FutureRow)
            assert 0.0 <= row.pct_mapped_ah <= 100.0
            assert 0.0 <= row.pct_mapped_mh <= 100.0
            assert row.future_apps == (
                row.scenarios * config.future_apps_per_scenario
            )

    def test_render(self, config):
        out = render_future(fig_future(config))
        assert "MH mapped %" in out

    def test_reuses_records(self, config, records):
        rows = fig_future(config, records)
        assert rows


class TestPaperPreset:
    def test_paper_scale_values(self):
        paper = ExperimentConfig.paper()
        assert paper.current_sizes == (40, 80, 160, 240, 320)
        assert paper.n_existing == 400
        assert paper.n_future_processes == 80
        assert paper.scenario_params.n_nodes == 10
