"""Tests for the ASCII table renderer."""

from repro.experiments.reporting import format_table


class TestFormatTable:
    def test_headers_and_rows(self):
        out = format_table(["a", "bb"], [(1, 2.5), (30, 4.0)])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [(1,)], title="My Figure")
        assert out.splitlines()[0] == "My Figure"

    def test_float_precision_small_vs_large(self):
        out = format_table(["x"], [(0.0061,), (123.456,)])
        assert "0.006" in out
        assert "123.5" in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_column_alignment(self):
        out = format_table(["name", "v"], [("aa", 1), ("bbbb", 22)])
        lines = out.splitlines()
        # All data rows share the header's width.
        assert len(lines[2]) == len(lines[3]) == len(lines[0])

    def test_strings_pass_through(self):
        out = format_table(["s"], [("hello",)])
        assert "hello" in out
