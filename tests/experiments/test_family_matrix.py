"""Tests for the scenario-family stress matrix and CI smoke sweep."""

import pytest

from repro.experiments.runner import (
    design_identity,
    run_family_matrix,
    run_family_smoke,
)
from repro.gen import families


class TestFamilySmoke:
    """The acceptance gate for new families: every registered family's
    smallest preset must run AH, MH and SA to a valid schedule,
    byte-identically with the cache on/off and with two workers, and
    round-trip the JSON codec byte-identically."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_family_smoke(sa_iterations=60)

    def test_covers_every_registered_family(self, results):
        assert [r.family for r in results] == families.family_names()
        assert len(results) >= 5

    def test_all_families_pass(self, results):
        failures = {r.family: r.failures for r in results if not r.ok}
        assert not failures, f"smoke failures: {failures}"

    def test_all_strategies_solved_each_family(self, results):
        for smoke in results:
            assert set(smoke.objectives) == {"AH", "MH", "SA"}

    def test_build_failure_is_reported_not_raised(self):
        from repro.gen.families import ScenarioFamily, register_family, \
            unregister_family
        from repro.gen.scenario import ScenarioParams

        # Utilizations that leave no future capacity fail the build
        # with a MappingError; the smoke runner must report it.
        bad = ScenarioFamily(
            name="doomed-family",
            description="always unbuildable",
            presets={
                "tiny": ScenarioParams(
                    n_existing=5,
                    n_current=3,
                    existing_utilization=0.6,
                    current_utilization=0.5,
                )
            },
        )
        register_family(bad)
        try:
            results = run_family_smoke(
                family_names=["doomed-family"], sa_iterations=10
            )
        finally:
            unregister_family("doomed-family")
        assert len(results) == 1
        assert not results[0].ok
        assert "build failed" in results[0].failures[0]


class TestFamilyMatrix:
    @pytest.fixture(scope="class")
    def records(self):
        return run_family_matrix(
            family_names=["uniform-baseline", "pipeline"],
            seeds=(1,),
            strategies=("AH", "MH"),
            sa_iterations=40,
        )

    def test_grid_is_complete(self, records):
        cells = {(r.family, r.strategy, r.use_cache) for r in records}
        assert len(cells) == 2 * 2 * 2
        assert len(records) == len(cells)

    def test_all_cells_valid(self, records):
        assert all(r.result.valid for r in records)

    def test_cache_modes_produce_identical_designs(self, records):
        by_cell = {}
        for record in records:
            key = (record.family, record.seed, record.strategy)
            by_cell.setdefault(key, {})[record.use_cache] = record.result
        for key, modes in by_cell.items():
            assert design_identity(modes[True]) == design_identity(
                modes[False]
            ), f"cache on/off designs differ for {key}"

    def test_matrix_uses_smallest_preset_by_default(self, records):
        for record in records:
            family = families.get_family(record.family)
            assert record.preset == family.smallest_preset


class TestDesignIdentity:
    def test_invalid_results_share_identity(self):
        from repro.core.strategy import DesignResult

        a = DesignResult("AH", valid=False)
        b = DesignResult("MH", valid=False)
        assert design_identity(a) == design_identity(b)
