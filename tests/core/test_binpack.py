"""Tests for the bin-packing policies of the first design criterion."""

import pytest
from hypothesis import given, strategies as st

from repro.core.binpack import POLICIES, best_fit, first_fit, worst_fit


class TestBestFit:
    def test_everything_fits_one_bin(self):
        result = best_fit([3, 4], [10])
        assert result.unplaced == []
        assert result.placed_total == 7
        assert result.residuals == [3]

    def test_nothing_fits(self):
        result = best_fit([5, 6], [4, 4])
        assert sorted(result.unplaced) == [5, 6]
        assert result.unplaced_fraction == 1.0

    def test_picks_tightest_bin(self):
        result = best_fit([4], [10, 5, 6])
        # The size-5 bin is the snuggest.
        assert result.residuals == [10, 1, 6]

    def test_decreasing_order_helps(self):
        # Objects 6, 4 into bins 6, 4: decreasing packs both.
        result = best_fit([4, 6], [6, 4])
        assert result.unplaced == []

    def test_partial_packing_fraction(self):
        result = best_fit([4, 4, 4], [4, 4])
        assert result.unplaced == [4]
        assert result.unplaced_fraction == pytest.approx(1 / 3)

    def test_empty_objects(self):
        result = best_fit([], [5])
        assert result.placed == []
        assert result.unplaced_fraction == 0.0

    def test_empty_bins(self):
        result = best_fit([3], [])
        assert result.unplaced == [3]

    def test_zero_capacity_bin_unusable(self):
        result = best_fit([1], [0])
        assert result.unplaced == [1]

    def test_invalid_object_rejected(self):
        with pytest.raises(ValueError):
            best_fit([0], [5])

    def test_invalid_bin_rejected(self):
        with pytest.raises(ValueError):
            best_fit([1], [-1])

    def test_bin_indices_reported(self):
        result = best_fit([4, 3], [3, 4])
        assert sorted(result.placed) == [(3, 0), (4, 1)]

    def test_exact_fill_removes_bin_from_pool(self):
        result = best_fit([4, 1], [4])
        assert result.placed == [(4, 0)]
        assert result.unplaced == [1]


class TestOtherPolicies:
    def test_first_fit_takes_first(self):
        result = first_fit([4], [10, 5])
        assert result.residuals == [6, 5]

    def test_worst_fit_takes_emptiest(self):
        result = worst_fit([4], [10, 5])
        assert result.residuals == [6, 5]
        result = worst_fit([4], [5, 10])
        assert result.residuals == [5, 6]

    def test_worst_fit_fragments_more_than_best_fit(self):
        """The ablation's premise: with mixed sizes, worst-fit wastes
        the big bins on small objects and fails the big objects."""
        objects = [8, 2, 2, 2, 2]
        bins = [8, 4, 4]
        assert best_fit(objects, bins).unplaced_total <= worst_fit(
            objects, bins
        ).unplaced_total

    def test_policies_registry(self):
        assert set(POLICIES) == {"best-fit", "first-fit", "worst-fit"}


@st.composite
def packing_instance(draw):
    objects = draw(st.lists(st.integers(1, 30), max_size=30))
    bins = draw(st.lists(st.integers(0, 50), max_size=15))
    return objects, bins


class TestPackingProperties:
    @given(packing_instance())
    def test_conservation(self, instance):
        objects, bins = instance
        for policy in POLICIES.values():
            result = policy(objects, bins)
            assert result.placed_total + result.unplaced_total == sum(objects)

    @given(packing_instance())
    def test_no_bin_overflows(self, instance):
        objects, bins = instance
        for policy in POLICIES.values():
            result = policy(objects, bins)
            used = [0] * len(bins)
            for size, idx in result.placed:
                used[idx] += size
            for idx, cap in enumerate(bins):
                assert used[idx] <= cap
                assert result.residuals[idx] == cap - used[idx]

    @given(packing_instance())
    def test_unplaced_objects_truly_do_not_fit(self, instance):
        """Best-fit never leaves an object unplaced while a bin with
        room exists at the moment of placement -- check the weaker
        final-state invariant: every unplaced object is larger than
        every final residual."""
        objects, bins = instance
        result = best_fit(objects, bins)
        if result.unplaced:
            smallest_unplaced = min(result.unplaced)
            assert all(res < smallest_unplaced for res in result.residuals)

    @given(packing_instance())
    def test_best_fit_matches_reference_greedy(self, instance):
        """The bisect-based best-fit equals a brute-force best-fit."""
        objects, bins = instance
        fast = best_fit(objects, bins)

        residuals = list(bins)
        unplaced = []
        for size in sorted(objects, reverse=True):
            best_idx, best_res = -1, None
            for i, res in enumerate(residuals):
                if res >= size and (best_res is None or res < best_res):
                    best_idx, best_res = i, res
            if best_idx < 0:
                unplaced.append(size)
            else:
                residuals[best_idx] -= size
        assert sorted(fast.unplaced) == sorted(unplaced)
        assert sorted(fast.residuals) == sorted(residuals)


class TestLeanUnplacedKernel:
    """best_fit_unplaced_total == best_fit for the same multisets."""

    @given(
        st.lists(
            st.sampled_from([2, 4, 6, 8, 20, 50, 100, 150]),
            max_size=60,
        ),
        st.lists(st.integers(min_value=0, max_value=400), max_size=40),
    )
    def test_matches_full_best_fit(self, sizes, bins):
        from repro.core.binpack import best_fit_unplaced_total

        ordered = sorted(sizes, reverse=True)
        assert best_fit_unplaced_total(ordered, bins) == best_fit(
            ordered, bins, decreasing=False
        ).unplaced_total

    def test_equal_size_runs_drain_batched(self):
        from repro.core.binpack import best_fit_unplaced_total

        # 5 objects of size 20 into bins 70 and 50: 3 + 2 placed.
        assert best_fit_unplaced_total([20] * 5, [70, 50]) == 0
        # A sixth object no longer fits usefully (residuals 10, 10).
        assert best_fit_unplaced_total([20] * 6, [70, 50]) == 20

    def test_presorted_run_batching_matches_per_object(self):
        from repro.core.binpack import best_fit_unplaced_total

        ordered = [50, 50, 20, 20, 20, 2, 2]
        bins = [61, 55, 23]
        reference = best_fit(ordered, bins, decreasing=False).unplaced_total
        assert best_fit_unplaced_total(ordered, bins) == reference
