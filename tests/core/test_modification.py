"""Tests for the modification-aware design extension."""

import pytest

from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.core.modification import (
    ExistingApplication,
    ModificationResult,
    design_with_modifications,
)
from repro.model.application import Application
from repro.model.process_graph import Process, ProcessGraph
from repro.utils.errors import InvalidModelError

from tests.conftest import make_chain_graph


def heavy_app(name: str, wcet: int, nodes=("N1", "N2"), period: int = 80) -> Application:
    """One big process per node-count, eating most of the horizon."""
    g = ProcessGraph("g0", period)
    g.add_process(Process(f"{name}.hog", {n: wcet for n in nodes}))
    return Application(name, [g])


def light_future() -> FutureCharacterization:
    return FutureCharacterization(
        t_min=40,
        t_need=4,
        b_need=2,
        wcet_distribution=DiscreteDistribution((4,), (1.0,)),
        message_size_distribution=DiscreteDistribution((2,), (1.0,)),
    )


@pytest.fixture
def current(arch2) -> Application:
    return Application("current", [make_chain_graph(prefix="cur.")])


@pytest.fixture
def urgent_current(arch2) -> Application:
    """A chain that must finish by 30 -- before any frozen hog ends."""
    return Application(
        "current", [make_chain_graph(prefix="cur.", deadline=30)]
    )


class TestExistingApplication:
    def test_negative_cost_rejected(self, arch2):
        with pytest.raises(InvalidModelError):
            ExistingApplication(heavy_app("e", 10), -1.0)

    def test_name_passthrough(self):
        item = ExistingApplication(heavy_app("legacy", 10), 5.0)
        assert item.name == "legacy"


class TestNoModificationNeeded:
    def test_k0_when_room_exists(self, arch2, current):
        existing = [ExistingApplication(heavy_app("e1", 10), 100.0)]
        out = design_with_modifications(
            arch2, existing, current, light_future()
        )
        assert out.valid
        assert out.modified == []
        assert out.total_cost == 0.0
        assert out.attempts == 1

    def test_no_existing_apps_at_all(self, arch2, current):
        out = design_with_modifications(arch2, [], current, light_future())
        assert out.valid
        assert out.modified == []


class TestModificationTriggered:
    def test_unfreezes_cheapest_first(self, arch2, urgent_current):
        """Two frozen hogs cover [0, 40) on both nodes; the urgent chain
        (deadline 30) only fits after the cheaper hog is remapped."""
        e_cheap = ExistingApplication(heavy_app("cheap", 40), 1.0)
        e_dear = ExistingApplication(heavy_app("dear", 40), 50.0)
        out = design_with_modifications(
            arch2, [e_cheap, e_dear], urgent_current, light_future()
        )
        assert out.valid
        assert out.modified == ["cheap"]
        assert out.total_cost == 1.0
        assert out.attempts == 2  # k=0 failed, k=1 succeeded

    def test_impossible_returns_invalid(self, arch2, current):
        """Demand beyond platform capacity fails even at full redesign."""
        hogs = [
            ExistingApplication(heavy_app(f"hog{i}", 75), 1.0)
            for i in range(3)
        ]
        out = design_with_modifications(
            arch2, hogs, current, light_future()
        )
        assert not out.valid
        assert out.design is None
        assert out.attempts >= 1

    def test_max_modified_bound(self, arch2, current):
        hogs = [
            ExistingApplication(heavy_app(f"hog{i}", 75), 1.0)
            for i in range(2)
        ]
        out = design_with_modifications(
            arch2, hogs, current, light_future(), max_modified=0
        )
        assert not out.valid
        # Only the k=0 subset may be attempted.
        assert out.attempts == 1


class TestModifiedDesignQuality:
    def test_movable_set_fully_scheduled(self, arch2, urgent_current):
        e1 = ExistingApplication(heavy_app("e1", 40), 1.0)
        e2 = ExistingApplication(heavy_app("e2", 40), 2.0)
        out = design_with_modifications(
            arch2, [e1, e2], urgent_current, light_future()
        )
        assert out.valid
        schedule = out.design.schedule
        # Current chain and every modified hog appear in the schedule.
        for pid in ("cur.P0", "cur.P1", "cur.P2"):
            assert schedule.entry_of(pid, 0) is not None
        assert schedule.entry_of("cur.P2", 0).end <= 30  # deadline held
        for name in out.modified:
            assert schedule.entry_of(f"{name}.hog", 0) is not None

    def test_unmodified_stay_frozen(self, arch2, urgent_current):
        e1 = ExistingApplication(heavy_app("e1", 40), 1.0)
        e2 = ExistingApplication(heavy_app("e2", 40), 2.0)
        out = design_with_modifications(
            arch2, [e1, e2], urgent_current, light_future()
        )
        assert out.valid
        assert out.modified  # modification was required
        schedule = out.design.schedule
        frozen_names = {e.name for e in (e1, e2)} - set(out.modified)
        for name in frozen_names:
            entry = schedule.entry_of(f"{name}.hog", 0)
            assert entry is not None
            assert entry.frozen

    def test_strategy_kwargs_forwarded(self, arch2, current):
        existing = [ExistingApplication(heavy_app("e1", 10), 1.0)]
        out = design_with_modifications(
            arch2,
            existing,
            current,
            light_future(),
            strategy="SA",
            iterations=20,
            seed=0,
        )
        assert out.valid
