"""Tests for slack extraction and fragmentation statistics."""

import pytest

from repro.core.slack import (
    FragmentationStats,
    bus_slack_containers,
    processor_slack_containers,
    slack_fragmentation,
    window_slack_profile,
)
from repro.sched.schedule import SystemSchedule


@pytest.fixture
def sched(arch2) -> SystemSchedule:
    """N1 busy [10,30) and [50,60); N2 free; horizon 80 (10 rounds)."""
    s = SystemSchedule(arch2, 80)
    s.place_process("A", 0, "N1", 10, 20)
    s.place_process("B", 0, "N1", 50, 10)
    return s


class TestProcessorContainers:
    def test_gap_lengths(self, sched):
        containers = processor_slack_containers(sched)
        # N1: gaps 10, 20, 20; N2: one gap of 80.
        assert sorted(containers) == [10, 20, 20, 80]

    def test_min_size_filter(self, sched):
        assert sorted(processor_slack_containers(sched, min_size=15)) == [
            20,
            20,
            80,
        ]

    def test_fully_busy_node_contributes_nothing(self, arch2):
        s = SystemSchedule(arch2, 40)
        s.place_process("A", 0, "N1", 0, 40)
        s.place_process("B", 0, "N2", 0, 40)
        assert processor_slack_containers(s) == []


class TestBusContainers:
    def test_all_free(self, sched):
        containers = bus_slack_containers(sched)
        # 10 rounds x 2 slots of 8 bytes.
        assert containers == [8] * 20

    def test_reflects_usage(self, sched):
        sched.bus.place("m", 0, "N1", 0, 5)
        containers = bus_slack_containers(sched)
        assert sorted(containers)[0] == 3

    def test_min_size_filter_drops_full(self, sched):
        sched.bus.place("m", 0, "N1", 0, 8)
        assert len(bus_slack_containers(sched)) == 19


class TestFragmentation:
    def test_stats(self, sched):
        frag = slack_fragmentation(sched)
        n1 = frag["N1"]
        assert n1.total_slack == 50
        assert n1.gap_count == 3
        assert n1.largest_gap == 20
        assert n1.fragmentation == pytest.approx(1 - 20 / 50)

    def test_contiguous_slack_zero_fragmentation(self, sched):
        assert slack_fragmentation(sched)["N2"].fragmentation == 0.0

    def test_fully_busy_zero_fragmentation(self):
        assert FragmentationStats(0, 0, 0).fragmentation == 0.0


class TestWindowProfile:
    def test_profile_values(self, sched):
        profile = window_slack_profile(sched, 40)
        # N1 windows: [0,40) has 20 busy -> 20 slack; [40,80) 10 busy -> 30.
        assert profile["N1"] == [20, 30]
        assert profile["N2"] == [40, 40]

    def test_profile_window_equals_horizon(self, sched):
        profile = window_slack_profile(sched, 80)
        assert profile["N1"] == [50]
