"""Behavioural tests for AH, MH and SA on small generated scenarios."""

import pytest

from repro.core.adhoc import AdHocStrategy
from repro.core.mapping_heuristic import MappingHeuristic
from repro.core.simulated_annealing import SimulatedAnnealing
from repro.gen.scenario import ScenarioParams, build_scenario
from repro.sched.list_scheduler import ListScheduler


@pytest.fixture(scope="module")
def scenario():
    """One shared small scenario (module scope keeps the suite fast)."""
    params = ScenarioParams(n_nodes=3, hyperperiod=2400,
                            n_existing=18, n_current=10)
    return build_scenario(params, seed=3)


@pytest.fixture(scope="module")
def ah_result(scenario):
    return AdHocStrategy().design(scenario.spec())


@pytest.fixture(scope="module")
def mh_result(scenario):
    return MappingHeuristic(max_iterations=12).design(scenario.spec())


@pytest.fixture(scope="module")
def sa_result(scenario):
    return SimulatedAnnealing(iterations=150, seed=11).design(scenario.spec())


class TestAdHoc:
    def test_valid(self, ah_result):
        assert ah_result.valid
        assert ah_result.mapping.is_complete()
        ah_result.schedule.validate()

    def test_single_evaluation(self, ah_result):
        assert ah_result.evaluations == 1

    def test_metrics_reported(self, ah_result):
        assert ah_result.metrics is not None
        assert ah_result.objective >= 0


class TestMappingHeuristic:
    def test_valid(self, mh_result):
        assert mh_result.valid
        mh_result.schedule.validate()

    def test_not_worse_than_ah(self, ah_result, mh_result):
        assert mh_result.objective <= ah_result.objective

    def test_performs_multiple_evaluations(self, mh_result):
        assert mh_result.evaluations > 1

    def test_deterministic(self, scenario, mh_result):
        again = MappingHeuristic(max_iterations=12).design(scenario.spec())
        assert again.objective == mh_result.objective
        assert again.mapping.as_dict() == mh_result.mapping.as_dict()

    def test_respects_requirement_a(self, scenario, mh_result):
        """Every frozen (existing) entry is untouched in the MH design."""
        base = scenario.base_schedule
        designed = mh_result.schedule
        for entry in base.all_entries():
            kept = designed.entry_of(entry.process_id, entry.instance)
            assert kept is not None
            assert (kept.node_id, kept.start, kept.end) == (
                entry.node_id,
                entry.start,
                entry.end,
            )
            assert kept.frozen

    def test_deadlines_met(self, scenario, mh_result):
        """Requirement (a): the current application is schedulable."""
        designed = mh_result.schedule
        for graph in scenario.current.graphs:
            for k in range(designed.horizon // graph.period):
                deadline = k * graph.period + graph.deadline
                for proc in graph.processes:
                    entry = designed.entry_of(proc.id, k)
                    assert entry is not None
                    assert entry.end <= deadline

    def test_zero_iterations_equals_initial(self, scenario, ah_result):
        result = MappingHeuristic(max_iterations=0).design(scenario.spec())
        assert result.objective == pytest.approx(ah_result.objective)

    def test_message_moves_can_be_disabled(self, scenario):
        result = MappingHeuristic(
            max_iterations=4, use_message_moves=False
        ).design(scenario.spec())
        assert result.valid


class TestSimulatedAnnealing:
    def test_valid(self, sa_result):
        assert sa_result.valid
        sa_result.schedule.validate()

    def test_not_worse_than_ah(self, ah_result, sa_result):
        assert sa_result.objective <= ah_result.objective

    def test_deterministic_for_seed(self, scenario, sa_result):
        again = SimulatedAnnealing(iterations=150, seed=11).design(
            scenario.spec()
        )
        assert again.objective == sa_result.objective

    def test_different_seeds_explore_differently(self, scenario):
        a = SimulatedAnnealing(iterations=60, seed=1, polish=False).design(
            scenario.spec()
        )
        b = SimulatedAnnealing(iterations=60, seed=2, polish=False).design(
            scenario.spec()
        )
        # Both valid; mappings typically differ (not guaranteed equal
        # objectives -- just check both are sane).
        assert a.valid and b.valid

    def test_polish_never_hurts(self, scenario):
        raw = SimulatedAnnealing(iterations=60, seed=5, polish=False).design(
            scenario.spec()
        )
        polished = SimulatedAnnealing(iterations=60, seed=5, polish=True).design(
            scenario.spec()
        )
        assert polished.objective <= raw.objective

    def test_respects_requirement_a(self, scenario, sa_result):
        base = scenario.base_schedule
        designed = sa_result.schedule
        for entry in base.all_entries():
            kept = designed.entry_of(entry.process_id, entry.instance)
            assert kept is not None and kept.frozen


class TestRescheduleConsistency:
    def test_mh_design_reproducible_from_mapping(self, scenario, mh_result):
        """Rescheduling the reported (mapping, priorities, delays) with
        the list scheduler reproduces the reported schedule exactly."""
        scheduler = ListScheduler(scenario.architecture)
        result = scheduler.try_schedule(
            scenario.current,
            mh_result.mapping,
            base=scenario.base_schedule,
            priorities=mh_result.priorities,
            message_delays=mh_result.message_delays,
        )
        assert result.success
        for entry in mh_result.schedule.all_entries():
            again = result.schedule.entry_of(entry.process_id, entry.instance)
            assert again is not None
            assert (again.node_id, again.start, again.end) == (
                entry.node_id,
                entry.start,
                entry.end,
            )
