"""Tests for the shared steepest-descent machinery."""

import pytest

from repro.core.improvement import (
    DescentParams,
    best_improving_move,
    generate_moves,
    schedule_neighbours,
    select_candidates,
    steepest_descent,
)
from repro.core.strategy import DesignEvaluator
from repro.core.transformations import (
    CandidateDesign,
    DelayMessage,
    RemapProcess,
    SwapPriorities,
)
from repro.gen.scenario import ScenarioParams, build_scenario
from repro.sched.priorities import hcp_priorities
from repro.core.initial_mapping import InitialMapper


@pytest.fixture(scope="module")
def setup():
    params = ScenarioParams(n_nodes=3, hyperperiod=2400,
                            n_existing=15, n_current=8)
    scenario = build_scenario(params, seed=2)
    spec = scenario.spec()
    mapper = InitialMapper(scenario.architecture)
    mapping, _ = mapper.try_map_and_schedule(
        scenario.current, base=scenario.base_schedule
    )
    evaluator = DesignEvaluator(spec)
    start = evaluator.evaluate(
        CandidateDesign(
            mapping, hcp_priorities(scenario.current, scenario.architecture.bus)
        )
    )
    assert start is not None
    return scenario, spec, evaluator, start


class TestCandidateSelection:
    def test_pool_size_respected(self, setup):
        _, spec, _, start = setup
        assert len(select_candidates(spec, start, 3)) == 3

    def test_pool_larger_than_app(self, setup):
        scenario, spec, _, start = setup
        candidates = select_candidates(spec, start, 999)
        assert len(candidates) == scenario.current.process_count

    def test_candidates_are_current_processes(self, setup):
        scenario, spec, _, start = setup
        for pid in select_candidates(spec, start, 5):
            assert pid in scenario.current

    def test_deterministic(self, setup):
        _, spec, _, start = setup
        assert select_candidates(spec, start, 5) == select_candidates(
            spec, start, 5
        )


class TestMoveGeneration:
    def test_moves_reference_current_app_only(self, setup):
        scenario, spec, _, start = setup
        moves = generate_moves(spec, start, DescentParams(pool_size=4))
        for move in moves:
            if isinstance(move, RemapProcess):
                assert move.process_id in scenario.current
            elif isinstance(move, SwapPriorities):
                assert move.first in scenario.current
                assert move.second in scenario.current
            elif isinstance(move, DelayMessage):
                assert scenario.current.message(move.message_id)

    def test_remaps_only_to_allowed_other_nodes(self, setup):
        scenario, spec, _, start = setup
        moves = generate_moves(spec, start, DescentParams(pool_size=4))
        for move in moves:
            if isinstance(move, RemapProcess):
                proc = scenario.current.process(move.process_id)
                assert move.node_id in proc.allowed_nodes
                assert move.node_id != start.mapping.node_of(move.process_id)

    def test_message_moves_can_be_disabled(self, setup):
        _, spec, _, start = setup
        moves = generate_moves(
            spec, start, DescentParams(pool_size=8, use_message_moves=False)
        )
        assert not any(isinstance(m, DelayMessage) for m in moves)


class TestNeighbours:
    def test_neighbours_share_node(self, setup):
        scenario, spec, _, start = setup
        for pid in select_candidates(spec, start, 4):
            node = start.mapping.node_of(pid)
            for n in schedule_neighbours(spec, start.schedule, pid, node):
                assert start.mapping.node_of(n) == node


class TestDescent:
    def test_descent_monotone(self, setup):
        _, spec, evaluator, start = setup
        result = steepest_descent(spec, evaluator, start, DescentParams(max_iterations=6))
        assert result.objective <= start.objective

    def test_descent_zero_iterations_is_start(self, setup):
        _, spec, evaluator, start = setup
        result = steepest_descent(
            spec, evaluator, start, DescentParams(max_iterations=0)
        )
        assert result is start

    def test_best_improving_none_when_no_moves(self, setup):
        _, _, evaluator, start = setup
        assert best_improving_move(evaluator, start, [], 1e-9) is None

    def test_best_improving_returns_strict_improvement(self, setup):
        _, spec, evaluator, start = setup
        moves = generate_moves(spec, start, DescentParams(pool_size=6))
        winner = best_improving_move(evaluator, start, moves, 1e-9)
        if winner is not None:
            assert winner.objective < start.objective
